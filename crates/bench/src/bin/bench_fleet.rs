//! Fleet benchmark: emits `BENCH_fleet.json` with multi-session throughput
//! (interactions/s, queries/s on the virtual timeline), latency percentiles
//! (p50/p95/p99), time-requirement violation rates and cross-session cache
//! hit rates, for closed-loop fleets of 1/2/4/8 sessions, a shared-dashboard
//! variant, and an open-loop (Poisson-arrival) variant.
//!
//! Doubles as the CI smoke gate for the fleet subsystem: the process exits
//! non-zero if fleet throughput at 4 sessions falls below the 1-session
//! sequential baseline — i.e. if the harness stopped actually overlapping
//! sessions (set `IDEBENCH_BENCH_NO_GATE=1` to disable when exploring).
//! Both sides of the gate are deterministic virtual-clock quantities, so
//! the gate cannot flake on a loaded CI runner.

use idebench_core::Settings;
use idebench_engine_exact::ExactAdapter;
use idebench_fleet::{FleetConfig, FleetHarness, FleetReport, LoadModel};
use idebench_storage::Dataset;
use idebench_workflow::WorkflowType;
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 200_000;
const WORKFLOW_LEN: usize = 12;

fn settings() -> Settings {
    Settings::default()
        .with_time_requirement_ms(1_000)
        .with_think_time_ms(1_000)
        .with_seed(42)
}

fn run(dataset: &Dataset, config: FleetConfig) -> (FleetReport, f64) {
    let harness = FleetHarness::new(config);
    let start = Instant::now();
    // One shared engine service for the whole fleet: every session submits
    // into the same `Arc<dyn EngineService>` (scheduler + shared dataset
    // ingestion); sessions own no engine state.
    let service = ExactAdapter::with_defaults().into_service().into_shared();
    let outcome = harness.run(dataset, service).expect("fleet run succeeds");
    let report = FleetReport::evaluate(&outcome, dataset);
    (report, start.elapsed().as_secs_f64())
}

fn row(label: &str, report: &FleetReport, wall_s: f64) -> serde_json::Value {
    serde_json::json!({
        "case": label,
        "sessions": report.sessions,
        "interactions": report.interactions,
        "queries": report.queries,
        "makespan_ms": report.makespan_ms,
        "interactions_per_s": report.interactions_per_s,
        "queries_per_s": report.queries_per_s,
        "latency_p50_ms": report.latency_p50_ms,
        "latency_p95_ms": report.latency_p95_ms,
        "latency_p99_ms": report.latency_p99_ms,
        "tr_violation_rate": report.tr_violation_rate,
        "cache_hit_rate": report.cache_hit_rate,
        "cache_entries": report.cache_entries,
        "harness_wall_s": wall_s,
    })
}

fn main() {
    let dataset = Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(ROWS, 42)));
    let mut entries = Vec::new();

    // Closed-loop session scaling: the core fleet table. Session 0 of every
    // fleet is exactly the 1-session run (seed derivation keeps the base
    // seed), so rows are directly comparable.
    let mut baseline_qps = f64::NAN;
    let mut qps_at_4 = f64::NAN;
    for sessions in [1usize, 2, 4, 8] {
        let cfg =
            FleetConfig::new(settings(), sessions).with_workflow(WorkflowType::Mixed, WORKFLOW_LEN);
        let (report, wall_s) = run(&dataset, cfg);
        if sessions == 1 {
            baseline_qps = report.queries_per_s;
        }
        if sessions == 4 {
            qps_at_4 = report.queries_per_s;
        }
        println!(
            "closed_loop_{sessions:<2} sessions   {:>7.2} q/s   {:>6.2} inter/s   p50/p95/p99 \
             {:>4.0}/{:>4.0}/{:>4.0} ms   viol {:>4.1}%   cache {:>4.1}%   wall {wall_s:.2}s",
            report.queries_per_s,
            report.interactions_per_s,
            report.latency_p50_ms,
            report.latency_p95_ms,
            report.latency_p99_ms,
            report.tr_violation_rate * 100.0,
            report.cache_hit_rate * 100.0,
        );
        entries.push(row(
            &format!("closed_loop_{sessions}_sessions"),
            &report,
            wall_s,
        ));
    }

    // Shared-dashboard variant: 4 analysts opening the same dashboard at
    // staggered (Poisson) times — the cross-session semantic cache serves
    // later arrivals from earlier arrivals' completed results (causally:
    // simultaneous openers cannot share, which is why this row staggers).
    let cfg = FleetConfig::new(settings(), 4)
        .with_workflow(WorkflowType::Mixed, WORKFLOW_LEN)
        .with_shared_workflow(true)
        .with_load(LoadModel::Open {
            arrival_rate_per_s: 0.05,
        });
    let (shared_report, wall_s) = run(&dataset, cfg);
    println!(
        "shared_dashboard_4 sessions   {:>7.2} q/s   cache {:>4.1}% hits ({} entries)   wall {wall_s:.2}s",
        shared_report.queries_per_s,
        shared_report.cache_hit_rate * 100.0,
        shared_report.cache_entries,
    );
    entries.push(row("shared_dashboard_4_sessions", &shared_report, wall_s));

    // Open-loop variant: 8 sessions arriving by a Poisson process.
    let cfg = FleetConfig::new(settings(), 8)
        .with_workflow(WorkflowType::Mixed, WORKFLOW_LEN)
        .with_load(LoadModel::Open {
            arrival_rate_per_s: 0.25,
        });
    let (open_report, wall_s) = run(&dataset, cfg);
    println!(
        "open_loop_8        sessions   {:>7.2} q/s   makespan {:>6.1}s   viol {:>4.1}%   wall {wall_s:.2}s",
        open_report.queries_per_s,
        open_report.makespan_ms / 1e3,
        open_report.tr_violation_rate * 100.0,
    );
    entries.push(row("open_loop_8_sessions_0.25_per_s", &open_report, wall_s));

    let gate_ok = qps_at_4 >= baseline_qps;
    let report = serde_json::json!({
        "benchmark": "fleet",
        "rows": ROWS,
        "workflow_len": WORKFLOW_LEN,
        "gate": {
            "criterion": "closed-loop 4-session queries/s >= 1-session baseline",
            "baseline_queries_per_s": baseline_qps,
            "four_session_queries_per_s": qps_at_4,
            "ok": gate_ok,
        },
        "cases": entries,
    });
    std::fs::write(
        "BENCH_fleet.json",
        serde_json::to_string_pretty(&report).unwrap(),
    )
    .expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");

    if !gate_ok && std::env::var_os("IDEBENCH_BENCH_NO_GATE").is_none() {
        eprintln!(
            "fleet throughput gate failed: 4 sessions at {qps_at_4:.2} q/s fell below the \
             1-session baseline of {baseline_qps:.2} q/s"
        );
        std::process::exit(1);
    }
}
