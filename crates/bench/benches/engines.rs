//! Criterion micro-benchmarks of the engines' real (wall-clock) execution
//! speed: query submission + stepping to completion per engine, and the
//! progressive engine's snapshot cost.
//!
//! These complement the virtual-time experiment binaries: virtual time
//! makes the *benchmark results* deterministic, while these benches measure
//! what the substrate actually costs on the host machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
use idebench_core::{Query, Settings, SystemAdapter, VizSpec};
use idebench_engine_exact::ExactAdapter;
use idebench_engine_progressive::ProgressiveAdapter;
use idebench_engine_stratified::StratifiedAdapter;
use idebench_engine_wander::WanderAdapter;
use idebench_storage::Dataset;
use std::sync::Arc;

const ROWS: usize = 200_000;

fn dataset() -> Dataset {
    Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(ROWS, 42)))
}

fn avg_query() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
    );
    Query::for_viz(&spec, None)
}

fn count_query() -> Query {
    let spec = VizSpec::new(
        "bench2",
        "flights",
        vec![BinDef::Width {
            dimension: "dep_delay".into(),
            width: 10.0,
            anchor: 0.0,
        }],
        vec![AggregateSpec::count()],
    );
    Query::for_viz(&spec, None)
}

fn run_to_completion(adapter: &mut dyn SystemAdapter, query: &Query) {
    let mut handle = adapter.submit(query);
    while !handle.step(1 << 20).is_done() {}
    let _ = handle.snapshot();
}

fn bench_engines(c: &mut Criterion) {
    let ds = dataset();
    let settings = Settings::default();

    let mut group = c.benchmark_group("engine_full_query");
    group.throughput(Throughput::Elements(ROWS as u64));

    let mut exact = ExactAdapter::with_defaults();
    exact.prepare(&ds, &settings).unwrap();
    group.bench_function(BenchmarkId::new("exact", "avg_by_carrier"), |b| {
        b.iter(|| run_to_completion(&mut exact, &avg_query()))
    });
    group.bench_function(BenchmarkId::new("exact", "count_by_delay"), |b| {
        b.iter(|| run_to_completion(&mut exact, &count_query()))
    });

    let mut wander = WanderAdapter::with_defaults();
    wander.prepare(&ds, &settings).unwrap();
    group.bench_function(BenchmarkId::new("wander", "count_by_delay"), |b| {
        b.iter(|| run_to_completion(&mut wander, &count_query()))
    });

    let mut stratified = StratifiedAdapter::with_defaults();
    stratified.prepare(&ds, &settings).unwrap();
    group.bench_function(BenchmarkId::new("stratified", "avg_by_carrier"), |b| {
        b.iter(|| run_to_completion(&mut stratified, &avg_query()))
    });
    group.finish();

    // Progressive: cost of one snapshot at ~10% progress (the per-poll
    // price an IDE frontend pays).
    let mut c2 = c.benchmark_group("progressive_snapshot");
    let mut progressive = ProgressiveAdapter::with_defaults();
    progressive.prepare(&ds, &settings).unwrap();
    let mut handle = progressive.submit(&avg_query());
    handle.step(1_000_000); // warmup + ~10% of rows
    c2.bench_function("snapshot_at_10pct", |b| {
        b.iter(|| handle.snapshot().expect("progress exists"))
    });
    c2.finish();
}

/// Fine-grained stepping: many small budget grants over one handle. This is
/// the pattern the driver's TR enforcement produces, and the case the
/// owned-plan refactor targets — plan compilation happens once at submit,
/// so per-step cost is binding + morsel kernels only.
fn bench_step_granularity(c: &mut Criterion) {
    let ds = dataset();
    let settings = Settings::default();
    let mut group = c.benchmark_group("engine_step_granularity");
    group.throughput(Throughput::Elements(ROWS as u64));

    let mut exact = ExactAdapter::with_defaults();
    exact.prepare(&ds, &settings).unwrap();
    for quantum in [4_096u64, 16_384, 262_144] {
        group.bench_with_input(
            BenchmarkId::new("exact_full_scan", quantum),
            &quantum,
            |b, &quantum| {
                b.iter(|| {
                    let mut handle = exact.submit(&avg_query());
                    while !handle.step(quantum).is_done() {}
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_step_granularity);
criterion_main!(benches);
