//! Morsel-driven batch kernels and accumulation.
//!
//! Execution processes fixed-size morsels (`MORSEL` rows). Per morsel:
//!
//! 1. the filter tree is evaluated into a bitmask (`Mask`) by typed
//!    kernels — one `match` on column type per *morsel*, not per row;
//! 2. bin slots (dense) or bin keys (sparse) are computed for all rows;
//! 3. matching rows are folded into the accumulator in bulk.
//!
//! The dense path exploits that an all-nominal binning has a bin space
//! bounded by dictionary sizes: accumulators live in a flat array indexed by
//! `code0 + code1 * dict_len0`, replacing the per-row hash probe of the
//! scalar reference path.

use crate::aggregate::{BinAcc, GroupedAcc, MeasureAcc};
use crate::plan::{AccMode, BoundColumn, CompiledPlan, PlannedDim, PlannedFilter};
use idebench_core::{AggFunc, BinCoord, BinKey};
use idebench_storage::ColumnSlice;
use rustc_hash::FxHashMap;

/// Rows per morsel. A multiple of 64 so morsel masks align with
/// [`idebench_storage::SelVec`] words.
pub const MORSEL: usize = 1024;
const WORDS: usize = MORSEL / 64;

/// A per-morsel bitmask (bit `i` = row `i` of the morsel).
pub(crate) type Mask = [u64; WORDS];

/// Zeroes mask bits at positions `n..`.
#[inline]
fn mask_tail(mask: &mut Mask, n: usize) {
    for (w, word) in mask.iter_mut().enumerate() {
        let lo = w * 64;
        if n <= lo {
            *word = 0;
        } else if n < lo + 64 {
            *word &= (1u64 << (n - lo)) - 1;
        }
    }
}

/// The rows of one morsel: a contiguous range or a gathered order slice.
pub(crate) trait RowSet: Copy {
    /// Number of rows (≤ [`MORSEL`]).
    fn len(&self) -> usize;
    /// The fact row at morsel position `i`.
    fn row(&self, i: usize) -> usize;
    /// Start row of a contiguous natural-order range, when this is one —
    /// kernels then swap gather loops for bounds-check-free slice walks.
    fn base(&self) -> Option<usize> {
        None
    }
}

/// Natural-order rows `base..base + len`.
#[derive(Clone, Copy)]
pub(crate) struct Natural {
    pub base: usize,
    pub len: usize,
}

impl RowSet for Natural {
    #[inline(always)]
    fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn row(&self, i: usize) -> usize {
        self.base + i
    }

    #[inline(always)]
    fn base(&self) -> Option<usize> {
        Some(self.base)
    }
}

/// Rows gathered through a shuffle/order slice.
#[derive(Clone, Copy)]
pub(crate) struct Gather<'a>(pub &'a [u32]);

impl RowSet for Gather<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn row(&self, i: usize) -> usize {
        self.0[i] as usize
    }
}

// -------------------------------------------------------------- binding

/// A [`CompiledPlan`] bound to borrowed column slices for one `advance`.
pub(crate) struct BoundPlan<'a> {
    filter: Option<BoundFilter<'a>>,
    dims: Vec<BoundDim<'a>>,
    measures: Vec<Option<BoundColumn<'a>>>,
}

pub(crate) enum BoundFilter<'a> {
    Range {
        col: BoundColumn<'a>,
        min: f64,
        max: f64,
    },
    In {
        col: BoundColumn<'a>,
        member: &'a [bool],
    },
    And(Vec<BoundFilter<'a>>),
    Or(Vec<BoundFilter<'a>>),
}

enum BoundDim<'a> {
    Nominal {
        col: BoundColumn<'a>,
    },
    Width {
        col: BoundColumn<'a>,
        width: f64,
        anchor: f64,
        /// `(lo, len)` of the bounded bucket space when the dimension was
        /// lowered to dense arithmetic slots.
        dense: Option<(i64, u32)>,
    },
}

impl PlannedFilter {
    pub(crate) fn bind(&self) -> BoundFilter<'_> {
        match self {
            PlannedFilter::Range { col, min, max } => BoundFilter::Range {
                col: col.bind(),
                min: *min,
                max: *max,
            },
            PlannedFilter::In { col, member } => BoundFilter::In {
                col: col.bind(),
                member,
            },
            PlannedFilter::And(children) => {
                BoundFilter::And(children.iter().map(PlannedFilter::bind).collect())
            }
            PlannedFilter::Or(children) => {
                BoundFilter::Or(children.iter().map(PlannedFilter::bind).collect())
            }
        }
    }
}

impl CompiledPlan {
    /// Binds the plan to borrowed slices (index lookups only; no name
    /// resolution or hashing — cheap enough to do per `advance`).
    pub(crate) fn bind(&self) -> BoundPlan<'_> {
        BoundPlan {
            filter: self.filter.as_ref().map(PlannedFilter::bind),
            dims: self
                .dims
                .iter()
                .map(|d| match d {
                    PlannedDim::Nominal { col, .. } => BoundDim::Nominal { col: col.bind() },
                    PlannedDim::Width {
                        col,
                        width,
                        anchor,
                        dense,
                    } => BoundDim::Width {
                        col: col.bind(),
                        width: *width,
                        anchor: *anchor,
                        dense: dense.map(|d| (d.lo, d.len as u32)),
                    },
                })
                .collect(),
            measures: self
                .measures
                .iter()
                .map(|m| m.as_ref().map(|c| c.bind()))
                .collect(),
        }
    }
}

// -------------------------------------------------------------- kernels

/// Evaluates a filter tree over one morsel into `out` (bit = row matches).
/// Null values never match, mirroring SQL WHERE semantics.
pub(crate) fn eval_filter<R: RowSet>(f: &BoundFilter<'_>, rows: R, out: &mut Mask) {
    let n = rows.len();
    match f {
        BoundFilter::Range { col, min, max } => {
            range_mask(col, *min, *max, rows, out);
        }
        BoundFilter::In { col, member } => {
            in_mask(col, member, rows, out);
        }
        BoundFilter::And(children) => {
            *out = [u64::MAX; WORDS];
            mask_tail(out, n);
            let mut tmp = [0u64; WORDS];
            for child in children {
                eval_filter(child, rows, &mut tmp);
                for w in 0..WORDS {
                    out[w] &= tmp[w];
                }
            }
        }
        BoundFilter::Or(children) => {
            *out = [0u64; WORDS];
            let mut tmp = [0u64; WORDS];
            for child in children {
                eval_filter(child, rows, &mut tmp);
                for w in 0..WORDS {
                    out[w] |= tmp[w];
                }
            }
        }
    }
}

#[inline]
fn range_mask<R: RowSet>(col: &BoundColumn<'_>, min: f64, max: f64, rows: R, out: &mut Mask) {
    let n = rows.len();
    *out = [0u64; WORDS];
    match (col.data, col.fk, col.validity) {
        // Fast path: direct float column, fully valid.
        (ColumnSlice::F64(d), None, None) => {
            for i in 0..n {
                let v = d[rows.row(i)];
                out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
            }
        }
        (ColumnSlice::I64(d), None, None) => {
            for i in 0..n {
                let v = d[rows.row(i)] as f64;
                out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
            }
        }
        _ => {
            for i in 0..n {
                if let Some(v) = col.numeric(rows.row(i)) {
                    out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
                }
            }
        }
    }
}

#[inline]
fn in_mask<R: RowSet>(col: &BoundColumn<'_>, member: &[bool], rows: R, out: &mut Mask) {
    let n = rows.len();
    *out = [0u64; WORDS];
    match (col.data, col.fk, col.validity) {
        // Fast path: direct code column, fully valid.
        (ColumnSlice::Codes(d, _), None, None) => {
            for i in 0..n {
                let hit = member
                    .get(d[rows.row(i)] as usize)
                    .copied()
                    .unwrap_or(false);
                out[i / 64] |= u64::from(hit) << (i % 64);
            }
        }
        _ => {
            for i in 0..n {
                if let Some(code) = col.code(rows.row(i)) {
                    let hit = member.get(code as usize).copied().unwrap_or(false);
                    out[i / 64] |= u64::from(hit) << (i % 64);
                }
            }
        }
    }
}

/// Computes dense bin slots for one morsel. Rows with a null binned value
/// get their `valid` bit cleared.
fn dense_slots<R: RowSet>(dims: &[BoundDim<'_>], rows: R, slots: &mut [u32], valid: &mut Mask) {
    let n = rows.len();
    *valid = [u64::MAX; WORDS];
    mask_tail(valid, n);
    let mut stride = 1u32;
    for (di, dim) in dims.iter().enumerate() {
        match dim {
            BoundDim::Nominal { col } => match (col.data, col.fk, col.validity) {
                (ColumnSlice::Codes(d, dict), None, None) => {
                    match rows.base() {
                        Some(base) => {
                            let src = &d[base..base + n];
                            if di == 0 {
                                for (slot, &c) in slots.iter_mut().zip(src) {
                                    *slot = c;
                                }
                            } else {
                                for (slot, &c) in slots.iter_mut().zip(src) {
                                    *slot += c * stride;
                                }
                            }
                        }
                        None => {
                            if di == 0 {
                                for (i, slot) in slots.iter_mut().enumerate().take(n) {
                                    *slot = d[rows.row(i)];
                                }
                            } else {
                                for (i, slot) in slots.iter_mut().enumerate().take(n) {
                                    *slot += d[rows.row(i)] * stride;
                                }
                            }
                        }
                    }
                    stride *= dict.len().max(1) as u32;
                }
                _ => {
                    let mut dict_len = 0u32;
                    for i in 0..n {
                        match col.code(rows.row(i)) {
                            Some(code) => {
                                if di == 0 {
                                    slots[i] = code;
                                } else {
                                    slots[i] += code * stride;
                                }
                            }
                            None => valid[i / 64] &= !(1u64 << (i % 64)),
                        }
                    }
                    if let ColumnSlice::Codes(_, dict) = col.data {
                        dict_len = dict.len().max(1) as u32;
                    }
                    stride *= dict_len.max(1);
                }
            },
            BoundDim::Width {
                col,
                width,
                anchor,
                dense,
            } => {
                let (lo, len) = dense.expect("dense path requires bounded bucket space");
                // Arithmetic slotting: `floor((v−anchor)/width) − lo`,
                // clamped into the bounded space (a no-op when stats are
                // exact; it only guards slot-array bounds). The floor is
                // computed as truncate-and-adjust — identical to
                // `f64::floor` for every in-bounds value but free of the
                // libm call baseline x86-64 lowers `floor()` to, which
                // would otherwise dominate this loop. `lo` round-trips
                // through f64 exactly, so the slot decodes to the same
                // bucket index the hashed path computes, bit for bit.
                let lo_f = lo as f64;
                let top = (len - 1) as f64;
                let slot_of = move |v: f64| -> u32 {
                    let q = (v - anchor) / width;
                    let t = q as i64 as f64; // trunc(q), exact in-bounds
                    let fl = if t > q { t - 1.0 } else { t };
                    (fl - lo_f).clamp(0.0, top) as u32
                };
                match (col.data, col.fk, col.validity) {
                    // Fast path: direct float column, fully valid.
                    (ColumnSlice::F64(d), None, None) => match rows.base() {
                        Some(base) => {
                            let src = &d[base..base + n];
                            if di == 0 {
                                for (slot, &v) in slots.iter_mut().zip(src) {
                                    *slot = slot_of(v);
                                }
                            } else {
                                for (slot, &v) in slots.iter_mut().zip(src) {
                                    *slot += slot_of(v) * stride;
                                }
                            }
                        }
                        None => {
                            if di == 0 {
                                for (i, slot) in slots.iter_mut().enumerate().take(n) {
                                    *slot = slot_of(d[rows.row(i)]);
                                }
                            } else {
                                for (i, slot) in slots.iter_mut().enumerate().take(n) {
                                    *slot += slot_of(d[rows.row(i)]) * stride;
                                }
                            }
                        }
                    },
                    _ => {
                        for i in 0..n {
                            match col.numeric(rows.row(i)) {
                                Some(v) => {
                                    if di == 0 {
                                        slots[i] = slot_of(v);
                                    } else {
                                        slots[i] += slot_of(v) * stride;
                                    }
                                }
                                None => valid[i / 64] &= !(1u64 << (i % 64)),
                            }
                        }
                    }
                }
                stride *= len.max(1);
            }
        }
    }
}

/// Computes sparse bin keys (up to two coordinates) for one morsel. Rows
/// with a null binned value get their `valid` bit cleared.
fn sparse_keys<R: RowSet>(
    dims: &[BoundDim<'_>],
    rows: R,
    k0: &mut [i64],
    k1: &mut [i64],
    valid: &mut Mask,
) {
    let n = rows.len();
    *valid = [u64::MAX; WORDS];
    mask_tail(valid, n);
    for (di, dim) in dims.iter().enumerate() {
        let out: &mut [i64] = if di == 0 { k0 } else { k1 };
        match dim {
            BoundDim::Nominal { col } => {
                for i in 0..n {
                    match col.code(rows.row(i)) {
                        Some(code) => out[i] = i64::from(code),
                        None => valid[i / 64] &= !(1u64 << (i % 64)),
                    }
                }
            }
            BoundDim::Width {
                col, width, anchor, ..
            } => match (col.data, col.fk, col.validity) {
                (ColumnSlice::F64(d), None, None) => {
                    for (i, o) in out.iter_mut().enumerate().take(n) {
                        *o = ((d[rows.row(i)] - anchor) / width).floor() as i64;
                    }
                }
                _ => {
                    for i in 0..n {
                        match col.numeric(rows.row(i)) {
                            Some(v) => out[i] = ((v - anchor) / width).floor() as i64,
                            None => valid[i / 64] &= !(1u64 << (i % 64)),
                        }
                    }
                }
            },
        }
    }
}

// ---------------------------------------------------------- accumulation

/// The coordinate kind of one sparse binning dimension.
#[derive(Debug, Clone, Copy)]
enum CoordKind {
    Cat,
    Bucket,
}

/// Slot-decode metadata of one dense binning dimension: its bounded size
/// and how a slot coordinate maps back to a [`BinCoord`].
#[derive(Debug, Clone, Copy)]
struct DenseDim {
    /// Size of this dimension's bin space (`slot = c0 + c1 · len0`).
    len: usize,
    /// `None` = nominal (coordinate is a dictionary code); `Some(lo)` =
    /// bucketed (coordinate `c` decodes to bucket `lo + c`).
    bucket_lo: Option<i64>,
}

enum Store {
    /// Flat-array accumulation over a bounded bin space (nominal
    /// dictionaries and/or statistics-bounded bucketings).
    Dense {
        /// Per-dimension slot decode metadata (1 or 2 entries).
        dims: Vec<DenseDim>,
        counts: Vec<u64>,
        /// `space * nmeasures` measure accumulators, slot-major.
        measures: Vec<MeasureAcc>,
        /// Slots with `counts > 0`, in first-touch order — snapshots only
        /// walk populated bins, not the whole space.
        touched: Vec<u32>,
    },
    /// Hashed accumulation for unbounded bucket spaces. The map stores
    /// indices into a dense `Vec<BinAcc>` so the common consecutive-rows-
    /// same-bucket case skips the probe via a last-key memo, and finish
    /// walks a contiguous vector.
    Sparse {
        kinds: Vec<CoordKind>,
        index: FxHashMap<(i64, i64), u32>,
        accs: Vec<((i64, i64), BinAcc)>,
    },
}

/// The vectorized accumulator driven by [`CompiledPlan`] morsel kernels.
///
/// Mirrors the statistics of [`GroupedAcc`] (which remains the scalar
/// reference and merge/finish representation); [`BatchAcc::to_grouped`]
/// materializes into it in O(populated bins).
pub(crate) struct BatchAcc {
    aggs: Vec<(AggFunc, bool)>,
    nmeasures: usize,
    store: Store,
    pub rows_seen: u64,
    pub rows_matched: u64,
    // Reusable per-morsel scratch.
    slots: Vec<u32>,
    k0: Vec<i64>,
    k1: Vec<i64>,
}

impl BatchAcc {
    pub fn for_plan(plan: &CompiledPlan) -> BatchAcc {
        let aggs: Vec<(AggFunc, bool)> = plan
            .query()
            .aggregates
            .iter()
            .map(|a| (a.func, a.dimension.is_some()))
            .collect();
        let nmeasures = aggs.len();
        let store = match plan.acc_mode() {
            AccMode::Dense(space) => Store::Dense {
                dims: plan
                    .dims
                    .iter()
                    .map(|d| match d {
                        PlannedDim::Nominal { dict_len, .. } => DenseDim {
                            len: (*dict_len).max(1),
                            bucket_lo: None,
                        },
                        PlannedDim::Width { dense, .. } => {
                            let dense = dense.expect("dense mode requires bounded bucket space");
                            DenseDim {
                                len: dense.len,
                                bucket_lo: Some(dense.lo),
                            }
                        }
                    })
                    .collect(),
                counts: vec![0; space],
                measures: vec![MeasureAcc::new(); space * nmeasures],
                touched: Vec::new(),
            },
            AccMode::Sparse => Store::Sparse {
                kinds: plan
                    .dims
                    .iter()
                    .map(|d| match d {
                        PlannedDim::Nominal { .. } => CoordKind::Cat,
                        PlannedDim::Width { .. } => CoordKind::Bucket,
                    })
                    .collect(),
                index: FxHashMap::default(),
                accs: Vec::new(),
            },
        };
        BatchAcc {
            aggs,
            nmeasures,
            store,
            rows_seen: 0,
            rows_matched: 0,
            slots: vec![0; MORSEL],
            k0: vec![0; MORSEL],
            k1: vec![0; MORSEL],
        }
    }

    /// Processes one morsel: filter → bin → accumulate. Returns the number
    /// of rows that passed the filter (cost-model input).
    pub fn process_morsel<R: RowSet>(&mut self, bound: &BoundPlan<'_>, rows: R) -> usize {
        let n = rows.len();
        debug_assert!(n <= MORSEL);
        self.rows_seen += n as u64;

        // 1. Filter.
        let mut fmask: Mask = [u64::MAX; WORDS];
        mask_tail(&mut fmask, n);
        if let Some(filter) = &bound.filter {
            eval_filter(filter, rows, &mut fmask);
        }
        let matched: usize = fmask.iter().map(|w| w.count_ones() as usize).sum();
        self.rows_matched += matched as u64;
        if matched == 0 {
            return 0;
        }

        // 2. Bin keys, 3. accumulate matching rows.
        let mut valid: Mask = [0u64; WORDS];
        match &mut self.store {
            Store::Dense {
                counts,
                measures,
                touched,
                ..
            } => {
                dense_slots(&bound.dims, rows, &mut self.slots, &mut valid);
                // Counts pass.
                for w in 0..WORDS {
                    let mut bits = fmask[w] & valid[w];
                    while bits != 0 {
                        let i = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let slot = self.slots[i] as usize;
                        if counts[slot] == 0 {
                            touched.push(slot as u32);
                        }
                        counts[slot] += 1;
                    }
                }
                // One pass per measure column, so the column-type dispatch
                // runs once per morsel instead of once per row. Per (bin,
                // measure) the update sequence stays exactly row order.
                let nmeasures = self.nmeasures;
                for (m, col) in bound.measures.iter().enumerate() {
                    let Some(col) = col else { continue };
                    match (col.data, col.fk, col.validity) {
                        // Fast path: direct float column, fully valid.
                        (ColumnSlice::F64(d), None, None) => {
                            for w in 0..WORDS {
                                let mut bits = fmask[w] & valid[w];
                                while bits != 0 {
                                    let i = w * 64 + bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    measures[self.slots[i] as usize * nmeasures + m]
                                        .update(d[rows.row(i)]);
                                }
                            }
                        }
                        _ => {
                            for w in 0..WORDS {
                                let mut bits = fmask[w] & valid[w];
                                while bits != 0 {
                                    let i = w * 64 + bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    if let Some(v) = col.numeric(rows.row(i)) {
                                        measures[self.slots[i] as usize * nmeasures + m].update(v);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Store::Sparse { index, accs, .. } => {
                sparse_keys(&bound.dims, rows, &mut self.k0, &mut self.k1, &mut valid);
                let two_d = bound.dims.len() == 2;
                let nmeasures = self.nmeasures;
                // Consecutive rows often land in the same bin; memoize the
                // last slot to skip the hash probe.
                let mut last: Option<((i64, i64), u32)> = None;
                for w in 0..WORDS {
                    let mut bits = fmask[w] & valid[w];
                    while bits != 0 {
                        let i = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let key = (self.k0[i], if two_d { self.k1[i] } else { 0 });
                        let slot = match last {
                            Some((k, s)) if k == key => s,
                            _ => {
                                let s = *index.entry(key).or_insert_with(|| {
                                    accs.push((
                                        key,
                                        BinAcc {
                                            count: 0,
                                            measures: vec![MeasureAcc::new(); nmeasures],
                                        },
                                    ));
                                    (accs.len() - 1) as u32
                                });
                                last = Some((key, s));
                                s
                            }
                        };
                        let acc = &mut accs[slot as usize].1;
                        acc.count += 1;
                        let row = rows.row(i);
                        for (m, col) in bound.measures.iter().enumerate() {
                            if let Some(col) = col {
                                if let Some(v) = col.numeric(row) {
                                    acc.measures[m].update(v);
                                }
                            }
                        }
                    }
                }
            }
        }
        matched
    }

    /// Materializes into the canonical [`GroupedAcc`] representation, in
    /// O(populated bins).
    pub fn to_grouped(&self) -> GroupedAcc {
        let mut bins: FxHashMap<BinKey, BinAcc> = FxHashMap::default();
        match &self.store {
            Store::Dense {
                dims,
                counts,
                measures,
                touched,
            } => {
                let decode = |dim: &DenseDim, c: usize| match dim.bucket_lo {
                    None => BinCoord::Cat(c as u32),
                    Some(lo) => BinCoord::Bucket(lo + c as i64),
                };
                for &slot in touched {
                    let slot = slot as usize;
                    let key = if dims.len() == 2 {
                        BinKey::d2(
                            decode(&dims[0], slot % dims[0].len),
                            decode(&dims[1], slot / dims[0].len),
                        )
                    } else {
                        BinKey::d1(decode(&dims[0], slot))
                    };
                    bins.insert(
                        key,
                        BinAcc {
                            count: counts[slot],
                            measures: measures[slot * self.nmeasures..][..self.nmeasures].to_vec(),
                        },
                    );
                }
            }
            Store::Sparse { kinds, accs, .. } => {
                for ((a, b), acc) in accs {
                    let coord = |kind: CoordKind, v: i64| match kind {
                        CoordKind::Cat => BinCoord::Cat(v as u32),
                        CoordKind::Bucket => BinCoord::Bucket(v),
                    };
                    let key = if kinds.len() == 2 {
                        BinKey::d2(coord(kinds[0], *a), coord(kinds[1], *b))
                    } else {
                        BinKey::d1(coord(kinds[0], *a))
                    };
                    bins.insert(key, acc.clone());
                }
            }
        }
        GroupedAcc::from_parts(self.aggs.clone(), bins, self.rows_seen, self.rows_matched)
    }

    /// Merges another accumulator for the same plan into this one.
    ///
    /// This is the partial-merge step of the morsel dispatcher: chunk
    /// partials are folded into the base accumulator *in chunk order*, so
    /// the floating-point merge sequence per bin is fixed by the chunk
    /// partition alone — never by worker count or scheduling.
    pub fn merge_from(&mut self, other: &BatchAcc) {
        debug_assert_eq!(self.aggs, other.aggs);
        self.rows_seen += other.rows_seen;
        self.rows_matched += other.rows_matched;
        match (&mut self.store, &other.store) {
            (
                Store::Dense {
                    counts,
                    measures,
                    touched,
                    ..
                },
                Store::Dense {
                    counts: ocounts,
                    measures: omeasures,
                    touched: otouched,
                    ..
                },
            ) => {
                for &slot in otouched {
                    let slot = slot as usize;
                    if counts[slot] == 0 {
                        touched.push(slot as u32);
                    }
                    counts[slot] += ocounts[slot];
                    for m in 0..self.nmeasures {
                        measures[slot * self.nmeasures + m]
                            .merge(&omeasures[slot * self.nmeasures + m]);
                    }
                }
            }
            (Store::Sparse { index, accs, .. }, Store::Sparse { accs: oaccs, .. }) => {
                for (key, oacc) in oaccs {
                    match index.get(key) {
                        Some(&slot) => {
                            let acc = &mut accs[slot as usize].1;
                            acc.count += oacc.count;
                            for (m, o) in acc.measures.iter_mut().zip(&oacc.measures) {
                                m.merge(o);
                            }
                        }
                        None => {
                            index.insert(*key, accs.len() as u32);
                            accs.push((*key, oacc.clone()));
                        }
                    }
                }
            }
            _ => unreachable!("partials of one plan share an accumulation mode"),
        }
    }

    /// Clears the accumulator for reuse (the dispatcher's partial pool),
    /// in O(populated bins) rather than O(bin space).
    pub fn reset(&mut self) {
        self.rows_seen = 0;
        self.rows_matched = 0;
        match &mut self.store {
            Store::Dense {
                counts,
                measures,
                touched,
                ..
            } => {
                for &slot in touched.iter() {
                    let slot = slot as usize;
                    counts[slot] = 0;
                    for m in 0..self.nmeasures {
                        measures[slot * self.nmeasures + m] = MeasureAcc::new();
                    }
                }
                touched.clear();
            }
            Store::Sparse { index, accs, .. } => {
                index.clear();
                accs.clear();
            }
        }
    }
}
