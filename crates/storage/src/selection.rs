//! Selection vectors (validity/filter bitmaps) for vectorized evaluation.

/// A fixed-length bitmap marking which rows of a table survive a predicate.
///
/// Predicate evaluation in the engines is vectorized: each predicate refines
/// a `SelVec` in place, and aggregation iterates only the set positions.
/// Words are 64-bit; trailing bits beyond `len` are kept zero as an
/// invariant so popcounts stay exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelVec {
    words: Vec<u64>,
    len: usize,
}

impl SelVec {
    /// A selection of `len` rows, all selected.
    pub fn all(len: usize) -> Self {
        let nwords = len.div_ceil(64);
        let mut words = vec![u64::MAX; nwords];
        Self::mask_tail(&mut words, len);
        SelVec { words, len }
    }

    /// A selection of `len` rows, none selected.
    pub fn none(len: usize) -> Self {
        SelVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a selection from an iterator of booleans of exactly `len` items.
    pub fn from_bools<I: IntoIterator<Item = bool>>(len: usize, bits: I) -> Self {
        let mut sel = SelVec::none(len);
        for (i, b) in bits.into_iter().enumerate() {
            if b {
                sel.insert(i);
            }
        }
        sel
    }

    fn mask_tail(words: &mut [u64], len: usize) {
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of rows covered by the selection (set or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the selection covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Marks row `i` selected.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Marks row `i` unselected.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Intersects with `other` in place. Panics if lengths differ.
    pub fn intersect(&mut self, other: &SelVec) {
        assert_eq!(self.len, other.len, "selection length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Unions with `other` in place. Panics if lengths differ.
    pub fn union(&mut self, other: &SelVec) {
        assert_eq!(self.len, other.len, "selection length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Inverts the selection in place.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        Self::mask_tail(&mut self.words, self.len);
    }

    /// Iterates the indices of selected rows in ascending order.
    pub fn iter(&self) -> SelIter<'_> {
        SelIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The raw 64-bit words of the bitmap (batch readers).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Overwrites word `word_index` (rows `word_index*64 ..`) with `bits`.
    ///
    /// This is the bulk-install primitive for vectorized filters: a morsel's
    /// match mask lands word-by-word instead of bit-by-bit. Bits beyond
    /// `len` are masked off to preserve the popcount invariant. Panics when
    /// `word_index` is out of range.
    #[inline]
    pub fn set_word(&mut self, word_index: usize, bits: u64) {
        self.words[word_index] = bits;
        if word_index == self.words.len() - 1 {
            Self::mask_tail(&mut self.words, self.len);
        }
    }

    /// Builds a selection directly from bitmap words (row `i` selected when
    /// bit `i % 64` of word `i / 64` is set). Missing words read as zero;
    /// excess words and tail bits beyond `len` are dropped.
    pub fn from_words<I: IntoIterator<Item = u64>>(len: usize, words: I) -> Self {
        let nwords = len.div_ceil(64);
        let mut buf: Vec<u64> = words.into_iter().take(nwords).collect();
        buf.resize(nwords, 0);
        Self::mask_tail(&mut buf, len);
        SelVec { words: buf, len }
    }

    /// Retains only rows for which `keep` returns true (called on selected rows only).
    pub fn refine(&mut self, mut keep: impl FnMut(usize) -> bool) {
        // Iterate word-wise so clearing bits does not invalidate iteration.
        for wi in 0..self.words.len() {
            let mut w = self.words[wi];
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                let row = wi * 64 + bit;
                if !keep(row) {
                    self.words[wi] &= !(1u64 << bit);
                }
                w &= w - 1;
            }
        }
    }
}

/// Iterator over set positions of a [`SelVec`].
pub struct SelIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SelIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none_counts() {
        assert_eq!(SelVec::all(130).count(), 130);
        assert_eq!(SelVec::none(130).count(), 0);
        assert_eq!(SelVec::all(0).count(), 0);
        assert_eq!(SelVec::all(64).count(), 64);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = SelVec::none(100);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_yields_sorted_positions() {
        let mut s = SelVec::none(200);
        for i in [5usize, 64, 65, 130, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![5, 64, 65, 130, 199]);
    }

    #[test]
    fn negate_respects_tail() {
        let mut s = SelVec::none(70);
        s.insert(3);
        s.negate();
        assert_eq!(s.count(), 69);
        assert!(!s.contains(3));
        assert!(s.contains(69));
    }

    #[test]
    fn intersect_and_union() {
        let mut a = SelVec::from_bools(8, [true, true, false, false, true, false, true, false]);
        let b = SelVec::from_bools(8, [true, false, true, false, true, false, false, false]);
        let mut u = a.clone();
        u.union(&b);
        a.intersect(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![0, 1, 2, 4, 6]);
    }

    #[test]
    fn refine_keeps_even_rows() {
        let mut s = SelVec::all(100);
        s.refine(|i| i % 2 == 0);
        assert_eq!(s.count(), 50);
        assert!(s.iter().all(|i| i % 2 == 0));
    }

    #[test]
    #[should_panic(expected = "selection length mismatch")]
    fn intersect_length_mismatch_panics() {
        let mut a = SelVec::all(10);
        a.intersect(&SelVec::all(11));
    }

    #[test]
    fn set_word_masks_tail() {
        let mut s = SelVec::none(70);
        s.set_word(0, u64::MAX);
        assert_eq!(s.count(), 64);
        s.set_word(1, u64::MAX);
        // Only rows 64..70 exist in the last word.
        assert_eq!(s.count(), 70);
        assert!(s.iter().all(|i| i < 70));
    }

    #[test]
    fn from_words_matches_bitwise_construction() {
        let sel = SelVec::from_words(130, [0b101u64, u64::MAX, u64::MAX]);
        assert!(sel.contains(0) && !sel.contains(1) && sel.contains(2));
        assert_eq!(sel.count(), 2 + 64 + 2);
        // Excess words beyond the length are ignored.
        let extra = SelVec::from_words(10, [0b11u64, u64::MAX]);
        assert_eq!(extra.count(), 2);
        // Missing words read as zero.
        let short = SelVec::from_words(130, [u64::MAX]);
        assert_eq!(short.count(), 64);
        assert_eq!(short.words().len(), 3);
    }
}
