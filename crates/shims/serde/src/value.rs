//! The JSON value tree shared by the `serde` and `serde_json` shims.

/// A JSON number, preserving the integer/float distinction so 64-bit values
/// (seeds, fingerprints) round-trip exactly.
///
/// Equality is numeric, not representational: `U64(1)`, `I64(1)` and
/// `F64(1.0)` all compare equal, so values survive text round-trips (the
/// printer renders `10.0` as `10`, which re-parses as an integer).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned 64-bit integer.
    U64(u64),
    /// Signed 64-bit integer (negative values).
    I64(i64),
    /// Double-precision float.
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.exact_i128(), other.exact_i128()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl Number {
    /// The exact integer payload, `None` for floats.
    fn exact_i128(&self) -> Option<i128> {
        match *self {
            Number::U64(n) => Some(i128::from(n)),
            Number::I64(n) => Some(i128::from(n)),
            Number::F64(_) => None,
        }
    }

    /// The number as `f64` (integers widened).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(n) => Some(n),
            Number::U64(n) => i64::try_from(n).ok(),
            Number::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Number::F64(_) => None,
        }
    }
}

/// An order-preserving JSON object (small maps: linear-scan lookups).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) `key`, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

/// Shared `null` for out-of-bounds indexing.
static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload widened to `f64`, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`; yields `Null` for non-objects and missing keys,
    /// mirroring serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `value[i]`; yields `Null` out of bounds or on non-arrays.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        i128::from(*other) == match *n {
                            Number::U64(u) => i128::from(u),
                            Number::I64(i) => i128::from(i),
                            Number::F64(f) if f.fract() == 0.0 && f.abs() < 9e18 => f as i128,
                            Number::F64(_) => return false,
                        }
                    }
                    _ => false,
                }
            }
        }
    )*};
}

impl_value_eq_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(Number::F64(n))
    }
}

macro_rules! impl_value_from_int {
    ($($t:ty => $variant:ident as $as_t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::$variant(n as $as_t))
            }
        }
    )*};
}

impl_value_from_int!(u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::from(1u64));
        m.insert("a".into(), Value::from(2u64));
        m.insert("b".into(), Value::from(3u64));
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::from(3u64)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn cross_type_comparisons() {
        let v = Value::from(10.0);
        assert_eq!(v, 10.0);
        assert_eq!(Value::from("x"), "x");
        assert_eq!(Value::from(7u64), 7u64);
        assert_eq!(Value::from(7i64), 7u8);
    }

    #[test]
    fn number_exact_accessors() {
        assert_eq!(Number::U64(u64::MAX).as_u64(), Some(u64::MAX));
        assert_eq!(Number::U64(u64::MAX).as_i64(), None);
        assert_eq!(Number::F64(2.0).as_i64(), Some(2));
        assert_eq!(Number::F64(2.5).as_i64(), None);
        assert_eq!(Number::I64(-1).as_u64(), None);
    }
}
