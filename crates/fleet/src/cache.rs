//! The cross-session semantic result cache — a *shared service* of the
//! fleet harness.
//!
//! Distinct from `idebench-engine-cache`'s per-adapter middleware cache
//! (which models a System-Y-class IDE's private result store and charges
//! its rendering overhead): this cache is shared by **every** session of a
//! fleet, keys are the canonical query *semantics*
//! ([`Query::canonical_key`] — independent of which viz, interaction, or
//! session issued the query; memoized per query, so a lookup never
//! re-serializes), hits are served instantly (an in-memory lookup costs no
//! benchmark work units), and hit/miss/insert traffic is accounted **per
//! session** for the fleet report.
//!
//! Since the shared-service redesign the cache is an [`EngineService`]
//! layer: [`SemanticCache::wrap_service`] fronts any engine service with
//! [`CachedEngineService`], whose `submit` intercepts hits (instantly-done
//! tickets at zero work-unit cost) and stages exact completed results via
//! the miss ticket's settle hook.
//!
//! # Virtual-time causality
//!
//! Cache visibility respects the fleet's virtual timeline. Every entry
//! carries the virtual time its producing query *completed*; a lookup made
//! by a session whose current virtual time is `now` only hits entries with
//! `completed_at <= now` — a result that will only exist in the future
//! cannot be served, exactly as in a real deployment where two analysts
//! issuing the same query simultaneously both execute it. The harness
//! drives this protocol: [`SemanticCache::begin_event`] stamps the
//! session's `now` before each interaction, completed results are *staged*
//! during the interaction, and [`SemanticCache::commit_staged`] publishes
//! them with the interaction's completion time once it finishes.
//!
//! Only *exact, completed* results are admitted, so a hit is always
//! bit-identical to re-executing the query — which is what lets a fleet
//! run's report stay deterministic while sharing results across sessions.

use idebench_core::service::{
    EngineService, QueryOptions, QueryTicket, SessionId, TicketScheduler,
};
use idebench_core::{AggResult, CoreError, PrepStats, Query, Settings};
use idebench_storage::Dataset;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// Hit/miss/insert counters, kept per session and fleet-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Queries answered from the shared cache.
    pub hits: u64,
    /// Queries that had to execute on the engine.
    pub misses: u64,
    /// Exact completed results admitted to the cache.
    pub insertions: u64,
}

impl CacheStats {
    /// Hits as a fraction of lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
    }
}

/// A published result and the virtual time it became available. Results
/// are shared by `Arc`: a hit hands out a reference, not a deep copy.
struct Entry {
    result: Arc<AggResult>,
    completed_at: f64,
}

/// Per-session protocol state: the session's current virtual time and the
/// results completed during its in-flight interaction, awaiting commit.
struct SessionState {
    now_ms: f64,
    staged: Vec<(Arc<str>, Arc<AggResult>)>,
    stats: CacheStats,
}

/// The shared cross-session result cache (see module docs).
pub struct SemanticCache {
    entries: Mutex<FxHashMap<Arc<str>, Entry>>,
    sessions: Mutex<Vec<SessionState>>,
}

impl SemanticCache {
    /// An empty cache serving `sessions` sessions, all at virtual time 0.
    pub fn new(sessions: usize) -> Arc<SemanticCache> {
        Arc::new(SemanticCache {
            entries: Mutex::new(FxHashMap::default()),
            sessions: Mutex::new(
                (0..sessions)
                    .map(|_| SessionState {
                        now_ms: 0.0,
                        staged: Vec::new(),
                        stats: CacheStats::default(),
                    })
                    .collect(),
            ),
        })
    }

    /// Stamps `session`'s current virtual time; subsequent lookups by the
    /// session only hit entries completed at or before this instant.
    pub fn begin_event(&self, session: usize, now_ms: f64) {
        self.sessions.lock().unwrap()[session].now_ms = now_ms;
    }

    /// Looks `query` up on behalf of `session`, recording a hit or miss.
    /// An entry whose producing query completes later on the virtual
    /// timeline than the session's stamped `now` is invisible (a miss).
    /// A hit is an `Arc` share of the stored result, not a deep copy.
    pub fn lookup(&self, session: usize, query: &Query) -> Option<Arc<AggResult>> {
        let key = query.canonical_key();
        // Lock order sessions → entries, matching commit_staged.
        let mut sessions = self.sessions.lock().unwrap();
        let now = sessions[session].now_ms;
        let hit = self
            .entries
            .lock()
            .unwrap()
            .get(&key)
            .filter(|e| e.completed_at <= now)
            .map(|e| Arc::clone(&e.result));
        match hit {
            Some(r) => {
                sessions[session].stats.hits += 1;
                Some(r)
            }
            None => {
                sessions[session].stats.misses += 1;
                None
            }
        }
    }

    /// Stages an exact result completed by `session`'s in-flight
    /// interaction; it becomes visible to lookups only once
    /// [`SemanticCache::commit_staged`] publishes it with a completion
    /// time. Non-exact results (estimates, partials) are rejected —
    /// serving them to another session would not be bit-identical to
    /// re-execution.
    pub fn stage(&self, session: usize, key: Arc<str>, result: &AggResult) {
        if !result.exact {
            return;
        }
        self.sessions.lock().unwrap()[session]
            .staged
            .push((key, Arc::new(result.clone())));
    }

    /// Publishes `session`'s staged results as available from virtual time
    /// `completed_at_ms`. A key published earlier keeps its earlier
    /// availability time.
    pub fn commit_staged(&self, session: usize, completed_at_ms: f64) {
        let mut sessions = self.sessions.lock().unwrap();
        let staged = std::mem::take(&mut sessions[session].staged);
        if staged.is_empty() {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        for (key, result) in staged {
            sessions[session].stats.insertions += 1;
            entries
                .entry(key)
                .and_modify(|e| e.completed_at = e.completed_at.min(completed_at_ms))
                .or_insert(Entry {
                    result,
                    completed_at: completed_at_ms,
                });
        }
    }

    /// Number of distinct published query results.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the cache holds no published results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One session's counters.
    pub fn session_stats(&self, session: usize) -> CacheStats {
        self.sessions.lock().unwrap()[session].stats
    }

    /// Fleet-wide counters (sum over sessions).
    pub fn totals(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.sessions.lock().unwrap().iter() {
            total.merge(&s.stats);
        }
        total
    }

    /// Fronts a shared engine service with this cache: `submit` intercepts
    /// hits, exact completed results are staged on the way out. Reports
    /// keep the inner engine's name so fleet summaries group by engine,
    /// not by cache layer.
    pub fn wrap_service(
        self: &Arc<Self>,
        inner: Arc<dyn EngineService>,
    ) -> Arc<CachedEngineService> {
        Arc::new(CachedEngineService {
            inner,
            cache: Arc::clone(self),
            hits: TicketScheduler::new(),
        })
    }
}

/// A shared engine service fronted by the [`SemanticCache`] (see
/// [`SemanticCache::wrap_service`]).
pub struct CachedEngineService {
    inner: Arc<dyn EngineService>,
    cache: Arc<SemanticCache>,
    /// Mints the instantly-done tickets that serve cache hits (hits never
    /// touch the engine's scheduler — they cost zero work units).
    hits: Arc<TicketScheduler>,
}

impl CachedEngineService {
    /// The wrapped engine service.
    pub fn inner(&self) -> &Arc<dyn EngineService> {
        &self.inner
    }

    /// The cache this layer consults.
    pub fn cache(&self) -> &Arc<SemanticCache> {
        &self.cache
    }
}

impl EngineService for CachedEngineService {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn open_session(
        &self,
        session: SessionId,
        dataset: &Dataset,
        settings: &Settings,
    ) -> Result<PrepStats, CoreError> {
        // Deliberately does NOT clear the shared cache: other sessions'
        // results stay valid because every session shares one immutable
        // dataset.
        self.inner.open_session(session, dataset, settings)
    }

    fn close_session(&self, session: SessionId) {
        self.inner.close_session(session);
    }

    fn submit(&self, query: &Query, opts: QueryOptions) -> QueryTicket {
        let session = opts.session as usize;
        if let Some(hit) = self.cache.lookup(session, query) {
            // The supersede rule holds across layers: a hit answered here
            // still revokes any in-flight engine ticket for the same viz.
            self.inner.revoke_superseded(opts.session, query.viz_name());
            // Served instantly at zero work-unit cost, bit-identical to
            // re-execution (only exact completed results are admitted; the
            // `Arc` share defers the one deep copy to `snapshot()`).
            return self
                .hits
                .admit_settled(Some(hit), query.viz_name().to_string(), opts);
        }
        let ticket = self.inner.submit(query, opts);
        let cache = Arc::clone(&self.cache);
        let key = query.canonical_key();
        ticket.on_settle(move |status, snapshot| {
            // Stage only completed queries (expired/revoked tickets have
            // nothing exact to share); `stage` rejects non-exact results.
            if status.is_done() {
                if let Some(result) = snapshot {
                    cache.stage(session, key, result);
                }
            }
        });
        ticket
    }

    fn revoke_superseded(&self, session: SessionId, viz_name: &str) {
        // Hit tickets are born settled (nothing pending on `hits`), so
        // only the engine layer can hold a superseded ticket.
        self.inner.revoke_superseded(session, viz_name);
    }

    fn on_link(&self, session: SessionId, source_query: &Query, target_query: &Query) {
        self.inner.on_link(session, source_query, target_query);
    }

    fn on_think(&self, session: SessionId, budget_units: u64) {
        self.inner.on_think(session, budget_units);
    }

    fn on_discard(&self, session: SessionId, viz_name: &str) {
        self.inner.on_discard(session, viz_name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggregateSpec, BinDef};
    use idebench_core::{ServiceCore, TicketStatus, VizSpec};
    use idebench_engine_exact::ExactAdapter;
    use idebench_query::execute_exact;
    use idebench_storage::{DataType, TableBuilder};

    fn dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = if i % 2 == 0 { "AA" } else { "DL" };
            b.push_row(&[c.into(), (i as f64).into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    fn service(
        cache: &Arc<SemanticCache>,
        sessions: usize,
        ds: &Dataset,
    ) -> Arc<CachedEngineService> {
        let svc = cache
            .wrap_service(ServiceCore::shared_adapter(ExactAdapter::with_defaults()).into_shared());
        for s in 0..sessions as u64 {
            svc.open_session(s, ds, &Settings::default()).unwrap();
        }
        svc
    }

    fn opts(session: SessionId) -> QueryOptions {
        QueryOptions::for_session(session).with_step_quantum(1_000_000)
    }

    #[test]
    fn repeated_query_from_second_session_is_a_cross_session_hit() {
        let ds = dataset(10_000);
        let cache = SemanticCache::new(2);
        let svc = service(&cache, 2, &ds);

        // Session 0's interaction at t = 0 executes and completes the
        // query, which the harness commits at the interaction's end
        // (t = 800): a recorded miss + insertion, no hits anywhere yet.
        cache.begin_event(0, 0.0);
        let t = svc.submit(&query(), opts(0));
        assert!(t.drive().is_done());
        drop(t);
        cache.commit_staged(0, 800.0);
        assert_eq!(
            cache.session_stats(0),
            CacheStats {
                hits: 0,
                misses: 1,
                insertions: 1
            }
        );
        assert_eq!(cache.len(), 1);

        // The identical query from *session 1*, issued after session 0's
        // completed (t = 900 > 800), is a recorded cross-session hit:
        // instantly done, zero units, bit-identical result.
        cache.begin_event(1, 900.0);
        let t = svc.submit(&query(), opts(1));
        assert_eq!(t.status(), TicketStatus::Done { spent: 0 });
        assert_eq!(t.snapshot().unwrap(), execute_exact(&ds, &query()).unwrap());
        assert_eq!(
            cache.session_stats(1),
            CacheStats {
                hits: 1,
                misses: 0,
                insertions: 0
            }
        );
        assert_eq!(cache.totals().hits, 1);
        assert_eq!(cache.totals().misses, 1);
    }

    #[test]
    fn future_results_are_invisible_on_the_virtual_timeline() {
        let ds = dataset(10_000);
        let cache = SemanticCache::new(2);
        let svc = service(&cache, 2, &ds);

        // Session 0 completes the query during [0, 800].
        cache.begin_event(0, 0.0);
        let t = svc.submit(&query(), opts(0));
        t.drive();
        drop(t);
        cache.commit_staged(0, 800.0);

        // Session 1 issues the same query at t = 100 — before session 0's
        // completion on the virtual timeline — and must therefore miss and
        // execute it itself, as in a real concurrent deployment.
        cache.begin_event(1, 100.0);
        let t = svc.submit(&query(), opts(1).with_step_quantum(10));
        assert!(!t.pump().is_settled(), "causal miss must execute the scan");
        assert_eq!(cache.session_stats(1).misses, 1);
        assert_eq!(cache.session_stats(1).hits, 0);
    }

    #[test]
    fn uncommitted_results_stay_invisible_within_an_interaction() {
        let ds = dataset(10_000);
        let cache = SemanticCache::new(1);
        let svc = service(&cache, 1, &ds);
        cache.begin_event(0, 0.0);
        let t = svc.submit(&query(), opts(0));
        t.drive();
        drop(t);
        // Completed but not yet committed: a concurrent lane of the same
        // interaction would not see it.
        assert!(cache.is_empty());
        assert!(cache.lookup(0, &query()).is_none());
        cache.commit_staged(0, 500.0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cancelled_query_is_not_staged() {
        let ds = dataset(100_000);
        let cache = SemanticCache::new(1);
        let svc = service(&cache, 1, &ds);
        cache.begin_event(0, 0.0);
        let t = svc.submit(&query(), opts(0).with_step_quantum(50));
        t.pump(); // far from completion
        drop(t); // cancelled (revoked)
        cache.commit_staged(0, 500.0);
        assert!(cache.is_empty());
        assert_eq!(cache.session_stats(0).insertions, 0);
        assert_eq!(cache.session_stats(0).misses, 1);
    }

    #[test]
    fn cache_hit_supersedes_an_in_flight_engine_miss() {
        let ds = dataset(100_000);
        let cache = SemanticCache::new(2);
        let svc = service(&cache, 2, &ds);
        // Session 1 computes the result and commits it at t = 100.
        cache.begin_event(1, 0.0);
        let t = svc.submit(&query(), opts(1));
        t.drive();
        drop(t);
        cache.commit_staged(1, 100.0);

        // Session 0's first refresh at t = 50 — before session 1's result
        // exists on the virtual timeline — misses and stays in flight...
        cache.begin_event(0, 50.0);
        let miss = svc.submit(&query(), opts(0).with_step_quantum(50));
        miss.pump();
        assert!(!miss.is_settled());
        // ...then the viz re-queries at t = 200 and hits the cache: the
        // supersede rule must reach through the cache layer and revoke the
        // engine ticket — no further units, no stale snapshot.
        let spent = miss.spent_units();
        cache.begin_event(0, 200.0);
        let hit = svc.submit(&query(), opts(0));
        assert_eq!(hit.status(), TicketStatus::Done { spent: 0 });
        assert!(miss.status().is_revoked());
        assert!(miss.snapshot().is_none());
        hit.drive();
        assert_eq!(miss.spent_units(), spent);
    }

    #[test]
    fn superseded_query_is_neither_staged_nor_served_stale() {
        let ds = dataset(100_000);
        let cache = SemanticCache::new(1);
        let svc = service(&cache, 1, &ds);
        cache.begin_event(0, 0.0);
        let t1 = svc.submit(&query(), opts(0).with_step_quantum(50));
        t1.pump();
        // A new interaction re-queries the same viz: t1 is revoked.
        let t2 = svc.submit(&query(), opts(0).with_step_quantum(50));
        assert!(t1.status().is_revoked());
        assert!(t1.snapshot().is_none(), "no stale snapshot");
        drop(t1);
        drop(t2);
        cache.commit_staged(0, 500.0);
        assert!(cache.is_empty(), "revoked queries stage nothing");
    }

    #[test]
    fn non_exact_results_are_rejected() {
        let cache = SemanticCache::new(1);
        let mut estimate = AggResult::empty_exact();
        estimate.exact = false;
        cache.stage(0, "k".into(), &estimate);
        cache.commit_staged(0, 100.0);
        assert!(cache.is_empty());
        assert_eq!(cache.session_stats(0).insertions, 0);
    }

    #[test]
    fn recommit_keeps_the_earlier_availability() {
        let cache = SemanticCache::new(2);
        let q = query();
        let r = AggResult::empty_exact();
        cache.stage(0, q.canonical_key(), &r);
        cache.commit_staged(0, 700.0);
        cache.stage(1, q.canonical_key(), &r);
        cache.commit_staged(1, 300.0); // earlier completion published later
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.totals().insertions, 2);
        cache.begin_event(0, 400.0);
        assert!(
            cache.lookup(0, &q).is_some(),
            "the earlier availability (300 ms) must win at now = 400 ms"
        );
    }

    #[test]
    fn hit_rate_arithmetic() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            insertions: 1,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        let mut t = CacheStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.hits, 6);
    }

    #[test]
    fn wrapper_keeps_engine_name_and_forwards_open_session() {
        let ds = dataset(100);
        let cache = SemanticCache::new(1);
        let svc = cache
            .wrap_service(ServiceCore::shared_adapter(ExactAdapter::with_defaults()).into_shared());
        assert_eq!(svc.name(), "exact");
        let prep = svc.open_session(0, &ds, &Settings::default()).unwrap();
        assert!(prep.load_units > 0);
    }
}
