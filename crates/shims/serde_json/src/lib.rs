//! In-repo shim for the `serde_json` crate (see `crates/shims/`): JSON text
//! parsing and printing plus the `json!` macro, over the serde shim's
//! [`Value`] tree.

pub use serde::{Map, Number, Value};

mod parser;

/// A serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Renders any serializable value as a JSON [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Reads a typed value out of a JSON [`Value`].
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    Ok(T::from_json(&value)?)
}

/// Serializes to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to human-readable, two-space-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parser::parse(text)?;
    Ok(T::from_json(&value)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push(']');
        }
        Value::Object(obj) => {
            if obj.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in obj.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_sep(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F64(v) if v.is_finite() => {
            // Rust's shortest-roundtrip Display; "10" re-parses as an
            // integer, which typed deserialization widens back to f64.
            let _ = write!(out, "{v}");
        }
        // Like serde_json, non-finite floats render as null.
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from a JSON-shaped literal; expressions interpolate
/// anywhere a value is expected. A recursive token muncher, in the style of
/// serde_json's macro, so values may be arbitrary Rust expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Implementation detail of [`json!`].
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut __object = $crate::Map::new();
        $crate::json_internal!(@object __object () ($($tt)+) ($($tt)+));
        $crate::Value::Object(__object)
    }};
    ($other:expr) => { $crate::to_value(&$other).expect("json! value serializes") };

    // ---- array elements: keyword/bracketed forms first, then expressions.
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true),] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($inner:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($inner)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($inner:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($inner)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last),])
    };
    (@array [$($elems:expr,)*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entries: accumulate key tokens until `:`, then a value.
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).to_string(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($inner:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!([$($inner)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($inner:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!({$($inner)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+]
            ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_typed() {
        let v: Vec<u64> = vec![1, 2, 3];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn large_u64_roundtrips_exactly() {
        let v = u64::MAX - 1;
        let text = to_string(&v).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn float_text_roundtrips() {
        for v in [0.1, -3.75, 1e-8, 12345.6789, -0.0, 10.0] {
            let text = to_string(&v).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(v, back, "text {text}");
        }
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = json!({"a": [1, 2], "b": {"c": true}});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"a\": [\n    1"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn json_macro_shapes() {
        let x = 5u64;
        let v = json!({"lit": 1.5, "expr": x, "arr": [1, "two", null], "nested": {"t": true}});
        assert_eq!(v["lit"], 1.5);
        assert_eq!(v["expr"], 5u64);
        assert_eq!(v["arr"][1], "two");
        assert!(v["arr"][2].is_null());
        assert_eq!(v["nested"]["t"], true);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
