//! Statistical utilities: normal CDF, Zipf sampling, empirical quantiles.

/// Standard normal CDF Φ(x), via Abramowitz–Stegun 7.1.26 on erf.
///
/// Absolute error < 1.5e-7 — ample for copula uniformization.
pub fn normal_cdf(x: f64) -> f64 {
    // erf via A&S 7.1.26.
    let z = x / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * z.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-z * z).exp();
    let signed = if z < 0.0 { -erf } else { erf };
    0.5 * (1.0 + signed)
}

/// Standard normal quantile Φ⁻¹(p). Re-exported from the benchmark core so
/// the whole workspace shares one implementation.
pub use idebench_core::metrics::normal_quantile;

/// Cumulative weights for a Zipf(s) distribution over `n` ranks.
///
/// Returns a vector `c` with `c[n-1] == 1.0`; sample by binary-searching a
/// uniform draw. Used for skewed airport/carrier popularity.
pub fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "zipf needs at least one rank");
    let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut cum = 0.0;
    for w in &mut weights {
        cum += *w / total;
        *w = cum;
    }
    // Guard against floating-point shortfall at the end.
    if let Some(last) = weights.last_mut() {
        *last = 1.0;
    }
    weights
}

/// Samples a rank from cumulative weights with a uniform draw in [0,1).
pub fn sample_cumulative(cum: &[f64], u: f64) -> usize {
    match cum.binary_search_by(|c| c.partial_cmp(&u).expect("weights are not NaN")) {
        Ok(i) => (i + 1).min(cum.len() - 1),
        Err(i) => i.min(cum.len() - 1),
    }
}

/// An empirical distribution supporting quantile (inverse-CDF) lookups.
///
/// Built from a sample; `quantile(u)` returns the value at rank `u·(n-1)`
/// with linear interpolation, so generated data interpolates between
/// observed sample values (the paper's "use the CDF from our sample to
/// transform the uniform variables").
#[derive(Debug, Clone)]
pub struct EmpiricalDist {
    sorted: Vec<f64>,
}

impl EmpiricalDist {
    /// Builds the distribution from (unsorted) sample values.
    pub fn new(mut values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "empirical distribution needs data");
        values.sort_by(|a, b| a.partial_cmp(b).expect("sample values are not NaN"));
        EmpiricalDist { sorted: values }
    }

    /// The u-quantile, u ∈ [0, 1], with linear interpolation.
    pub fn quantile(&self, u: f64) -> f64 {
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = u.clamp(0.0, 1.0) * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = (lo + 1).min(n - 1);
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Empirical CDF of a value (fraction of sample ≤ v).
    pub fn cdf(&self, v: f64) -> f64 {
        let n = self.sorted.len();
        let idx = self.sorted.partition_point(|&x| x <= v);
        idx as f64 / n as f64
    }

    /// Smallest and largest observed value.
    pub fn range(&self) -> (f64, f64) {
        (self.sorted[0], self.sorted[self.sorted.len() - 1])
    }
}

/// Normal scores of a data vector: rank-transform to uniforms then Φ⁻¹.
///
/// Ties get their index order (stable); this is the standard Gaussian-copula
/// fitting transform.
pub fn normal_scores(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("no NaNs"));
    let mut scores = vec![0.0; n];
    for (rank, &i) in idx.iter().enumerate() {
        let u = (rank as f64 + 0.5) / n as f64;
        scores[i] = normal_quantile(u);
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959964) - 0.025).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn cdf_and_quantile_are_inverse() {
        for p in [0.1, 0.25, 0.5, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn zipf_is_decreasing_and_normalized() {
        let cum = zipf_cumulative(10, 1.1);
        assert_eq!(cum.len(), 10);
        assert_eq!(*cum.last().unwrap(), 1.0);
        // First rank carries the largest probability mass.
        let p0 = cum[0];
        let p1 = cum[1] - cum[0];
        assert!(p0 > p1);
        assert!(p0 > 0.2);
    }

    #[test]
    fn sample_cumulative_hits_all_ranks() {
        let cum = zipf_cumulative(3, 1.0);
        assert_eq!(sample_cumulative(&cum, 0.0), 0);
        assert_eq!(sample_cumulative(&cum, 0.999999), 2);
        // Monotone in u.
        let mut last = 0;
        for i in 0..100 {
            let r = sample_cumulative(&cum, i as f64 / 100.0);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn empirical_quantile_interpolates() {
        let d = EmpiricalDist::new(vec![10.0, 0.0, 20.0]);
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), 20.0);
        assert_eq!(d.quantile(0.5), 10.0);
        assert_eq!(d.quantile(0.25), 5.0);
        assert_eq!(d.range(), (0.0, 20.0));
    }

    #[test]
    fn empirical_cdf_counts_fraction() {
        let d = EmpiricalDist::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(2.0), 0.5);
        assert_eq!(d.cdf(9.0), 1.0);
    }

    #[test]
    fn normal_scores_are_rank_monotone() {
        let v = vec![5.0, -1.0, 3.0];
        let s = normal_scores(&v);
        assert!(s[1] < s[2] && s[2] < s[0]);
        // Median rank is near zero.
        assert!(s[2].abs() < 0.5);
    }
}
