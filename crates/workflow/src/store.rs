//! Workflow file storage: the benchmark's on-disk workload format.
//!
//! The original benchmark ships workloads as directories of JSON workflow
//! files; this module reads and writes that layout so workloads can be
//! shared, versioned, and inspected ("we plan to allow other research
//! groups … to upload … user-defined workflows in the format that they can
//! be included in our framework", paper §6).

use crate::Workflow;
use std::io;
use std::path::{Path, PathBuf};

/// Writes each workflow to `dir/<name>.json`, creating the directory.
/// Returns the written paths in input order.
pub fn save_batch(dir: &Path, workflows: &[Workflow]) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(workflows.len());
    for wf in workflows {
        if wf.name.contains(['/', '\\']) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("workflow name {:?} is not a valid file stem", wf.name),
            ));
        }
        let path = dir.join(format!("{}.json", wf.name));
        std::fs::write(&path, wf.to_json())?;
        paths.push(path);
    }
    Ok(paths)
}

/// Loads every `*.json` workflow in `dir`, sorted by file name.
pub fn load_batch(dir: &Path) -> io::Result<Vec<Workflow>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)?;
            Workflow::from_json(&text).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WorkflowGenerator, WorkflowType};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idebench-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_and_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let batch = WorkflowGenerator::new(WorkflowType::Mixed, 5).generate_batch(4, 10);
        let paths = save_batch(&dir, &batch).unwrap();
        assert_eq!(paths.len(), 4);
        let loaded = load_batch(&dir).unwrap();
        assert_eq!(loaded.len(), 4);
        // Sorted by file name == generation order for zero-padded-free
        // names mixed_0..mixed_3.
        assert_eq!(loaded, batch);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_json_files_ignored() {
        let dir = tmpdir("ignore");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "not a workflow").unwrap();
        let batch = WorkflowGenerator::new(WorkflowType::Independent, 1).generate_batch(1, 5);
        save_batch(&dir, &batch).unwrap();
        assert_eq!(load_batch(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_json_reports_path() {
        let dir = tmpdir("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("broken.json"), "{ nope").unwrap();
        let err = load_batch(&dir).unwrap_err();
        assert!(err.to_string().contains("broken.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_workflow_name_rejected() {
        let dir = tmpdir("hostile");
        let mut wf = WorkflowGenerator::new(WorkflowType::Mixed, 1).generate(3);
        wf.name = "../escape".into();
        assert!(save_batch(&dir, &[wf]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
