//! Shared harness for the IDEBench experiment binaries.
//!
//! Every figure/table of the paper's evaluation has a binary in `src/bin/`
//! (see DESIGN.md's experiment index). This library provides what they all
//! share: dataset construction, the system roster, configuration sweeps,
//! report plumbing, and minimal CLI-argument handling.

pub mod config;

use idebench_core::service::{EngineService, ServiceCore};
use idebench_core::{
    BenchmarkDriver, CoreError, DetailedReport, Settings, SummaryReport, SystemAdapter,
};
use idebench_datagen::normalize_flights;
use idebench_engine_cache::CachingAdapter;
use idebench_engine_exact::ExactAdapter;
use idebench_engine_progressive::{ProgressiveAdapter, ProgressiveConfig};
use idebench_engine_stratified::StratifiedAdapter;
use idebench_engine_wander::WanderAdapter;
use idebench_query::CachedGroundTruth;
use idebench_storage::Dataset;
use idebench_workflow::{Workflow, WorkflowGenerator, WorkflowType};
use std::path::PathBuf;
use std::sync::Arc;

/// Common command-line arguments of every experiment binary.
///
/// `--rows N` sets the M-scale row count (S = N/5, L = 2N); `--seed N` the
/// global seed; `--quick` shrinks rows *and* the virtual work rate by 10×,
/// preserving every cost/TR ratio while making a run take seconds;
/// `--out DIR` the output directory for JSON artifacts.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// M-scale rows (default 5,000,000).
    pub rows_m: usize,
    /// Global RNG seed.
    pub seed: u64,
    /// Virtual work rate, units/second.
    pub work_rate: f64,
    /// Output directory for machine-readable results.
    pub out_dir: PathBuf,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            rows_m: 5_000_000,
            seed: 42,
            work_rate: 1e6,
            out_dir: PathBuf::from("bench-results"),
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with usage help on error.
    pub fn parse() -> ExpArgs {
        let mut args = ExpArgs::default();
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--rows" => {
                    args.rows_m = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--rows needs a number"));
                }
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--quick" => {
                    args.rows_m = 500_000;
                    args.work_rate = 1e5;
                }
                "--out" => {
                    args.out_dir =
                        PathBuf::from(iter.next().unwrap_or_else(|| usage("--out needs a path")));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Row count for a scale letter: S = M/5, M, L = 2M (the paper's
    /// 100M/500M/1B ratios).
    pub fn rows(&self, scale: char) -> usize {
        match scale {
            's' | 'S' => self.rows_m / 5,
            'l' | 'L' => self.rows_m * 2,
            _ => self.rows_m,
        }
    }

    /// Base settings with this run's execution calibration.
    pub fn settings(&self) -> Settings {
        Settings::default().with_seed(self.seed).with_execution(
            idebench_core::ExecutionMode::Virtual {
                work_rate: self.work_rate,
            },
        )
    }

    /// Writes a JSON artifact into the output directory.
    pub fn write_json(&self, name: &str, value: &impl serde::Serialize) {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        let path = self.out_dir.join(name);
        let text = serde_json::to_string_pretty(value).expect("results serialize");
        std::fs::write(&path, text).expect("write results file");
        println!("[wrote {}]", path.display());
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <exp> [--rows N] [--seed N] [--quick] [--out DIR]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Generates the de-normalized flights dataset at the given scale.
pub fn flights_dataset(rows: usize, seed: u64) -> Dataset {
    Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(rows, seed)))
}

/// Normalizes a de-normalized flights dataset into the Exp-2 star schema.
pub fn star_dataset(denorm: &Dataset) -> Dataset {
    let table = denorm.as_denormalized().expect("denormalized input");
    normalize_flights(table).expect("flights normalization succeeds")
}

/// The system roster of the paper's main experiment (§5.1).
pub fn main_roster() -> Vec<Box<dyn SystemAdapter>> {
    vec![
        Box::new(ExactAdapter::with_defaults()),
        Box::new(WanderAdapter::with_defaults()),
        Box::new(ProgressiveAdapter::with_defaults()),
        Box::new(StratifiedAdapter::with_defaults()),
    ]
}

/// A fresh adapter by report name (fresh state per configuration, the way
/// the paper restarts systems between runs).
pub fn adapter_by_name(name: &str) -> Box<dyn SystemAdapter> {
    try_adapter_by_name(name).unwrap_or_else(|| panic!("unknown system {name}"))
}

/// Non-panicking adapter lookup; `None` for unknown names (used by the
/// config runner to reject bad configuration files gracefully).
pub fn try_adapter_by_name(name: &str) -> Option<Box<dyn SystemAdapter>> {
    Some(match name {
        "exact" => Box::new(ExactAdapter::with_defaults()),
        "wander" => Box::new(WanderAdapter::with_defaults()),
        "progressive" => Box::new(ProgressiveAdapter::with_defaults()),
        "progressive+spec" => Box::new(ProgressiveAdapter::with_speculation()),
        "progressive-noreuse" => Box::new(ProgressiveAdapter::new(ProgressiveConfig {
            enable_reuse: false,
            ..ProgressiveConfig::default()
        })),
        "stratified" => Box::new(StratifiedAdapter::with_defaults()),
        "cache+exact" => Box::new(CachingAdapter::with_defaults(ExactAdapter::with_defaults())),
        // The paper's System Y shows pure per-query overhead with no
        // observable result reuse (§5.6), hence caching off.
        "system_y" => Box::new(CachingAdapter::new(
            ExactAdapter::with_defaults(),
            idebench_engine_cache::CacheConfig {
                overhead_s: 1.5,
                enable_cache: false,
            },
        )),
        _ => return None,
    })
}

/// A fresh shared service by report name — the [`EngineService`]-world
/// twin of [`adapter_by_name`] (fresh engine state per configuration, the
/// way the paper restarts systems between runs). The service hosts one
/// bridged adapter instance per session, so single-session experiment runs
/// behave exactly like the pre-service driver path.
pub fn service_by_name(name: &str) -> Arc<dyn EngineService> {
    let inner = name.to_string();
    ServiceCore::per_session_adapters(name, move |_| adapter_by_name(&inner)).into_shared()
}

/// Names of the four main-experiment systems.
pub const MAIN_SYSTEMS: [&str; 4] = ["exact", "wander", "progressive", "stratified"];

/// The paper's default workload: 10 workflows per type (plus mixed).
pub fn default_workflows(kind: WorkflowType, seed: u64, count: usize, len: usize) -> Vec<Workflow> {
    WorkflowGenerator::new(kind, seed).generate_batch(count, len)
}

/// Pre-computes the ground truth of an entire workload in parallel (one
/// exact execution per distinct query fingerprint, spread over all cores).
/// Experiment binaries call this once and reuse the oracle across every
/// (system, TR) configuration cell.
pub fn parallel_ground_truth(dataset: &Dataset, workflows: &[Workflow]) -> CachedGroundTruth {
    let slices: Vec<&[idebench_core::Interaction]> = workflows
        .iter()
        .map(|w| w.interactions.as_slice())
        .collect();
    let distinct = idebench_query::enumerate_workload_queries(dataset, &slices)
        .expect("workload queries bind against the dataset");
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    CachedGroundTruth::precompute(dataset.clone(), &distinct, threads)
}

/// Runs a set of workflows through one shared service under one
/// configuration and evaluates every query against ground truth.
///
/// All workflows run as session 0 of the service — engine state (reuse
/// caches, warm datasets) persists across the set, exactly as it did when
/// one adapter instance ran them back to back on the legacy driver path.
pub fn run_workflows(
    service: &dyn EngineService,
    dataset: &Dataset,
    workflows: &[Workflow],
    settings: &Settings,
    gt: &mut CachedGroundTruth,
) -> Result<DetailedReport, CoreError> {
    let driver = BenchmarkDriver::new(settings.clone());
    let mut reports = Vec::with_capacity(workflows.len());
    for wf in workflows {
        let outcome = driver.run_workflow_service(service, dataset, wf)?;
        reports.push(DetailedReport::from_outcome(&outcome, gt));
    }
    Ok(DetailedReport::merged(reports))
}

/// The dataset/workload/ground-truth bundle every experiment binary sets
/// up before its configuration sweep — extracted here so the `exp*` and
/// `ablations` binaries share one construction path instead of repeating
/// it.
pub struct ExpContext {
    /// The parsed common CLI arguments.
    pub args: ExpArgs,
    /// The dataset under test.
    pub dataset: Dataset,
    /// The workload.
    pub workflows: Vec<Workflow>,
    /// Ground-truth oracle for metric evaluation (shared across every
    /// configuration cell of the sweep).
    pub gt: CachedGroundTruth,
}

impl ExpContext {
    /// The standard sweep setup: flights data at `scale`, `count`
    /// workflows of `kind` with `len` interactions, and ground truth for
    /// the whole workload pre-computed in parallel on all cores.
    pub fn standard(
        args: ExpArgs,
        scale: char,
        kind: WorkflowType,
        count: usize,
        len: usize,
    ) -> ExpContext {
        let dataset = flights_dataset(args.rows(scale), args.seed);
        let workflows = default_workflows(kind, args.seed, count, len);
        let gt = parallel_ground_truth(&dataset, &workflows);
        ExpContext {
            args,
            dataset,
            workflows,
            gt,
        }
    }

    /// Setup over an explicit dataset/workload pair. `precompute_gt`
    /// chooses between the parallel whole-workload oracle and a lazy
    /// on-demand one (cheaper when only a few queries are evaluated).
    pub fn with_workload(
        args: ExpArgs,
        dataset: Dataset,
        workflows: Vec<Workflow>,
        precompute_gt: bool,
    ) -> ExpContext {
        let gt = if precompute_gt {
            parallel_ground_truth(&dataset, &workflows)
        } else {
            CachedGroundTruth::new(dataset.clone())
        };
        ExpContext {
            args,
            dataset,
            workflows,
            gt,
        }
    }

    /// Runs the whole workload on a fresh shared service for `system`
    /// (see [`service_by_name`]) and evaluates it.
    pub fn run_system(
        &mut self,
        system: &str,
        settings: &Settings,
    ) -> Result<DetailedReport, CoreError> {
        let service = service_by_name(system);
        run_workflows(
            service.as_ref(),
            &self.dataset,
            &self.workflows,
            settings,
            &mut self.gt,
        )
    }

    /// Runs workflow `idx` alone on a fresh shared service for `system`
    /// (per-workflow comparisons, e.g. Exp 5's three 1:N variants).
    pub fn run_nth(
        &mut self,
        system: &str,
        settings: &Settings,
        idx: usize,
    ) -> Result<DetailedReport, CoreError> {
        let service = service_by_name(system);
        let driver = BenchmarkDriver::new(settings.clone());
        let outcome =
            driver.run_workflow_service(service.as_ref(), &self.dataset, &self.workflows[idx])?;
        Ok(DetailedReport::from_outcome(&outcome, &mut self.gt))
    }
}

/// Pretty-prints a summary report with a heading.
pub fn print_summary(title: &str, summary: &SummaryReport) {
    println!("\n=== {title} ===");
    print!("{}", summary.render_text());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_letters() {
        let args = ExpArgs::default();
        assert_eq!(args.rows('S'), 1_000_000);
        assert_eq!(args.rows('m'), 5_000_000);
        assert_eq!(args.rows('L'), 10_000_000);
    }

    #[test]
    fn roster_contains_four_systems() {
        let roster = main_roster();
        let names: Vec<&str> = roster.iter().map(|a| a.name()).collect();
        assert_eq!(names, MAIN_SYSTEMS.to_vec());
    }

    #[test]
    fn end_to_end_smoke_all_systems() {
        // A miniature Exp-1: every main system runs a small mixed workload
        // through the shared-service path and produces evaluable reports.
        let dataset = flights_dataset(20_000, 7);
        let mut gt = CachedGroundTruth::new(dataset.clone());
        let workflows = default_workflows(WorkflowType::Mixed, 7, 2, 8);
        let settings = Settings::default()
            .with_seed(7)
            .with_time_requirement_ms(50)
            .with_think_time_ms(10)
            .with_execution(idebench_core::ExecutionMode::Virtual { work_rate: 1e5 });
        for name in MAIN_SYSTEMS {
            let service = service_by_name(name);
            let report = run_workflows(service.as_ref(), &dataset, &workflows, &settings, &mut gt)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!report.rows.is_empty(), "{name} produced no rows");
            let summary = SummaryReport::from_detailed(&report);
            assert_eq!(summary.rows.len(), 1);
        }
    }

    #[test]
    fn exp_context_matches_manual_setup() {
        let args = ExpArgs {
            rows_m: 10_000,
            seed: 9,
            work_rate: 1e5,
            ..ExpArgs::default()
        };
        let settings = args
            .settings()
            .with_time_requirement_ms(100)
            .with_think_time_ms(10);
        let mut ctx = ExpContext::standard(args, 'M', WorkflowType::Mixed, 2, 6);
        assert_eq!(ctx.workflows.len(), 2);
        let merged = ctx.run_system("exact", &settings).expect("exact runs");
        let nth = ctx.run_nth("exact", &settings, 0).expect("first workflow");
        assert!(!merged.rows.is_empty());
        assert!(nth.rows.len() < merged.rows.len());
        // The context's oracle served both runs.
        let (hits, _misses) = ctx.gt.stats();
        assert!(hits > 0, "repeated queries hit the shared oracle");
    }

    #[test]
    fn star_dataset_roundtrip() {
        let denorm = flights_dataset(5_000, 3);
        let star = star_dataset(&denorm);
        assert!(star.is_normalized());
        assert_eq!(star.fact_rows(), 5_000);
    }
}
