//! Star-schema datasets: a fact table plus dimension tables joined by
//! integer foreign keys.
//!
//! IDEBench runs on data-warehouse star schemas "in both de-normalized and
//! normalized form" (paper §3.1). [`Dataset`] is the handle the benchmark
//! passes to system adapters; engines that only support de-normalized data
//! (like the paper's IDEA and System X) reject the `Star` variant.

use crate::column::Column;
use crate::error::StorageError;
use crate::table::Table;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Specification of one dimension split out of a de-normalized table.
///
/// `attributes` move into the dimension table; `fk_name` is the surrogate-key
/// column added to the fact table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionSpec {
    /// Name of the dimension table to create (e.g. `"carriers"`).
    pub table_name: String,
    /// Name of the foreign-key column added to the fact table.
    pub fk_name: String,
    /// De-normalized columns that move into the dimension table.
    pub attributes: Vec<String>,
}

impl DimensionSpec {
    /// Creates a dimension spec.
    pub fn new(
        table_name: impl Into<String>,
        fk_name: impl Into<String>,
        attributes: Vec<String>,
    ) -> Self {
        DimensionSpec {
            table_name: table_name.into(),
            fk_name: fk_name.into(),
            attributes,
        }
    }
}

/// Default capacity of a star schema's join cache, in bytes (see
/// [`StarSchema::materialize_join`]).
pub const DEFAULT_JOIN_CACHE_BYTES: usize = 256 << 20;

/// Observable counters of a star schema's join cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JoinCacheStats {
    /// Materialized columns currently cached.
    pub entries: usize,
    /// Bytes held by the cached materializations.
    pub bytes: usize,
    /// Capacity in bytes; materializations that would exceed it are declined.
    pub capacity: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that materialized (and inserted) a new column.
    pub misses: u64,
    /// Materializations declined because they would exceed the capacity.
    pub declined: u64,
}

/// `(dimension index, column index)` → fact-ordered materialization.
type MaterializedColumns = FxHashMap<(usize, usize), Arc<Column>>;

/// Shared memo of fact-ordered dimension-column materializations.
///
/// The cache lives behind an `Arc`, so every clone of a [`StarSchema`] —
/// and every engine, session, or [`Dataset`] handle derived from it —
/// shares one set of materialized columns. Insertion is capped by a byte
/// budget; once full, further materializations are declined (the caller
/// falls back to translated per-morsel join access) rather than evicted,
/// keeping hot columns resident for the lifetime of the dataset.
#[derive(Debug)]
struct JoinCacheInner {
    capacity: usize,
    /// Materialized columns plus the bytes they hold, under one lock.
    columns: Mutex<(MaterializedColumns, usize)>,
    hits: AtomicU64,
    misses: AtomicU64,
    declined: AtomicU64,
}

/// A normalized dataset: one fact table and its dimensions.
#[derive(Debug, Clone)]
pub struct StarSchema {
    fact: Arc<Table>,
    dimensions: Vec<(DimensionSpec, Arc<Table>)>,
    join_cache: Arc<JoinCacheInner>,
}

impl StarSchema {
    /// Assembles a star schema. Each dimension's `fk_name` must exist as an
    /// integer column of the fact table, and key values must be valid row
    /// indexes of the dimension table.
    pub fn new(
        fact: Arc<Table>,
        dimensions: Vec<(DimensionSpec, Arc<Table>)>,
    ) -> Result<Self, StorageError> {
        Self::with_join_cache_capacity(fact, dimensions, DEFAULT_JOIN_CACHE_BYTES)
    }

    /// [`StarSchema::new`] with an explicit join-cache byte capacity
    /// (`0` disables materialization entirely).
    pub fn with_join_cache_capacity(
        fact: Arc<Table>,
        dimensions: Vec<(DimensionSpec, Arc<Table>)>,
        capacity: usize,
    ) -> Result<Self, StorageError> {
        for (spec, dim) in &dimensions {
            let fk = fact.column(&spec.fk_name)?;
            let keys = fk.as_int().ok_or_else(|| StorageError::TypeMismatch {
                column: spec.fk_name.clone(),
                expected: "int",
                got: "non-int",
            })?;
            let n = dim.num_rows() as i64;
            if let Some(&bad) = keys.iter().find(|&&k| k < 0 || k >= n) {
                return Err(StorageError::Csv {
                    line: 0,
                    message: format!(
                        "foreign key {bad} out of range for dimension {} ({} rows)",
                        spec.table_name, n
                    ),
                });
            }
        }
        Ok(StarSchema {
            fact,
            dimensions,
            join_cache: Arc::new(JoinCacheInner {
                capacity,
                columns: Mutex::new((FxHashMap::default(), 0)),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                declined: AtomicU64::new(0),
            }),
        })
    }

    /// The fact table.
    pub fn fact(&self) -> &Arc<Table> {
        &self.fact
    }

    /// The dimension tables with their specs.
    pub fn dimensions(&self) -> &[(DimensionSpec, Arc<Table>)] {
        &self.dimensions
    }

    /// Finds the dimension table holding `column`, if any.
    pub fn dimension_of_column(&self, column: &str) -> Option<(&DimensionSpec, &Arc<Table>)> {
        self.dimensions
            .iter()
            .find(|(_, t)| t.schema().index_of(column).is_ok())
            .map(|(s, t)| (s, t))
    }

    /// Dimension by table name.
    pub fn dimension(
        &self,
        table_name: &str,
    ) -> Result<(&DimensionSpec, &Arc<Table>), StorageError> {
        self.dimensions
            .iter()
            .find(|(s, _)| s.table_name == table_name)
            .map(|(s, t)| (s, t))
            .ok_or_else(|| StorageError::UnknownTable(table_name.to_string()))
    }

    /// Fact-ordered materialization of the dimension column `column`,
    /// served from the schema's shared join cache.
    ///
    /// The returned column has one row per *fact* row — row `r` holds
    /// `dim_column[fk[r]]` (with nulls preserved) — so scans read it like
    /// any de-normalized column: no per-row foreign-key indirection, no
    /// join at all. Materialization runs once per `(dimension, column)`
    /// pair; the memo is `Arc`-shared across every clone of this schema,
    /// so concurrent sessions and repeated queries against one dataset
    /// reuse a single materialization.
    ///
    /// Returns `None` when `column` is not a dimension attribute, or when
    /// materializing it would push the cache past its byte capacity (the
    /// caller then keeps translated join access; nothing is evicted).
    pub fn materialize_join(&self, column: &str) -> Option<Arc<Column>> {
        let (dim_idx, (spec, dim)) = self
            .dimensions
            .iter()
            .enumerate()
            .find(|(_, (_, t))| t.schema().index_of(column).is_ok())?;
        let col_idx = dim.schema().index_of(column).ok()?;
        let cache = &self.join_cache;
        if let Some(hit) = cache.columns.lock().unwrap().0.get(&(dim_idx, col_idx)) {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(hit));
        }
        let dim_col = dim.column_at(col_idx);
        // Size the materialization *before* building it — declining must
        // not cost an O(fact) gather. The estimate matches the built
        // column's [`Column::byte_size`] by construction: element width ×
        // fact rows, plus the validity bitmap `take` carries over whenever
        // the dimension column has one.
        let elem = match dim_col.data() {
            crate::column::ColumnData::Nominal(..) => 4,
            _ => 8,
        };
        let validity_bytes = if dim_col.validity().is_some() {
            self.fact.num_rows().div_ceil(64) * 8
        } else {
            0
        };
        let size = elem * self.fact.num_rows() + validity_bytes;
        {
            let held = self.join_cache.columns.lock().unwrap().1;
            if held + size > cache.capacity {
                cache.declined.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        let fk = self
            .fact
            .column(&spec.fk_name)
            .ok()?
            .as_int()
            .expect("fk column validated at construction");
        let rows: Vec<usize> = fk.iter().map(|&k| k as usize).collect();
        let materialized = Arc::new(dim_col.take(&rows));
        debug_assert_eq!(materialized.byte_size(), size, "pre-sizing is exact");
        let mut guard = cache.columns.lock().unwrap();
        // Re-check under the lock: a racing materialization may have landed
        // (reuse it, dropping ours) or consumed the remaining budget.
        if let Some(existing) = guard.0.get(&(dim_idx, col_idx)) {
            cache.hits.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(existing));
        }
        if guard.1 + size > cache.capacity {
            cache.declined.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        guard.1 += materialized.byte_size();
        guard
            .0
            .insert((dim_idx, col_idx), Arc::clone(&materialized));
        cache.misses.fetch_add(1, Ordering::Relaxed);
        Some(materialized)
    }

    /// Counters of the shared join cache (see
    /// [`StarSchema::materialize_join`]).
    pub fn join_cache_stats(&self) -> JoinCacheStats {
        let (entries, bytes) = {
            let guard = self.join_cache.columns.lock().unwrap();
            (guard.0.len(), guard.1)
        };
        JoinCacheStats {
            entries,
            bytes,
            capacity: self.join_cache.capacity,
            hits: self.join_cache.hits.load(Ordering::Relaxed),
            misses: self.join_cache.misses.load(Ordering::Relaxed),
            declined: self.join_cache.declined.load(Ordering::Relaxed),
        }
    }

    /// Total rows across fact and dimensions (size metric for reports).
    pub fn total_rows(&self) -> usize {
        self.fact.num_rows()
            + self
                .dimensions
                .iter()
                .map(|(_, t)| t.num_rows())
                .sum::<usize>()
    }

    /// Total byte footprint across fact and dimensions.
    pub fn byte_size(&self) -> usize {
        self.fact.byte_size()
            + self
                .dimensions
                .iter()
                .map(|(_, t)| t.byte_size())
                .sum::<usize>()
    }
}

/// The dataset handle handed to system adapters.
#[derive(Debug, Clone)]
pub enum Dataset {
    /// One wide de-normalized table.
    Denormalized(Arc<Table>),
    /// Fact + dimensions (normalized star schema).
    Star(Arc<StarSchema>),
}

impl Dataset {
    /// Rows in the fact (or single) table — the "size" of the dataset in the
    /// sense of the paper's S/M/L settings.
    pub fn fact_rows(&self) -> usize {
        match self {
            Dataset::Denormalized(t) => t.num_rows(),
            Dataset::Star(s) => s.fact.num_rows(),
        }
    }

    /// True when the dataset is normalized (requires join support).
    pub fn is_normalized(&self) -> bool {
        matches!(self, Dataset::Star(_))
    }

    /// Whether two handles point at the *same* dataset (`Arc` identity).
    /// Engines use this for idempotent `prepare`: re-preparing the dataset
    /// already loaded must not rebuild shuffles, samples, or statistics.
    pub fn ptr_eq(&self, other: &Dataset) -> bool {
        match (self, other) {
            (Dataset::Denormalized(x), Dataset::Denormalized(y)) => Arc::ptr_eq(x, y),
            (Dataset::Star(x), Dataset::Star(y)) => Arc::ptr_eq(x, y),
            _ => false,
        }
    }

    /// Total byte footprint.
    pub fn byte_size(&self) -> usize {
        match self {
            Dataset::Denormalized(t) => t.byte_size(),
            Dataset::Star(s) => s.byte_size(),
        }
    }

    /// The de-normalized table, if this dataset is de-normalized.
    pub fn as_denormalized(&self) -> Option<&Arc<Table>> {
        match self {
            Dataset::Denormalized(t) => Some(t),
            Dataset::Star(_) => None,
        }
    }

    /// The star schema, if this dataset is normalized.
    pub fn as_star(&self) -> Option<&Arc<StarSchema>> {
        match self {
            Dataset::Star(s) => Some(s),
            Dataset::Denormalized(_) => None,
        }
    }

    /// Computes and caches numeric min/max statistics for every column
    /// (see [`crate::Column::numeric_min_max`]).
    ///
    /// Engines call this during `prepare`, where load/preprocess cost is
    /// already reported, so plan compilation never pays a lazy O(rows)
    /// stats scan inside `submit` — a cost the work-unit accounting could
    /// not otherwise see.
    pub fn warm_numeric_stats(&self) {
        let warm = |t: &Table| {
            for col in t.columns() {
                let _ = col.numeric_min_max();
            }
        };
        match self {
            Dataset::Denormalized(t) => warm(t),
            Dataset::Star(s) => {
                warm(s.fact());
                for (_, dim) in s.dimensions() {
                    warm(dim);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::table::{TableBuilder, Value};

    fn fact() -> Arc<Table> {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        for (d, k) in [(1.0, 0i64), (2.0, 1), (3.0, 0)] {
            b.push_row(&[d.into(), k.into()]).unwrap();
        }
        Arc::new(b.finish())
    }

    fn carriers() -> Arc<Table> {
        let mut b = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        b.push_row(&[Value::Str("AA".into())]).unwrap();
        b.push_row(&[Value::Str("DL".into())]).unwrap();
        Arc::new(b.finish())
    }

    fn spec() -> DimensionSpec {
        DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()])
    }

    #[test]
    fn star_schema_validates_keys() {
        let s = StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap();
        assert_eq!(s.total_rows(), 5);
        assert!(s.dimension("carriers").is_ok());
        assert!(s.dimension("nope").is_err());
    }

    #[test]
    fn out_of_range_fk_rejected() {
        let mut b = TableBuilder::with_fields("f", &[("carrier_key", DataType::Int)]);
        b.push_row(&[Value::Int(5)]).unwrap();
        let bad_fact = Arc::new(b.finish());
        assert!(StarSchema::new(bad_fact, vec![(spec(), carriers())]).is_err());
    }

    #[test]
    fn dimension_of_column_finds_home_table() {
        let s = StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap();
        let (d, _) = s.dimension_of_column("carrier").unwrap();
        assert_eq!(d.table_name, "carriers");
        assert!(s.dimension_of_column("dep_delay").is_none());
    }

    #[test]
    fn join_cache_materializes_once_and_shares() {
        let s = StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap();
        let a = s.materialize_join("carrier").unwrap();
        // Fact-ordered: keys [0, 1, 0] → codes of AA, DL, AA.
        let (codes, dict) = a.as_nominal().unwrap();
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(dict.value(1), Some("DL"));
        // Second lookup — and lookups through a *clone* of the schema —
        // share the same materialization.
        let b = s.materialize_join("carrier").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = s.clone().materialize_join("carrier").unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        let stats = s.join_cache_stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, 3 * 4);
        assert_eq!((stats.hits, stats.misses, stats.declined), (2, 1, 0));
    }

    #[test]
    fn join_cache_declines_over_capacity() {
        let s =
            StarSchema::with_join_cache_capacity(fact(), vec![(spec(), carriers())], 0).unwrap();
        assert!(s.materialize_join("carrier").is_none());
        let stats = s.join_cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.declined, 1);
    }

    #[test]
    fn join_cache_rejects_non_dimension_columns() {
        let s = StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap();
        assert!(s.materialize_join("dep_delay").is_none(), "fact column");
        assert!(s.materialize_join("ghost").is_none(), "unknown column");
    }

    #[test]
    fn dataset_accessors() {
        let denorm = Dataset::Denormalized(fact());
        assert_eq!(denorm.fact_rows(), 3);
        assert!(!denorm.is_normalized());
        assert!(denorm.as_denormalized().is_some());

        let star = Dataset::Star(Arc::new(
            StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap(),
        ));
        assert!(star.is_normalized());
        assert_eq!(star.fact_rows(), 3);
        assert!(star.as_star().is_some());
        assert!(star.byte_size() > 0);
    }
}
