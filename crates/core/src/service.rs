//! The shared, concurrent, deadline-aware query service API.
//!
//! [`SystemAdapter`] (paper §4.5) is a *single-analyst proxy*: `submit`
//! takes `&mut self` and hands out one exclusively-owned query handle at a
//! time, so multi-session harnesses can only scale by cloning one adapter
//! per session and sharing state through side channels. [`EngineService`]
//! is the opposite shape — the deployment shape: **one shared engine, many
//! in-flight queries**, submitted through `&self` with explicit deadlines,
//! priorities and session identity, and driven by a central
//! deadline-aware scheduler.
//!
//! # The ticket model
//!
//! [`EngineService::submit`] returns a [`QueryTicket`] — a handle into the
//! service's [`TicketScheduler`]. The scheduler multiplexes grant quanta
//! across *all* in-flight tickets: every pump grants one quantum of work
//! units to the ticket with the least `(priority, deadline, session,
//! ticket)` key — earliest-effective-deadline-first, with deterministic
//! session/ticket tie-breaks. Callers observe progress through
//! [`QueryTicket::snapshot`] (best currently-available result) and
//! [`QueryTicket::subscribe`] (versioned progressive updates), and drive
//! execution cooperatively with [`QueryTicket::drive`] /
//! [`QueryTicket::pump`].
//!
//! # Cancellation
//!
//! Queries are revoked cooperatively, per the paper's driver semantics
//! (§4.4: a new interaction on a viz supersedes that viz's pending
//! refresh):
//!
//! - **supersede**: submitting a query for a `(session, viz)` pair that
//!   already has an unsettled ticket revokes the old ticket;
//! - **deadline**: a ticket whose work-unit budget (`deadline_units`) is
//!   exhausted settles as [`TicketStatus::Expired`] — its last snapshot
//!   (partial, for progressive engines) remains fetchable;
//! - **explicit**: [`QueryTicket::cancel`] revokes, [`QueryTicket::expire`]
//!   deadline-cancels, and dropping a ticket revokes any remaining work.
//!
//! A revoked ticket consumes no further units and **never surfaces a stale
//! snapshot** ([`QueryTicket::snapshot`] returns `None`).
//!
//! # Determinism
//!
//! Scheduling order is a pure function of `(priority, deadline_units,
//! session id, ticket id)`; grants are virtual work units, never wall
//! clock. Worker threads (the morsel dispatcher under a step) only change
//! how fast a grant's rows are scanned, never the grant sequence or the
//! results — so reports produced through the service are bit-identical
//! across worker counts, exactly like the legacy driver path.
//!
//! # Implementations
//!
//! [`ServiceCore`] is the shared host every in-repo engine uses: it owns
//! the scheduler and adapts a [`ServiceBackend`] (per-session engine
//! state) into the shared-service shape. [`LegacyAdapterBridge`] is the
//! backend that runs unmodified [`SystemAdapter`] implementations — either
//! one shared instance (stateless engines) or one instance per session
//! (engines with per-analyst state). See the README's migration note.

use crate::adapter::{PrepStats, QueryHandle, SystemAdapter};
use crate::error::CoreError;
use crate::query::Query;
use crate::result::AggResult;
use crate::settings::Settings;
use idebench_storage::Dataset;
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Identifies one analyst session within a shared service.
pub type SessionId = u64;

/// Identifies one submitted query within a scheduler.
pub type TicketId = u64;

/// Scheduler ordering key: `(priority, deadline_units, session, ticket)`.
/// Smaller sorts first on every component — priority class 0 preempts
/// class 1, then the earliest effective deadline wins, then ties break
/// deterministically by session and submission order.
type SchedKey = (u8, u64, SessionId, TicketId);

/// Per-query submission options (deadline, priority class, session).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOptions {
    /// Work-unit budget before the ticket is expired — the query's
    /// *effective deadline* on the virtual timeline, and its urgency key
    /// for earliest-deadline-first scheduling. `u64::MAX` means "no
    /// deadline" (wall-clock callers enforce their own).
    pub deadline_units: u64,
    /// Priority class; **smaller is more urgent** (class 0 preempts
    /// class 1). Within a class, scheduling is deadline-first.
    pub priority: u8,
    /// The submitting session.
    pub session: SessionId,
    /// Work units granted to this ticket per scheduler pump. Smaller =
    /// finer-grained deadline enforcement and fairer interleaving; larger
    /// = less stepping overhead.
    pub step_quantum: u64,
}

impl QueryOptions {
    /// Default options for a session: no deadline, priority class 0, the
    /// default driver step quantum.
    pub fn for_session(session: SessionId) -> QueryOptions {
        QueryOptions {
            deadline_units: u64::MAX,
            priority: 0,
            session,
            step_quantum: 16_384,
        }
    }

    /// Builder-style setter for the work-unit deadline.
    pub fn with_deadline_units(mut self, units: u64) -> QueryOptions {
        self.deadline_units = units;
        self
    }

    /// Builder-style setter for the priority class (smaller = more urgent).
    pub fn with_priority(mut self, priority: u8) -> QueryOptions {
        self.priority = priority;
        self
    }

    /// Builder-style setter for the per-grant step quantum.
    pub fn with_step_quantum(mut self, quantum: u64) -> QueryOptions {
        self.step_quantum = quantum.max(1);
        self
    }
}

/// Observable state of a ticket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// Admitted and schedulable; `spent` units consumed so far.
    Running {
        /// Work units consumed so far.
        spent: u64,
    },
    /// Completed; the final result is fetchable via `snapshot`.
    Done {
        /// Work units the query consumed in total.
        spent: u64,
    },
    /// Deadline exhausted before completion. The last snapshot the engine
    /// produced (partial, for progressive engines; `None` for blocking
    /// ones) remains fetchable.
    Expired {
        /// Work units charged to the query: the full budget when a finite
        /// work-unit deadline was set (the benchmark's time-requirement
        /// accounting), otherwise the units consumed before
        /// [`QueryTicket::expire`] was called.
        spent: u64,
    },
    /// Superseded or cancelled; no further units are consumed and
    /// `snapshot` returns `None`.
    Revoked {
        /// Work units consumed before revocation.
        spent: u64,
    },
}

impl TicketStatus {
    /// Work units charged to the ticket so far.
    pub fn spent(self) -> u64 {
        match self {
            TicketStatus::Running { spent }
            | TicketStatus::Done { spent }
            | TicketStatus::Expired { spent }
            | TicketStatus::Revoked { spent } => spent,
        }
    }

    /// Whether the ticket has reached a terminal state.
    pub fn is_settled(self) -> bool {
        !matches!(self, TicketStatus::Running { .. })
    }

    /// Whether the query ran to completion.
    pub fn is_done(self) -> bool {
        matches!(self, TicketStatus::Done { .. })
    }

    /// Whether the ticket was revoked (superseded or cancelled).
    pub fn is_revoked(self) -> bool {
        matches!(self, TicketStatus::Revoked { .. })
    }

    /// Whether the ticket expired at its deadline.
    pub fn is_expired(self) -> bool {
        matches!(self, TicketStatus::Expired { .. })
    }
}

/// Callback invoked exactly once when a ticket settles (see
/// [`QueryTicket::on_settle`]). Receives the terminal status and the final
/// snapshot, and runs under the scheduler lock — it must not call back
/// into the scheduler or ticket API.
pub type SettleHook = Box<dyn FnOnce(TicketStatus, Option<&AggResult>) + Send>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Running,
    Done,
    Expired,
    Revoked,
}

/// One in-flight (or settled, not-yet-released) query.
struct TicketCell {
    key: SchedKey,
    viz: String,
    quantum: u64,
    deadline: u64,
    spent: u64,
    phase: Phase,
    handle: Option<Box<dyn QueryHandle>>,
    /// `Arc`-shared so settled cache hits cost no deep copy at admission
    /// (readers copy once, at `snapshot()`).
    final_snapshot: Option<Arc<AggResult>>,
    /// Bumped on every state change; drives [`TicketSubscription`].
    version: u64,
    hook: Option<SettleHook>,
}

impl TicketCell {
    fn status(&self) -> TicketStatus {
        match self.phase {
            Phase::Running => TicketStatus::Running { spent: self.spent },
            Phase::Done => TicketStatus::Done { spent: self.spent },
            Phase::Expired => TicketStatus::Expired { spent: self.spent },
            Phase::Revoked => TicketStatus::Revoked { spent: self.spent },
        }
    }
}

/// Moves a cell to a terminal phase: takes a final snapshot (never for
/// revocations — a superseded query must not surface a stale result),
/// drops the engine handle (cancelling any remaining work), and fires the
/// settle hook.
fn settle(cell: &mut TicketCell, phase: Phase) {
    debug_assert_eq!(cell.phase, Phase::Running, "settling a settled ticket");
    let handle = cell.handle.take();
    cell.final_snapshot = if phase == Phase::Revoked {
        None
    } else {
        handle.as_ref().and_then(|h| h.snapshot()).map(Arc::new)
    };
    drop(handle);
    cell.phase = phase;
    cell.version += 1;
    if let Some(hook) = cell.hook.take() {
        hook(cell.status(), cell.final_snapshot.as_deref());
    }
}

/// Revokes the unsettled pending ticket of `(session, viz)` under the
/// scheduler lock (shared by `admit_cell` and `revoke_pending`).
fn revoke_pending_locked(inner: &mut SchedState, session: SessionId, viz: &str) {
    if let Some(&old) = inner.pending.get(&(session, viz.to_string())) {
        if let Some(cell) = inner.tickets.get_mut(&old) {
            if cell.phase == Phase::Running {
                let old_key = cell.key;
                settle(cell, Phase::Revoked);
                inner.queue.remove(&old_key);
            }
        }
    }
}

#[derive(Default)]
struct SchedState {
    next_id: TicketId,
    tickets: FxHashMap<TicketId, TicketCell>,
    /// Runnable tickets in scheduling order.
    queue: BTreeSet<SchedKey>,
    /// Supersede index: the latest ticket submitted per `(session, viz)`.
    /// Entries are cleaned lazily (checked against the ticket's phase).
    pending: FxHashMap<(SessionId, String), TicketId>,
}

/// The central deadline/priority-aware scheduler behind a shared service.
///
/// All state lives under one mutex: grants are *virtual-time bookkeeping*
/// (the actual row work under a grant still fans out over the query
/// crate's shared scan pool), and a single lock keeps the grant sequence —
/// and therefore every report — a pure function of the submitted
/// `(priority, deadline, session, ticket)` keys.
#[derive(Default)]
pub struct TicketScheduler {
    inner: Mutex<SchedState>,
}

impl TicketScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Arc<TicketScheduler> {
        Arc::new(TicketScheduler::default())
    }

    /// Admits a query handle, revoking any unsettled ticket of the same
    /// `(session, viz)` (the supersede rule). A zero deadline expires the
    /// ticket immediately — its snapshot (e.g. resumed progress from a
    /// reuse cache) is still captured.
    pub fn admit(
        self: &Arc<Self>,
        handle: Box<dyn QueryHandle>,
        viz: impl Into<String>,
        opts: QueryOptions,
    ) -> QueryTicket {
        self.admit_cell(Some(handle), None, viz.into(), opts)
    }

    /// Admits an already-settled ticket (e.g. a cache hit served at zero
    /// work-unit cost): it is born `Done` with `result` as its final
    /// snapshot (`Arc`-shared — no deep copy at admission), and still
    /// participates in the supersede rule.
    pub fn admit_settled(
        self: &Arc<Self>,
        result: Option<Arc<AggResult>>,
        viz: impl Into<String>,
        opts: QueryOptions,
    ) -> QueryTicket {
        self.admit_cell(None, Some(result), viz.into(), opts)
    }

    /// Revokes the unsettled pending ticket for `(session, viz)`, if any —
    /// the supersede rule, exposed for layered services whose superseding
    /// query is answered at the layer (e.g. a cache hit) and therefore
    /// never reaches this scheduler.
    pub fn revoke_pending(&self, session: SessionId, viz: &str) {
        let mut inner = self.inner.lock().unwrap();
        revoke_pending_locked(&mut inner, session, viz);
    }

    fn admit_cell(
        self: &Arc<Self>,
        handle: Option<Box<dyn QueryHandle>>,
        settled_with: Option<Option<Arc<AggResult>>>,
        viz: String,
        opts: QueryOptions,
    ) -> QueryTicket {
        let mut inner = self.inner.lock().unwrap();
        let id = inner.next_id;
        inner.next_id += 1;
        let key = (opts.priority, opts.deadline_units, opts.session, id);

        // Supersede: a newer query for the same viz revokes the old one.
        revoke_pending_locked(&mut inner, opts.session, &viz);
        inner.pending.insert((opts.session, viz.clone()), id);

        let mut cell = TicketCell {
            key,
            viz,
            quantum: opts.step_quantum.max(1),
            deadline: opts.deadline_units,
            spent: 0,
            phase: Phase::Running,
            handle,
            final_snapshot: None,
            version: 0,
            hook: None,
        };
        match settled_with {
            Some(result) => {
                // Born settled: skip the queue entirely.
                cell.handle = None;
                cell.final_snapshot = result;
                cell.phase = Phase::Done;
                cell.version += 1;
            }
            None if opts.deadline_units == 0 => settle(&mut cell, Phase::Expired),
            None => {
                inner.queue.insert(key);
            }
        }
        inner.tickets.insert(id, cell);
        QueryTicket {
            sched: Arc::clone(self),
            id,
        }
    }

    /// Grants one quantum to the schedulable ticket with the least
    /// `(priority, deadline, session, ticket)` key. Returns `false` when
    /// nothing is runnable.
    ///
    /// Mirrors the legacy driver's budget loop exactly: a grant never
    /// exceeds the remaining deadline budget; completion settles `Done`; a
    /// zero-unit step without completion is a stalled engine and is
    /// charged the full budget (`Expired`), as `drive_to_budget` did.
    pub fn pump_one(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let Some(&key) = inner.queue.iter().next() else {
            return false;
        };
        inner.queue.remove(&key);
        let id = key.3;
        let requeue = {
            let cell = inner
                .tickets
                .get_mut(&id)
                .expect("queued ticket has a cell");
            if cell.phase != Phase::Running {
                // Settled or revoked between queue insert and pump; drop.
                false
            } else {
                let grant = cell.quantum.min(cell.deadline - cell.spent);
                let status = cell
                    .handle
                    .as_mut()
                    .expect("running ticket has a handle")
                    .step(grant);
                debug_assert!(status.units() <= grant, "engine overdrew step grant");
                cell.spent += status.units();
                cell.version += 1;
                if status.is_done() {
                    settle(cell, Phase::Done);
                    false
                } else if status.units() == 0 {
                    // Engine yields without progress: charge the whole
                    // budget to avoid an infinite loop (legacy stall rule).
                    if cell.deadline != u64::MAX {
                        cell.spent = cell.deadline;
                    }
                    settle(cell, Phase::Expired);
                    false
                } else if cell.spent >= cell.deadline {
                    settle(cell, Phase::Expired);
                    false
                } else {
                    true
                }
            }
        };
        if requeue {
            inner.queue.insert(key);
        }
        true
    }

    /// Number of tickets not yet released (running or settled-but-held).
    pub fn live_tickets(&self) -> usize {
        self.inner.lock().unwrap().tickets.len()
    }

    /// Number of runnable tickets awaiting grants.
    pub fn runnable(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    fn terminate(&self, id: TicketId, phase: Phase) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(cell) = inner.tickets.get_mut(&id) {
            if cell.phase == Phase::Running {
                // Early expiry of a finite-deadline ticket charges the
                // full budget, matching deadline exhaustion in `pump_one`
                // (the benchmark's time-requirement accounting).
                if phase == Phase::Expired && cell.deadline != u64::MAX {
                    cell.spent = cell.deadline;
                }
                let key = cell.key;
                settle(cell, phase);
                inner.queue.remove(&key);
            }
        }
    }

    fn release(&self, id: TicketId) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(cell) = inner.tickets.remove(&id) {
            inner.queue.remove(&cell.key);
            // Clean the supersede index if this ticket is still the viz's
            // latest, so `pending` never outgrows the live dashboards.
            let session = cell.key.2;
            if inner.pending.get(&(session, cell.viz.clone())) == Some(&id) {
                inner.pending.remove(&(session, cell.viz));
            }
        }
    }
}

/// A handle to one submitted query — the service-world replacement for the
/// exclusively-owned [`crate::QueryHandle`].
///
/// Dropping the ticket releases its scheduler state and cancels any
/// remaining work (a running ticket settles as revoked first).
pub struct QueryTicket {
    sched: Arc<TicketScheduler>,
    id: TicketId,
}

impl QueryTicket {
    /// The ticket's scheduler-unique id (the deterministic tie-break key).
    pub fn id(&self) -> TicketId {
        self.id
    }

    /// Current status (phase + units consumed).
    pub fn status(&self) -> TicketStatus {
        self.sched.inner.lock().unwrap().tickets[&self.id].status()
    }

    /// Work units charged to the query so far.
    pub fn spent_units(&self) -> u64 {
        self.status().spent()
    }

    /// Whether the ticket has reached a terminal state.
    pub fn is_settled(&self) -> bool {
        self.status().is_settled()
    }

    /// Whether the query ran to completion.
    pub fn is_done(&self) -> bool {
        self.status().is_done()
    }

    /// The best currently-available result: live engine snapshots while
    /// running (partial estimates for progressive engines), the final
    /// snapshot once done or expired, and `None` for revoked tickets —
    /// a superseded query never surfaces a stale snapshot.
    pub fn snapshot(&self) -> Option<AggResult> {
        let inner = self.sched.inner.lock().unwrap();
        let cell = &inner.tickets[&self.id];
        match cell.phase {
            Phase::Running => cell.handle.as_ref().and_then(|h| h.snapshot()),
            Phase::Revoked => None,
            Phase::Done | Phase::Expired => cell.final_snapshot.as_deref().cloned(),
        }
    }

    /// Pumps the scheduler until this ticket settles, then returns its
    /// terminal status. Grants go to the globally most-urgent ticket each
    /// pump, so driving one ticket also advances more-urgent work from
    /// other sessions — cooperative multiplexing.
    pub fn drive(&self) -> TicketStatus {
        loop {
            let status = self.status();
            if status.is_settled() {
                return status;
            }
            if !self.sched.pump_one() {
                // Queue drained (e.g. self settled on the last pump).
                return self.status();
            }
        }
    }

    /// Grants exactly one scheduler pump (to the globally most-urgent
    /// ticket) and returns this ticket's status afterwards. Building block
    /// for wall-clock deadline loops.
    pub fn pump(&self) -> TicketStatus {
        self.sched.pump_one();
        self.status()
    }

    /// Revokes the ticket: no further units are consumed and
    /// [`QueryTicket::snapshot`] returns `None`. No-op once settled.
    pub fn cancel(&self) {
        self.sched.terminate(self.id, Phase::Revoked);
    }

    /// Deadline-cancels the ticket: it settles as expired and its last
    /// engine snapshot (partial results) stays fetchable. No-op once
    /// settled. Wall-clock drivers call this at the time requirement.
    pub fn expire(&self) {
        self.sched.terminate(self.id, Phase::Expired);
    }

    /// Subscribes to the ticket's progressive updates (see
    /// [`TicketSubscription::poll`]).
    pub fn subscribe(&self) -> TicketSubscription {
        TicketSubscription {
            sched: Arc::clone(&self.sched),
            id: self.id,
            last_version: 0,
        }
    }

    /// Registers a callback fired exactly once when the ticket settles
    /// (immediately, if it already has). Multiple registrations *chain*:
    /// hooks fire in registration order, so a layered service's hook (e.g.
    /// cache staging) survives a later caller's. Hooks run under the
    /// scheduler lock: they must not call back into the scheduler or
    /// ticket API.
    pub fn on_settle(&self, hook: impl FnOnce(TicketStatus, Option<&AggResult>) + Send + 'static) {
        let mut inner = self.sched.inner.lock().unwrap();
        let cell = inner.tickets.get_mut(&self.id).expect("live ticket");
        if cell.phase == Phase::Running {
            cell.hook = Some(match cell.hook.take() {
                None => Box::new(hook),
                Some(prev) => Box::new(move |status, snapshot| {
                    prev(status, snapshot);
                    hook(status, snapshot);
                }),
            });
        } else {
            hook(cell.status(), cell.final_snapshot.as_deref());
        }
    }
}

impl Drop for QueryTicket {
    fn drop(&mut self) {
        self.sched.terminate(self.id, Phase::Revoked);
        self.sched.release(self.id);
    }
}

impl std::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTicket")
            .field("id", &self.id)
            .field("status", &self.status())
            .finish()
    }
}

/// A polling subscription to one ticket's progressive updates.
pub struct TicketSubscription {
    sched: Arc<TicketScheduler>,
    id: TicketId,
    last_version: u64,
}

impl TicketSubscription {
    /// Returns `Some((status, snapshot))` when the ticket changed since
    /// the previous poll (a grant was consumed, a snapshot refreshed, or
    /// the ticket settled); `None` when nothing changed or the ticket has
    /// been released.
    pub fn poll(&mut self) -> Option<(TicketStatus, Option<AggResult>)> {
        let inner = self.sched.inner.lock().unwrap();
        let cell = inner.tickets.get(&self.id)?;
        if cell.version == self.last_version {
            return None;
        }
        self.last_version = cell.version;
        let snapshot = match cell.phase {
            Phase::Running => cell.handle.as_ref().and_then(|h| h.snapshot()),
            Phase::Revoked => None,
            Phase::Done | Phase::Expired => cell.final_snapshot.as_deref().cloned(),
        };
        Some((cell.status(), snapshot))
    }
}

/// Proxy between the benchmark and a *shared* system under test — the
/// multi-session successor of [`SystemAdapter`] (see the module docs).
///
/// One `Arc<dyn EngineService>` serves every session of a run: sessions
/// are opened with their own settings, submit concurrently through
/// `&self`, and never own engine state.
pub trait EngineService: Send + Sync {
    /// Short engine name used in reports (e.g. `"exact"`).
    fn name(&self) -> &str;

    /// Makes the service ready to answer `session`'s queries over
    /// `dataset`: ingestion and offline preparation on first contact
    /// (idempotent per dataset), plus per-session state. Returns the
    /// preparation cost charged to this session.
    fn open_session(
        &self,
        session: SessionId,
        dataset: &Dataset,
        settings: &Settings,
    ) -> Result<PrepStats, CoreError>;

    /// Ends a session (the legacy `workflow_end`). Engine-side session
    /// state may be retained so a later `open_session` resumes it.
    fn close_session(&self, _session: SessionId) {}

    /// Submits a query on behalf of `opts.session`, returning its ticket.
    /// An unsettled ticket for the same `(session, viz)` is revoked (the
    /// paper's supersede rule).
    fn submit(&self, query: &Query, opts: QueryOptions) -> QueryTicket;

    /// Revokes `session`'s unsettled pending ticket for `viz_name`, if
    /// any, *without* submitting a replacement through this service —
    /// layered services (result caches) call this when the superseding
    /// query is answered at their layer, so the supersede rule holds
    /// across layers.
    fn revoke_superseded(&self, _session: SessionId, _viz_name: &str) {}

    /// Speculation hint: the session linked two vizs (paper `link_vizs`).
    fn on_link(&self, _session: SessionId, _source_query: &Query, _target_query: &Query) {}

    /// Grants idle think-time work units to the session's engine state.
    fn on_think(&self, _session: SessionId, _budget_units: u64) {}

    /// The session discarded a viz (paper `delete_vizs`).
    fn on_discard(&self, _session: SessionId, _viz_name: &str) {}
}

/// Engine-side state behind a [`ServiceCore`]: everything that is *not*
/// the scheduler. Methods take `&mut self`; the core serializes access.
pub trait ServiceBackend: Send {
    /// Prepares (idempotently) for `session` over `dataset` and returns
    /// the preparation cost charged to that session.
    fn open_session(
        &mut self,
        session: SessionId,
        dataset: &Dataset,
        settings: &Settings,
    ) -> Result<PrepStats, CoreError>;

    /// Ends a session; state may be retained for resumption.
    fn close_session(&mut self, _session: SessionId) {}

    /// Opens a steppable run for one query of `session`.
    fn open_query(&mut self, session: SessionId, query: &Query) -> Box<dyn QueryHandle>;

    /// Link hint (see [`EngineService::on_link`]).
    fn on_link(&mut self, _session: SessionId, _source_query: &Query, _target_query: &Query) {}

    /// Think-time grant (see [`EngineService::on_think`]).
    fn on_think(&mut self, _session: SessionId, _budget_units: u64) {}

    /// Viz discard (see [`EngineService::on_discard`]).
    fn on_discard(&mut self, _session: SessionId, _viz_name: &str) {}
}

/// Factory producing one [`SystemAdapter`] per session.
pub type AdapterFactory = Box<dyn FnMut(SessionId) -> Box<dyn SystemAdapter> + Send>;

enum BridgeMode {
    /// One adapter instance serves every session — correct for engines
    /// whose `submit` is stateless across sessions (exact, wander,
    /// stratified): shared dataset ingestion, shared samples, shared
    /// column statistics.
    Shared(Box<dyn SystemAdapter>),
    /// One adapter instance per session — engines with per-analyst state
    /// (the progressive engine's reuse/speculation stores, middleware
    /// result caches) keep exactly their single-analyst semantics.
    PerSession {
        factory: AdapterFactory,
        sessions: FxHashMap<SessionId, Box<dyn SystemAdapter>>,
    },
}

/// Runs unmodified [`SystemAdapter`] implementations behind the
/// [`EngineService`] API (as a [`ServiceBackend`] for [`ServiceCore`]).
///
/// `open_session` maps to `prepare` + `workflow_start`, `close_session`
/// to `workflow_end`, `open_query` to `submit`, and the notification
/// hooks forward directly — so an adapter written against the paper's
/// Listing-1 interface runs under the shared service without changes.
pub struct LegacyAdapterBridge {
    mode: BridgeMode,
}

impl LegacyAdapterBridge {
    /// Bridges one shared adapter instance serving every session.
    pub fn shared(adapter: Box<dyn SystemAdapter>) -> LegacyAdapterBridge {
        LegacyAdapterBridge {
            mode: BridgeMode::Shared(adapter),
        }
    }

    /// Bridges a factory creating one adapter instance per session
    /// (lazily, at the session's `open_session`).
    pub fn per_session(
        factory: impl FnMut(SessionId) -> Box<dyn SystemAdapter> + Send + 'static,
    ) -> LegacyAdapterBridge {
        LegacyAdapterBridge {
            mode: BridgeMode::PerSession {
                factory: Box::new(factory),
                sessions: FxHashMap::default(),
            },
        }
    }

    fn adapter_mut(&mut self, session: SessionId) -> &mut dyn SystemAdapter {
        match &mut self.mode {
            BridgeMode::Shared(a) => a.as_mut(),
            BridgeMode::PerSession { sessions, .. } => sessions
                .get_mut(&session)
                .expect("open_session must run before queries")
                .as_mut(),
        }
    }
}

impl ServiceBackend for LegacyAdapterBridge {
    fn open_session(
        &mut self,
        session: SessionId,
        dataset: &Dataset,
        settings: &Settings,
    ) -> Result<PrepStats, CoreError> {
        let adapter = match &mut self.mode {
            BridgeMode::Shared(a) => a.as_mut(),
            BridgeMode::PerSession { factory, sessions } => sessions
                .entry(session)
                .or_insert_with(|| factory(session))
                .as_mut(),
        };
        let prep = adapter.prepare(dataset, settings)?;
        adapter.workflow_start();
        Ok(prep)
    }

    fn close_session(&mut self, session: SessionId) {
        // Session state is retained (like the legacy harness, which kept
        // adapters alive across workflows); only the lifecycle hook fires.
        match &mut self.mode {
            BridgeMode::Shared(a) => a.workflow_end(),
            BridgeMode::PerSession { sessions, .. } => {
                if let Some(a) = sessions.get_mut(&session) {
                    a.workflow_end();
                }
            }
        }
    }

    fn open_query(&mut self, session: SessionId, query: &Query) -> Box<dyn QueryHandle> {
        self.adapter_mut(session).submit(query)
    }

    fn on_link(&mut self, session: SessionId, source_query: &Query, target_query: &Query) {
        self.adapter_mut(session)
            .on_link(source_query, target_query);
    }

    fn on_think(&mut self, session: SessionId, budget_units: u64) {
        self.adapter_mut(session).on_think(budget_units);
    }

    fn on_discard(&mut self, session: SessionId, viz_name: &str) {
        self.adapter_mut(session).on_discard(viz_name);
    }
}

/// The shared service host: one [`TicketScheduler`] plus one
/// [`ServiceBackend`], implementing [`EngineService`] for all of them.
///
/// Every in-repo engine exposes a constructor returning a `ServiceCore`
/// (`ExactAdapter::into_service()`, `ProgressiveAdapter::service(…)`, …);
/// external `SystemAdapter` impls go through
/// [`ServiceCore::shared_adapter`] / [`ServiceCore::per_session_adapters`].
pub struct ServiceCore {
    name: String,
    backend: Mutex<Box<dyn ServiceBackend>>,
    sched: Arc<TicketScheduler>,
}

impl ServiceCore {
    /// Hosts an arbitrary backend under `name`.
    pub fn new(name: impl Into<String>, backend: Box<dyn ServiceBackend>) -> ServiceCore {
        ServiceCore {
            name: name.into(),
            backend: Mutex::new(backend),
            sched: TicketScheduler::new(),
        }
    }

    /// Hosts one shared adapter instance serving every session (stateless
    /// engines: dataset ingestion, samples and column statistics are
    /// shared fleet-wide instead of duplicated per analyst).
    pub fn shared_adapter(adapter: impl SystemAdapter + 'static) -> ServiceCore {
        let name = adapter.name().to_string();
        ServiceCore::new(
            name,
            Box::new(LegacyAdapterBridge::shared(Box::new(adapter))),
        )
    }

    /// Hosts one adapter instance per session, created lazily by
    /// `factory` — the migration path for engines with per-analyst state.
    pub fn per_session_adapters(
        name: impl Into<String>,
        factory: impl FnMut(SessionId) -> Box<dyn SystemAdapter> + Send + 'static,
    ) -> ServiceCore {
        ServiceCore::new(name, Box::new(LegacyAdapterBridge::per_session(factory)))
    }

    /// The service's scheduler (shared with every ticket it issued).
    pub fn scheduler(&self) -> &Arc<TicketScheduler> {
        &self.sched
    }

    /// Boxes the core behind the trait object every harness consumes.
    pub fn into_shared(self) -> Arc<dyn EngineService> {
        Arc::new(self)
    }
}

impl EngineService for ServiceCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn open_session(
        &self,
        session: SessionId,
        dataset: &Dataset,
        settings: &Settings,
    ) -> Result<PrepStats, CoreError> {
        self.backend
            .lock()
            .unwrap()
            .open_session(session, dataset, settings)
    }

    fn close_session(&self, session: SessionId) {
        self.backend.lock().unwrap().close_session(session);
    }

    fn submit(&self, query: &Query, opts: QueryOptions) -> QueryTicket {
        let handle = self.backend.lock().unwrap().open_query(opts.session, query);
        self.sched.admit(handle, query.viz_name().to_string(), opts)
    }

    fn revoke_superseded(&self, session: SessionId, viz_name: &str) {
        self.sched.revoke_pending(session, viz_name);
    }

    fn on_link(&self, session: SessionId, source_query: &Query, target_query: &Query) {
        self.backend
            .lock()
            .unwrap()
            .on_link(session, source_query, target_query);
    }

    fn on_think(&self, session: SessionId, budget_units: u64) {
        self.backend.lock().unwrap().on_think(session, budget_units);
    }

    fn on_discard(&self, session: SessionId, viz_name: &str) {
        self.backend.lock().unwrap().on_discard(session, viz_name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::StepStatus;
    use crate::result::{BinCoord, BinKey, BinStats};
    use crate::spec::{AggregateSpec, BinDef, VizSpec};
    use idebench_storage::{DataType, TableBuilder};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A handle costing `remaining` units; progressive handles expose a
    /// partial snapshot as soon as any unit was consumed.
    struct ToyHandle {
        remaining: u64,
        progressed: u64,
        progressive: bool,
    }

    impl ToyHandle {
        fn result(units: u64) -> AggResult {
            let mut r = AggResult::empty_exact();
            r.insert(
                BinKey::d1(BinCoord::Cat(0)),
                BinStats::exact(vec![units as f64]),
            );
            r
        }
    }

    impl QueryHandle for ToyHandle {
        fn step(&mut self, granted: u64) -> StepStatus {
            let used = granted.min(self.remaining);
            self.remaining -= used;
            self.progressed += used;
            if self.remaining == 0 {
                StepStatus::Done { units: used }
            } else {
                StepStatus::Running { units: used }
            }
        }

        fn snapshot(&self) -> Option<AggResult> {
            if self.remaining == 0 || (self.progressive && self.progressed > 0) {
                Some(ToyHandle::result(self.progressed))
            } else {
                None
            }
        }

        fn is_done(&self) -> bool {
            self.remaining == 0
        }
    }

    struct ToyAdapter {
        cost: u64,
        progressive: bool,
        thinks: Vec<u64>,
        discards: Vec<String>,
    }

    impl ToyAdapter {
        fn new(cost: u64, progressive: bool) -> ToyAdapter {
            ToyAdapter {
                cost,
                progressive,
                thinks: Vec::new(),
                discards: Vec::new(),
            }
        }
    }

    impl SystemAdapter for ToyAdapter {
        fn name(&self) -> &str {
            "toy"
        }

        fn prepare(&mut self, _d: &Dataset, _s: &Settings) -> Result<PrepStats, CoreError> {
            Ok(PrepStats {
                load_units: 3,
                ..Default::default()
            })
        }

        fn submit(&mut self, _query: &Query) -> Box<dyn QueryHandle> {
            Box::new(ToyHandle {
                remaining: self.cost,
                progressed: 0,
                progressive: self.progressive,
            })
        }

        fn on_think(&mut self, budget_units: u64) {
            self.thinks.push(budget_units);
        }

        fn on_discard(&mut self, viz_name: &str) {
            self.discards.push(viz_name.to_string());
        }
    }

    fn dataset() -> Dataset {
        let mut b = TableBuilder::with_fields("flights", &[("carrier", DataType::Nominal)]);
        b.push_row(&["AA".into()]).unwrap();
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn query(viz: &str) -> Query {
        let spec = VizSpec::new(
            viz,
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    fn service(cost: u64, progressive: bool) -> ServiceCore {
        let svc = ServiceCore::shared_adapter(ToyAdapter::new(cost, progressive));
        svc.open_session(0, &dataset(), &Settings::default())
            .unwrap();
        svc
    }

    fn opts(session: SessionId, deadline: u64) -> QueryOptions {
        QueryOptions::for_session(session)
            .with_deadline_units(deadline)
            .with_step_quantum(100)
    }

    #[test]
    fn ticket_completes_within_deadline() {
        let svc = service(250, false);
        let t = svc.submit(&query("v"), opts(0, 1_000));
        assert_eq!(t.status(), TicketStatus::Running { spent: 0 });
        let st = t.drive();
        assert_eq!(st, TicketStatus::Done { spent: 250 });
        assert_eq!(t.snapshot().unwrap(), ToyHandle::result(250));
    }

    #[test]
    fn ticket_expires_at_deadline_budget() {
        let svc = service(5_000, false);
        let t = svc.submit(&query("v"), opts(0, 300));
        let st = t.drive();
        assert_eq!(st, TicketStatus::Expired { spent: 300 });
        // Blocking engine: nothing fetchable at expiry.
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn expired_progressive_ticket_keeps_partial_snapshot() {
        let svc = service(5_000, true);
        let t = svc.submit(&query("v"), opts(0, 300));
        assert!(t.drive().is_expired());
        assert_eq!(t.snapshot().unwrap(), ToyHandle::result(300));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let svc = service(100, false);
        let t = svc.submit(&query("v"), opts(0, 0));
        assert_eq!(t.status(), TicketStatus::Expired { spent: 0 });
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn superseding_submit_revokes_the_pending_ticket() {
        let svc = service(10_000, true);
        let t1 = svc.submit(&query("v"), opts(0, 5_000));
        // Partially drive, then supersede with a fresh query on the viz.
        t1.pump();
        let spent_before = t1.spent_units();
        assert!(spent_before > 0 && !t1.is_settled());
        let t2 = svc.submit(&query("v"), opts(0, 5_000));
        // Revoked: no more units, and no stale snapshot.
        assert_eq!(
            t1.status(),
            TicketStatus::Revoked {
                spent: spent_before
            }
        );
        assert!(t1.snapshot().is_none());
        // Driving the new ticket never advances the revoked one.
        t2.pump();
        assert_eq!(t1.spent_units(), spent_before);
        assert!(t2.spent_units() > 0);
    }

    #[test]
    fn distinct_vizs_and_sessions_do_not_supersede() {
        let svc = service(10_000, false);
        svc.open_session(1, &dataset(), &Settings::default())
            .unwrap();
        let t1 = svc.submit(&query("v"), opts(0, 5_000));
        let t2 = svc.submit(&query("w"), opts(0, 5_000));
        let t3 = svc.submit(&query("v"), opts(1, 5_000));
        assert!(!t1.is_settled());
        assert!(!t2.is_settled());
        assert!(!t3.is_settled());
    }

    #[test]
    fn scheduler_grants_by_deadline_then_session_then_ticket() {
        let svc = service(1_000, false);
        svc.open_session(1, &dataset(), &Settings::default())
            .unwrap();
        // Session 1 submits first but with a later effective deadline.
        let relaxed = svc.submit(&query("v"), opts(1, 10_000));
        let urgent = svc.submit(&query("v"), opts(0, 2_000));
        // Driving the relaxed ticket must first fund the urgent one.
        let st = relaxed.drive();
        assert!(st.is_done());
        assert!(urgent.is_done(), "EDF pumped the urgent ticket first");
    }

    #[test]
    fn priority_class_preempts_deadline() {
        let svc = service(1_000, false);
        let background = svc.submit(&query("v"), opts(0, 500).with_priority(1));
        let foreground = svc.submit(&query("w"), opts(0, 10_000).with_priority(0));
        background.pump();
        // The class-0 ticket got the quantum despite the later deadline.
        assert!(foreground.spent_units() > 0);
        assert_eq!(background.spent_units(), 0);
    }

    #[test]
    fn cancel_revokes_and_drop_releases() {
        let svc = service(10_000, true);
        let t = svc.submit(&query("v"), opts(0, 5_000));
        t.pump();
        t.cancel();
        assert!(t.status().is_revoked());
        assert!(t.snapshot().is_none());
        assert_eq!(svc.scheduler().runnable(), 0);
        drop(t);
        assert_eq!(svc.scheduler().live_tickets(), 0);
    }

    #[test]
    fn expire_preserves_partial_results() {
        let svc = service(10_000, true);
        let t = svc.submit(&query("v"), opts(0, u64::MAX));
        t.pump();
        t.expire();
        assert!(t.status().is_expired());
        assert!(t.snapshot().is_some());
    }

    #[test]
    fn subscription_sees_progress_and_settlement() {
        let svc = service(250, true);
        let t = svc.submit(&query("v"), opts(0, 1_000));
        let mut sub = t.subscribe();
        assert!(sub.poll().is_none(), "no progress yet");
        t.pump();
        let (st, snap) = sub.poll().expect("first grant is an update");
        assert_eq!(st.spent(), 100);
        assert!(snap.is_some());
        assert!(sub.poll().is_none(), "no change between grants");
        t.drive();
        let (st, snap) = sub.poll().expect("settlement is an update");
        assert!(st.is_done());
        assert_eq!(snap.unwrap(), ToyHandle::result(250));
        drop(t);
        assert!(sub.poll().is_none(), "released ticket yields nothing");
    }

    #[test]
    fn on_settle_fires_once_with_final_result() {
        let fired = Arc::new(AtomicU64::new(0));
        let svc = service(250, false);
        let t = svc.submit(&query("v"), opts(0, 1_000));
        let f = Arc::clone(&fired);
        t.on_settle(move |st, snap| {
            assert!(st.is_done());
            assert!(snap.is_some());
            f.fetch_add(1, Ordering::SeqCst);
        });
        t.drive();
        t.drive();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        // Late registration on a settled ticket fires immediately.
        let f = Arc::clone(&fired);
        t.on_settle(move |_, _| {
            f.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn admit_settled_serves_instantly_at_zero_cost() {
        let sched = TicketScheduler::new();
        let result = ToyHandle::result(7);
        let t = sched.admit_settled(Some(Arc::new(result.clone())), "v", opts(0, 1_000));
        assert_eq!(t.status(), TicketStatus::Done { spent: 0 });
        assert_eq!(t.snapshot().unwrap(), result);
        assert_eq!(t.drive(), TicketStatus::Done { spent: 0 });
    }

    #[test]
    fn on_settle_hooks_chain_in_registration_order() {
        let order = Arc::new(Mutex::new(Vec::new()));
        let svc = service(250, false);
        let t = svc.submit(&query("v"), opts(0, 1_000));
        for tag in ["layer", "caller"] {
            let o = Arc::clone(&order);
            t.on_settle(move |st, _| {
                assert!(st.is_done());
                o.lock().unwrap().push(tag);
            });
        }
        t.drive();
        assert_eq!(*order.lock().unwrap(), vec!["layer", "caller"]);
    }

    #[test]
    fn early_expire_charges_the_finite_budget() {
        let svc = service(10_000, true);
        // Finite deadline: expiring early still charges the full budget,
        // matching `pump_one`'s deadline-exhaustion accounting.
        let t = svc.submit(&query("v"), opts(0, 4_000));
        t.pump();
        t.expire();
        assert_eq!(t.status(), TicketStatus::Expired { spent: 4_000 });
        // No deadline (wall-clock callers): only consumed units charged.
        let t = svc.submit(&query("w"), opts(0, u64::MAX));
        t.pump();
        t.expire();
        assert_eq!(t.status(), TicketStatus::Expired { spent: 100 });
    }

    #[test]
    fn revoke_pending_supersedes_without_replacement() {
        let svc = service(10_000, true);
        let t = svc.submit(&query("v"), opts(0, 5_000));
        t.pump();
        svc.revoke_superseded(0, "v");
        assert!(t.status().is_revoked());
        assert!(t.snapshot().is_none());
        // Unknown viz / session: no-op.
        svc.revoke_superseded(0, "ghost");
        svc.revoke_superseded(9, "v");
    }

    #[test]
    fn per_session_bridge_isolates_adapter_state() {
        let svc =
            ServiceCore::per_session_adapters("toy", |_| Box::new(ToyAdapter::new(1_000, false)));
        let ds = dataset();
        svc.open_session(0, &ds, &Settings::default()).unwrap();
        svc.open_session(1, &ds, &Settings::default()).unwrap();
        // Think grants route to the owning session's adapter only; this
        // just must not panic and must not cross-talk (ToyAdapter records
        // per-instance state).
        svc.on_think(0, 42);
        svc.on_discard(1, "v");
        let t0 = svc.submit(&query("v"), opts(0, 2_000));
        let t1 = svc.submit(&query("v"), opts(1, 2_000));
        assert!(t0.drive().is_done());
        assert!(t1.drive().is_done());
    }

    #[test]
    fn stalled_engine_is_charged_the_full_budget() {
        /// Yields forever without progress.
        struct Stall;
        impl QueryHandle for Stall {
            fn step(&mut self, _granted: u64) -> StepStatus {
                StepStatus::Running { units: 0 }
            }
            fn snapshot(&self) -> Option<AggResult> {
                None
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let sched = TicketScheduler::new();
        let t = sched.admit(Box::new(Stall), "v", opts(0, 777));
        assert_eq!(t.drive(), TicketStatus::Expired { spent: 777 });
    }
}
