//! Synthetic seed generator for the default IDEBench dataset: U.S. domestic
//! flights (paper §4.2, Figure 2).
//!
//! The original benchmark seeds its scaler with real Bureau of
//! Transportation Statistics data. That data is not redistributable here,
//! so this module synthesizes a seed with the same schema and — critically
//! for AQP benchmarking — the same *distribution classes*:
//!
//! - Zipf-skewed carrier and airport popularity (a few hubs dominate).
//! - Bimodal departure times (morning and evening banks).
//! - Heavy-tailed departure delays (mostly on time, occasionally very late),
//!   with carrier-, airport- and rush-hour-dependent shifts.
//! - Strong correlations: arrival delay tracks departure delay; air time
//!   tracks route distance; states follow airports.

use crate::stats::{sample_cumulative, zipf_cumulative};
use idebench_storage::{DataType, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Name of the generated fact table.
pub const FLIGHTS_TABLE: &str = "flights";

/// Number of distinct carriers in the seed.
pub const NUM_CARRIERS: usize = 14;
/// Number of distinct airports in the seed.
pub const NUM_AIRPORTS: usize = 120;
/// Number of distinct states airports are spread over.
pub const NUM_STATES: usize = 48;

/// The flights schema: `(name, type)` pairs, mirroring paper Figure 2.
pub const SCHEMA: &[(&str, DataType)] = &[
    ("carrier", DataType::Nominal),
    ("origin", DataType::Nominal),
    ("origin_state", DataType::Nominal),
    ("dest", DataType::Nominal),
    ("dest_state", DataType::Nominal),
    ("month", DataType::Int),
    ("day_of_week", DataType::Int),
    ("dep_time", DataType::Float),
    ("dep_delay", DataType::Float),
    ("arr_time", DataType::Float),
    ("arr_delay", DataType::Float),
    ("distance", DataType::Float),
    ("air_time", DataType::Float),
];

struct Airport {
    code: String,
    state: usize,
    x: f64,
    y: f64,
    congestion: f64,
}

struct World {
    airports: Vec<Airport>,
    airport_cum: Vec<f64>,
    carrier_cum: Vec<f64>,
    carrier_delay_offset: Vec<f64>,
    month_cum: Vec<f64>,
}

fn build_world(rng: &mut StdRng) -> World {
    let airports = (0..NUM_AIRPORTS)
        .map(|i| Airport {
            code: format!("A{i:03}"),
            state: i % NUM_STATES,
            x: rng.random::<f64>() * 2400.0,
            y: rng.random::<f64>() * 1400.0,
            // Hubs (low ranks) are more congested.
            congestion: 6.0 / (1.0 + i as f64 * 0.15) + rng.random::<f64>() * 2.0,
        })
        .collect();
    let carrier_delay_offset = (0..NUM_CARRIERS)
        .map(|_| rng.random::<f64>() * 8.0 - 3.0)
        .collect();
    // Mild seasonality: summer (6–8) and December are busier.
    let month_weight = |m: usize| match m {
        6..=8 => 1.35,
        12 => 1.25,
        1 | 2 => 0.85,
        _ => 1.0,
    };
    let total: f64 = (1..=12).map(month_weight).sum();
    let mut cum = 0.0;
    let month_cum = (1..=12)
        .map(|m| {
            cum += month_weight(m) / total;
            cum
        })
        .collect();
    World {
        airports,
        airport_cum: zipf_cumulative(NUM_AIRPORTS, 1.05),
        carrier_cum: zipf_cumulative(NUM_CARRIERS, 0.8),
        carrier_delay_offset,
        month_cum,
    }
}

/// One standard-normal draw (Box–Muller, using two uniforms).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential draw with the given mean.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    -rng.random::<f64>().max(1e-12).ln() * mean
}

/// Generates `n` rows of synthetic flights with the given RNG seed.
///
/// Deterministic: equal `(n, seed)` always produces an identical table.
pub fn generate(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let world = build_world(&mut rng);
    let mut b = TableBuilder::with_fields(FLIGHTS_TABLE, SCHEMA);
    let mut row: Vec<Value> = Vec::with_capacity(SCHEMA.len());

    for _ in 0..n {
        let carrier = sample_cumulative(&world.carrier_cum, rng.random());
        let origin = sample_cumulative(&world.airport_cum, rng.random());
        let mut dest = sample_cumulative(&world.airport_cum, rng.random());
        if dest == origin {
            dest = (dest + 1) % NUM_AIRPORTS;
        }
        let (o, d) = (&world.airports[origin], &world.airports[dest]);

        let month = sample_cumulative(&world.month_cum, rng.random()) as i64 + 1;
        // Weekdays are ~20% busier than weekend days.
        let dow = {
            let u: f64 = rng.random();
            if u < 0.78 {
                1 + (rng.random::<f64>() * 5.0) as i64
            } else {
                6 + (rng.random::<f64>() * 2.0) as i64
            }
        };

        // Bimodal departure times: morning bank (8±1.8h) and evening bank
        // (17±2.2h), clamped to the day.
        let dep_time = if rng.random::<f64>() < 0.55 {
            (8.0 + normal(&mut rng) * 1.8).clamp(0.0, 23.99)
        } else {
            (17.0 + normal(&mut rng) * 2.2).clamp(0.0, 23.99)
        };

        // Departure delay: carrier + origin congestion + evening rush, with
        // a heavy late tail.
        let rush = if (15.5..20.5).contains(&dep_time) {
            4.0
        } else {
            0.0
        };
        let base = world.carrier_delay_offset[carrier] + o.congestion * 0.6 + rush;
        let u: f64 = rng.random();
        let dep_delay = if u < 0.62 {
            base - 4.0 + normal(&mut rng) * 4.5
        } else if u < 0.92 {
            base + exponential(&mut rng, 14.0)
        } else {
            base + 20.0 + exponential(&mut rng, 55.0)
        };
        let dep_delay = (dep_delay * 10.0).round() / 10.0;

        let distance = {
            let dx = o.x - d.x;
            let dy = o.y - d.y;
            ((dx * dx + dy * dy).sqrt() + 60.0 + rng.random::<f64>() * 30.0).max(80.0)
        };
        // ~7.6 miles/minute cruise plus taxi/approach overhead.
        let air_time = distance / 7.6 + 18.0 + normal(&mut rng) * 6.0;
        let air_time = air_time.max(20.0);

        // Arrival delay strongly tracks departure delay, with en-route
        // recovery and noise.
        let arr_delay = dep_delay * 0.92 - 4.0 + normal(&mut rng) * 9.0;
        let arr_delay = (arr_delay * 10.0).round() / 10.0;

        let arr_time = (dep_time + air_time / 60.0 + arr_delay.max(0.0) / 60.0).rem_euclid(24.0);

        row.clear();
        row.push(Value::Str(format!("C{carrier:02}")));
        row.push(Value::Str(o.code.clone()));
        row.push(Value::Str(format!("S{:02}", o.state)));
        row.push(Value::Str(d.code.clone()));
        row.push(Value::Str(format!("S{:02}", d.state)));
        row.push(Value::Int(month));
        row.push(Value::Int(dow));
        row.push(Value::Float((dep_time * 100.0).round() / 100.0));
        row.push(Value::Float(dep_delay));
        row.push(Value::Float((arr_time * 100.0).round() / 100.0));
        row.push(Value::Float(arr_delay));
        row.push(Value::Float(distance.round()));
        row.push(Value::Float(air_time.round()));
        b.push_row(&row).expect("schema and row agree");
    }
    b.finish()
}

/// Alias for [`generate`], emphasizing the role of the table as the *seed*
/// handed to the [`crate::CopulaScaler`].
pub fn generate_seed(n: usize, seed: u64) -> Table {
    generate(n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for i in 0..a.len() {
            cov += (a[i] - ma) * (b[i] - mb);
            va += (a[i] - ma) * (a[i] - ma);
            vb += (b[i] - mb) * (b[i] - mb);
        }
        cov / (va.sqrt() * vb.sqrt())
    }

    #[test]
    fn schema_matches_figure2() {
        let t = generate(10, 1);
        assert_eq!(t.num_columns(), SCHEMA.len());
        assert_eq!(t.name(), FLIGHTS_TABLE);
        for (f, (name, dtype)) in t.schema().fields().iter().zip(SCHEMA) {
            assert_eq!(f.name, *name);
            assert_eq!(f.dtype, *dtype);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(500, 42);
        let b = generate(500, 42);
        assert_eq!(a, b);
        let c = generate(500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn delays_are_correlated() {
        let t = generate(20_000, 7);
        let dep = t.column("dep_delay").unwrap().as_float().unwrap();
        let arr = t.column("arr_delay").unwrap().as_float().unwrap();
        let r = pearson(dep, arr);
        assert!(r > 0.6, "dep/arr delay correlation too weak: {r}");
    }

    #[test]
    fn distance_and_airtime_correlated() {
        let t = generate(20_000, 7);
        let d = t.column("distance").unwrap().as_float().unwrap();
        let a = t.column("air_time").unwrap().as_float().unwrap();
        let r = pearson(d, a);
        assert!(r > 0.95, "distance/air_time correlation too weak: {r}");
    }

    #[test]
    fn carriers_are_skewed() {
        let t = generate(20_000, 7);
        let (codes, dict) = t.column("carrier").unwrap().as_nominal().unwrap();
        let mut counts = vec![0usize; dict.len()];
        for &c in codes {
            counts[c as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max > 3 * min.max(1),
            "carrier skew too flat: {max} vs {min}"
        );
    }

    #[test]
    fn departure_times_are_bimodal() {
        let t = generate(20_000, 7);
        let dep = t.column("dep_time").unwrap().as_float().unwrap();
        let morning = dep.iter().filter(|&&x| (6.0..10.0).contains(&x)).count();
        let evening = dep.iter().filter(|&&x| (15.0..19.0).contains(&x)).count();
        let midday = dep.iter().filter(|&&x| (11.0..13.0).contains(&x)).count();
        assert!(morning > midday, "no morning peak");
        assert!(evening > midday, "no evening peak");
    }

    #[test]
    fn delays_have_heavy_right_tail() {
        let t = generate(20_000, 7);
        let dep = t.column("dep_delay").unwrap().as_float().unwrap();
        let late_60 = dep.iter().filter(|&&x| x > 60.0).count() as f64 / dep.len() as f64;
        let early = dep.iter().filter(|&&x| x < 0.0).count() as f64 / dep.len() as f64;
        assert!(late_60 > 0.01, "no heavy late tail: {late_60}");
        assert!(early > 0.2, "too few early departures: {early}");
    }

    #[test]
    fn states_follow_airports() {
        let t = generate(1_000, 7);
        let (origins, odict) = t.column("origin").unwrap().as_nominal().unwrap();
        let (states, sdict) = t.column("origin_state").unwrap().as_nominal().unwrap();
        // Same airport code must always map to the same state.
        let mut seen: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for (&o, &s) in origins.iter().zip(states) {
            let prev = seen.insert(o, s);
            if let Some(p) = prev {
                assert_eq!(p, s, "airport {:?} maps to two states", odict.value(o));
            }
        }
        assert!(sdict.len() <= NUM_STATES);
    }

    #[test]
    fn origin_never_equals_dest() {
        let t = generate(2_000, 9);
        let (origins, _) = t.column("origin").unwrap().as_nominal().unwrap();
        let (dests, _) = t.column("dest").unwrap().as_nominal().unwrap();
        // Codes come from separate dictionaries; compare resolved strings.
        for row in 0..t.num_rows() {
            let o = t.value_at(1, row);
            let d = t.value_at(3, row);
            assert_ne!(o, d, "row {row} flies to its origin");
        }
        let _ = (origins, dests);
    }

    #[test]
    fn value_ranges_are_sane() {
        let t = generate(5_000, 11);
        let dep_time = t.column("dep_time").unwrap().as_float().unwrap();
        assert!(dep_time.iter().all(|&x| (0.0..24.0).contains(&x)));
        let months = t.column("month").unwrap().as_int().unwrap();
        assert!(months.iter().all(|&m| (1..=12).contains(&m)));
        let dow = t.column("day_of_week").unwrap().as_int().unwrap();
        assert!(dow.iter().all(|&d| (1..=7).contains(&d)));
        let dist = t.column("distance").unwrap().as_float().unwrap();
        assert!(dist.iter().all(|&x| x >= 80.0));
    }
}
