//! **Experiment 3 (paper §5.4, Figure 6f):** varying think time with
//! speculative execution.
//!
//! Reproduces the paper's custom four-interaction workflow:
//! 1. create a 2D count histogram (100 bins) of arrival vs departure delays,
//! 2. create a 1D count histogram of carriers,
//! 3. link 1D → 2D,
//! 4. select a single carrier, forcing the 2D histogram to update.
//!
//! The progressive engine (with its speculative-execution extension) uses
//! the think time between interactions to pre-execute the 2D query for
//! every possible carrier selection; the missing-bins ratio of the final
//! update therefore falls as think time grows.

use idebench_bench::{flights_dataset, ExpArgs, ExpContext};
use idebench_core::spec::{AggregateSpec, BinDef, SelCoord, Selection};
use idebench_core::{Interaction, VizSpec};
use idebench_workflow::{Workflow, WorkflowType};

/// The fixed §5.4 workflow.
///
/// The 2D histogram uses fixed-width 15-minute delay bins rather than a
/// min/max-derived 10×10 grid: the flights delay distribution is heavy-
/// tailed, so a min/max grid would collapse nearly all mass into a couple
/// of cells, whereas the paper's 2D delay histograms have on the order of
/// a thousand ground-truth bins (Table 1, row 3).
fn think_time_workflow() -> Workflow {
    let viz2d = VizSpec::new(
        "viz_2d",
        "flights",
        vec![
            BinDef::Width {
                dimension: "arr_delay".into(),
                width: 15.0,
                anchor: 0.0,
            },
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: 15.0,
                anchor: 0.0,
            },
        ],
        vec![AggregateSpec::count()],
    );
    let viz1d = VizSpec::new(
        "viz_carriers",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    );
    Workflow::new(
        "think_time",
        WorkflowType::OneToN,
        vec![
            Interaction::CreateViz { viz: viz2d },
            Interaction::CreateViz { viz: viz1d },
            Interaction::Link {
                source: "viz_carriers".into(),
                target: "viz_2d".into(),
            },
            Interaction::Select {
                viz: "viz_carriers".into(),
                selection: Some(Selection {
                    bins: vec![vec![SelCoord::Category("C00".into())]],
                }),
            },
        ],
    )
}

fn main() {
    let args = ExpArgs::parse();
    let rows = args.rows('M');
    println!("exp3: think-time sweep, {rows} rows, TR=3s, progressive engine");
    let dataset = flights_dataset(rows, args.seed);
    let mut ctx = ExpContext::with_workload(args, dataset, vec![think_time_workflow()], false);

    println!(
        "\n{:<12} {:>16} {:>16}",
        "think(s)", "missing(spec)", "missing(no-spec)"
    );
    let mut series = Vec::new();
    for think_s in 1..=10u64 {
        let mut row = serde_json::Map::new();
        row.insert("think_s".into(), serde_json::json!(think_s));
        let mut cells = Vec::new();
        for (label, system) in [("spec", "progressive+spec"), ("nospec", "progressive")] {
            let settings = ctx
                .args
                .settings()
                .with_time_requirement_ms(3_000)
                .with_think_time_ms(think_s * 1_000);
            let report = ctx
                .run_nth(system, &settings, 0)
                .unwrap_or_else(|e| panic!("{system} think={think_s}: {e}"));
            // The final query is the 2D update triggered by the selection.
            let last = report.rows.last().expect("final update exists");
            assert_eq!(last.viz_name, "viz_2d");
            cells.push(last.metrics.missing_bins);
            row.insert(
                format!("missing_bins_{label}"),
                serde_json::json!(last.metrics.missing_bins),
            );
        }
        println!("{:<12} {:>16.3} {:>16.3}", think_s, cells[0], cells[1]);
        series.push(serde_json::Value::Object(row));
    }
    ctx.args.write_json("exp3_think_time.json", &series);
}
