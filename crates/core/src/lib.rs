//! The IDEBench benchmark core.
//!
//! This crate implements the paper's primary contribution — the benchmark
//! itself — independent of any particular database engine:
//!
//! - [`spec`]: the JSON-compatible visualization/query specification model
//!   (paper Figure 4): binnings, aggregates, filters, selections.
//! - [`interaction`]: the user interactions workflows are made of
//!   (create / filter / select / link / discard, §4.3).
//! - [`graph`]: the visualization dependency graph the driver maintains while
//!   simulating a workflow (§2.2, §4.4), including filter composition across
//!   links.
//! - [`settings`]: benchmark settings (§4.6) — time requirement, think time,
//!   dataset size, joins, confidence level — plus the execution mode.
//! - [`adapter`]: the [`SystemAdapter`] / [`QueryHandle`] interface that
//!   systems under test implement (§4.5).
//! - [`service`]: the shared, concurrent, deadline-aware [`EngineService`]
//!   API — one engine serving many sessions through a deadline/priority
//!   scheduler with cooperative cancellation ([`QueryTicket`]), plus the
//!   [`service::LegacyAdapterBridge`] that runs `SystemAdapter` impls
//!   behind it.
//! - [`driver`]: the benchmark driver that runs workflows, enforces the time
//!   requirement, and grants think-time to adapters (§4.4).
//! - [`metrics`]: the quality metrics of §4.7 (missing bins, mean relative
//!   error, SMAPE, cosine distance, margins, out-of-margin, bias).
//! - [`report`]: detailed (Table 1) and summary (Figure 5) reports (§4.8).

pub mod adapter;
pub mod driver;
pub mod error;
pub mod graph;
pub mod interaction;
pub mod metrics;
pub mod query;
pub mod report;
pub mod result;
pub mod service;
pub mod settings;
pub mod spec;

pub use adapter::{PrepStats, QueryHandle, StepStatus, SystemAdapter};
pub use driver::{
    BenchmarkDriver, GroundTruthProvider, QueryMeasurement, WorkflowOutcome, WorkflowSession,
};
pub use error::CoreError;
pub use graph::VizGraph;
pub use interaction::Interaction;
pub use metrics::Metrics;
pub use query::Query;
pub use report::{DetailedReport, DetailedRow, SummaryReport, SummaryRow};
pub use result::{AggResult, BinCoord, BinKey, BinStats};
pub use service::{
    EngineService, QueryOptions, QueryTicket, ServiceCore, SessionId, TicketScheduler,
    TicketStatus, TicketSubscription,
};
pub use settings::{DataScale, ExecutionMode, Settings};
pub use spec::{AggFunc, AggregateSpec, BinDef, FilterExpr, Predicate, Selection, VizSpec};
