//! **Experiment 5 (paper §5.6):** the System-Y middleware layer.
//!
//! The paper replicated three variants of the 1:N workflow on a commercial
//! IDE system backed by MonetDB and found it "renders and updates the
//! visualizations roughly at the same speed as when one uses MonetDB
//! directly, with an added delay of about 1–2 s per query" and no
//! prefetching. This binary runs the same comparison: the exact engine bare
//! vs wrapped in the caching/overhead layer, on three 1:N workflow
//! variants, reporting mean per-query latency.

use idebench_bench::{default_workflows, flights_dataset, ExpArgs, ExpContext};
use idebench_workflow::WorkflowType;

fn main() {
    let args = ExpArgs::parse();
    let rows = args.rows('M');
    println!("exp5: System-Y layer vs bare exact engine, {rows} rows, TR=10s");
    let dataset = flights_dataset(rows, args.seed);
    // Three variants of the 1:N workflow (three seeds).
    let workflows = default_workflows(WorkflowType::OneToN, args.seed, 3, 12);
    let mut ctx = ExpContext::with_workload(args, dataset, workflows, false);

    println!(
        "\n{:<12} {:<14} {:>9} {:>14} {:>12}",
        "workflow", "system", "queries", "mean_lat(ms)", "%TR_violated"
    );
    let mut results = Vec::new();
    let mut mean_latency = std::collections::BTreeMap::<String, Vec<f64>>::new();
    for wf_idx in 0..ctx.workflows.len() {
        for system in ["exact", "system_y"] {
            // TR = 10 s so queries complete and latency is comparable.
            let settings = ctx
                .args
                .settings()
                .with_time_requirement_ms(10_000)
                .with_think_time_ms(1_000);
            let report = ctx
                .run_nth(system, &settings, wf_idx)
                .unwrap_or_else(|e| panic!("{system}: {e}"));
            let wf_name = ctx.workflows[wf_idx].name.clone();
            let lats: Vec<f64> = report
                .rows
                .iter()
                .map(|r| r.end_time - r.start_time)
                .collect();
            let mean_lat = lats.iter().sum::<f64>() / lats.len().max(1) as f64;
            let violated = report.rows.iter().filter(|r| r.tr_violated).count();
            let pct = violated as f64 / report.rows.len().max(1) as f64 * 100.0;
            println!(
                "{:<12} {:<14} {:>9} {:>14.0} {:>12.1}",
                wf_name,
                system,
                report.rows.len(),
                mean_lat,
                pct
            );
            mean_latency
                .entry(system.to_string())
                .or_default()
                .push(mean_lat);
            results.push(serde_json::json!({
                "workflow": wf_name,
                "system": system,
                "mean_latency_ms": mean_lat,
                "pct_tr_violated": pct,
            }));
        }
    }
    let bare = mean_latency["exact"].iter().sum::<f64>() / 3.0;
    let layered = mean_latency["system_y"].iter().sum::<f64>() / 3.0;
    println!(
        "\nmean added delay per query: {:.0} ms (paper: ~1-2 s per query)",
        layered - bare
    );
    ctx.args.write_json("exp5_system_y.json", &results);
}
