//! The persistent, channel-fed scan worker pool.
//!
//! [`ScanPool`] owns a fixed set of long-lived worker threads fed from a
//! FIFO claim queue. Parallel scan spans no longer spawn and join an OS
//! thread per worker per span (the overhead the old `std::thread::scope`
//! design paid): a span publishes *claims* on its shared body closure, pool
//! workers pick claims up, run the body until the span's chunks are
//! exhausted, and the calling thread — always a full participant — revokes
//! whatever claims nobody got to. One process-wide pool
//! ([`global_pool`], sized to this machine's available parallelism) serves
//! every dispatcher, so intra-query parallelism and multi-session
//! concurrency compose without oversubscription: no matter how many
//! sessions scan at once, at most `threads + callers` OS threads do scan
//! work, and the FIFO claim queue arbitrates chunks fairly in span-arrival
//! order across sessions.
//!
//! # Execution model
//!
//! [`ScanPool::scope_run`] is a drop-in replacement for "spawn `n` scoped
//! threads over one closure and join them":
//!
//! 1. The caller enqueues `helpers` claims referencing `body` and wakes the
//!    pool.
//! 2. The caller runs `body()` itself. The body is a work-*stealing* loop
//!    (workers pull chunk indices from a shared atomic), so the span makes
//!    full progress even when every pool thread is busy with other spans.
//! 3. On return the caller revokes its still-queued claims and blocks only
//!    for claims already *running* — which terminate as soon as the chunk
//!    supply is dry.
//!
//! # Safety
//!
//! The body reference is lifetime-erased to cross the `'static` boundary of
//! the persistent worker threads. This is sound because `scope_run` does
//! not return — by normal exit *or by unwind* — until every claim is either
//! revoked (still queued, never ran) or finished running: the revoke-and-
//! wait step lives in a drop guard, so a panic inside the caller's own
//! `body()` pass still waits out in-flight workers before the borrowed
//! state unwinds. Workers run the body under `catch_unwind`, always
//! decrement their in-flight count, and a worker-side panic is re-raised in
//! the caller after the wait — the same propagation `std::thread::scope`
//! performed at join.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// A worker panic's payload, carried back to the span's caller.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Locks a mutex, transparently recovering from poisoning (a panicking
/// participant must not wedge the pool's bookkeeping).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A lifetime-erased pointer to a span body. Only dereferenced while the
/// originating [`ScanPool::scope_run`] call is still blocked (see module
/// docs), which is what makes the `Send + Sync` claims sound.
#[derive(Clone, Copy)]
struct BodyPtr(*const (dyn Fn() + Sync + 'static));

unsafe impl Send for BodyPtr {}
unsafe impl Sync for BodyPtr {}

/// Claim accounting of one span: how many claims are still queued, how many
/// bodies are currently running, whether the caller has revoked the
/// remainder, and the first worker panic's payload (re-raised in the
/// caller, preserving the original message as `std::thread::scope` did).
struct TaskState {
    queued: usize,
    running: usize,
    revoked: bool,
    panic: Option<PanicPayload>,
}

/// One span's shared handle: the body plus its claim accounting.
struct SpanTask {
    body: BodyPtr,
    state: Mutex<TaskState>,
    done: Condvar,
}

/// The claim queue plus the shutdown latch, under one lock.
struct QueueState {
    claims: VecDeque<Arc<SpanTask>>,
    shutdown: bool,
}

struct PoolShared {
    /// FIFO claim queue — one entry per outstanding helper claim. FIFO
    /// order is what arbitrates chunks fairly across concurrent sessions.
    queue: Mutex<QueueState>,
    ready: Condvar,
}

/// A persistent scan worker pool (see module docs).
pub struct ScanPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ScanPool {
    /// Creates a pool with `threads` persistent workers. Workers park on
    /// the claim queue when idle; they live until the pool is dropped.
    pub fn new(threads: usize) -> ScanPool {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(QueueState {
                claims: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("idebench-scan-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn scan pool worker")
            })
            .collect();
        ScanPool { shared, workers }
    }

    /// Number of persistent worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `body` on the calling thread *and* on up to `helpers` pool
    /// workers concurrently, returning once every participant is done.
    ///
    /// Equivalent to spawning `helpers + 1` scoped threads over `body` and
    /// joining them — minus the per-call spawn/join round-trips, and with
    /// the same panic discipline (a panic in any participant is propagated
    /// to the caller, after all participants have stopped). Claims the pool
    /// cannot service promptly are revoked when the caller's own pass
    /// finishes, so a saturated (or zero-thread) pool degrades to the
    /// caller simply doing all the work; the call never deadlocks, even
    /// when invoked from a pool worker itself.
    pub fn scope_run(&self, helpers: usize, body: &(dyn Fn() + Sync)) {
        if helpers == 0 || self.workers.is_empty() {
            body();
            return;
        }
        // Lifetime erasure — sound per the module-level safety argument.
        let body_static: &'static (dyn Fn() + Sync + 'static) = unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync + 'static)>(body)
        };
        let task = Arc::new(SpanTask {
            body: BodyPtr(body_static as *const _),
            state: Mutex::new(TaskState {
                queued: helpers,
                running: 0,
                revoked: false,
                panic: None,
            }),
            done: Condvar::new(),
        });
        {
            let mut q = lock(&self.shared.queue);
            for _ in 0..helpers {
                q.claims.push_back(Arc::clone(&task));
            }
        }
        self.shared.ready.notify_all();

        {
            // The revoke-and-wait lives in a drop guard so that even a
            // panic in the caller's own pass cannot return control (and
            // unwind the borrowed span state) while a worker still runs.
            let _guard = ScopeGuard {
                shared: &self.shared,
                task: &task,
            };
            // The caller is a full participant: the span progresses even
            // if no pool worker ever picks a claim up.
            body();
        }

        let worker_panic = lock(&task.state).panic.take();
        if let Some(payload) = worker_panic {
            // Re-raise the worker's original panic, payload intact — the
            // propagation std::thread::scope performed at join.
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for ScanPool {
    fn drop(&mut self) {
        // `&mut self` proves no scope_run is in flight; claims can only be
        // leftovers of already-completed (revoked) spans.
        lock(&self.shared.queue).shutdown = true;
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Revokes a span's unclaimed queue entries and waits out every in-flight
/// worker. Runs on normal exit *and* on unwind, which is what upholds the
/// lifetime-erasure safety contract.
struct ScopeGuard<'a> {
    shared: &'a PoolShared,
    task: &'a Arc<SpanTask>,
}

impl Drop for ScopeGuard<'_> {
    fn drop(&mut self) {
        let revoked = {
            let mut q = lock(&self.shared.queue);
            let before = q.claims.len();
            q.claims.retain(|t| !Arc::ptr_eq(t, self.task));
            before - q.claims.len()
        };
        let mut st = lock(&self.task.state);
        st.queued -= revoked;
        st.revoked = true;
        while st.queued > 0 || st.running > 0 {
            st = self.task.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let task = {
            let mut q = lock(&shared.queue);
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(t) = q.claims.pop_front() {
                    break t;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // Convert the popped queue entry into either a running body or a
        // no-op (the span's caller already finished and revoked).
        let run = {
            let mut st = lock(&task.state);
            st.queued -= 1;
            if st.revoked {
                false
            } else {
                st.running += 1;
                true
            }
        };
        if run {
            // A panicking body must still decrement `running` (or the
            // span's caller waits forever); the panic itself is recorded
            // and re-raised by the caller.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                (unsafe { &*task.body.0 })();
            }));
            let mut st = lock(&task.state);
            st.running -= 1;
            if let Err(payload) = outcome {
                // Keep the first panic; the caller re-raises it.
                st.panic.get_or_insert(payload);
            }
            drop(st);
        }
        task.done.notify_all();
    }
}

/// The process-wide scan pool every [`crate::MorselDispatcher`] fans out
/// over, sized to this machine's available parallelism. Created on first
/// use; its workers park when no scan is in flight.
pub fn global_pool() -> &'static ScanPool {
    static POOL: OnceLock<ScanPool> = OnceLock::new();
    POOL.get_or_init(|| ScanPool::new(crate::dispatch::available_workers()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_run_executes_body_at_least_once() {
        let pool = ScanPool::new(2);
        let calls = AtomicUsize::new(0);
        let body = || {
            calls.fetch_add(1, Ordering::Relaxed);
        };
        pool.scope_run(3, &body);
        let n = calls.load(Ordering::Relaxed);
        assert!((1..=4).contains(&n), "1..=4 participants ran, got {n}");
    }

    #[test]
    fn zero_helpers_runs_inline() {
        let pool = ScanPool::new(1);
        let calls = AtomicUsize::new(0);
        pool.scope_run(0, &|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_thread_pool_degrades_to_caller() {
        let pool = ScanPool::new(0);
        let calls = AtomicUsize::new(0);
        pool.scope_run(7, &|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn work_stealing_loop_completes_all_items() {
        // A realistic span body: participants pull indices from a shared
        // atomic until the supply is dry; every index is processed exactly
        // once no matter how many participants show up.
        let pool = ScanPool::new(4);
        const ITEMS: usize = 1_000;
        for _ in 0..20 {
            let next = AtomicUsize::new(0);
            let hits: Vec<AtomicUsize> = (0..ITEMS).map(|_| AtomicUsize::new(0)).collect();
            let body = || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ITEMS {
                    break;
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            };
            pool.scope_run(3, &body);
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn concurrent_spans_share_the_pool_without_deadlock() {
        let pool = Arc::new(ScanPool::new(2));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for _ in 0..50 {
                        let next = AtomicUsize::new(0);
                        let sum = AtomicUsize::new(0);
                        let body = || loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= 100 {
                                break;
                            }
                            sum.fetch_add(i, Ordering::Relaxed);
                        };
                        pool.scope_run(2, &body);
                        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
                    }
                });
            }
        });
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = ScanPool::new(3);
        let calls = AtomicUsize::new(0);
        pool.scope_run(2, &|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool); // joins; would hang forever if shutdown were broken
    }

    #[test]
    fn panicking_body_propagates_after_all_participants_stop() {
        let pool = ScanPool::new(2);
        let entered = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let body = || {
                entered.fetch_add(1, Ordering::Relaxed);
                panic!("span body exploded");
            };
            pool.scope_run(2, &body);
        }));
        let payload = result.expect_err("the panic must reach the caller");
        // The original payload survives, whichever participant panicked.
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "span body exploded");
        // The pool survives a panicked span: later spans still work.
        let ok = AtomicUsize::new(0);
        pool.scope_run(2, &|| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert!(ok.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_machine() {
        let p1 = global_pool() as *const ScanPool;
        let p2 = global_pool() as *const ScanPool;
        assert_eq!(p1, p2);
        assert_eq!(global_pool().threads(), crate::available_workers());
    }
}
