//! **Figure 6d (paper §5.2):** proportion of missing bins by system and
//! workflow type.
//!
//! Runs 10 workflows of each of the four patterns plus mixed against every
//! main system at the default TR = 3 s and prints the missing-bins matrix.

use idebench_bench::{
    default_workflows, flights_dataset, run_workflows, service_by_name, ExpArgs, MAIN_SYSTEMS,
};
use idebench_core::{DetailedReport, SummaryReport};
use idebench_workflow::WorkflowType;

fn main() {
    let args = ExpArgs::parse();
    let rows = args.rows('M');
    println!("exp1d: workflow-type breakdown, {rows} rows, TR=3s");
    let dataset = flights_dataset(rows, args.seed);
    let all_workflows: Vec<_> = WorkflowType::ALL
        .iter()
        .flat_map(|k| default_workflows(*k, args.seed, 10, 18))
        .collect();
    eprintln!("precomputing ground truth on all cores...");
    let mut gt = idebench_bench::parallel_ground_truth(&dataset, &all_workflows);

    let mut all = Vec::new();
    for kind in WorkflowType::ALL {
        let workflows = default_workflows(kind, args.seed, 10, 18);
        for system in MAIN_SYSTEMS {
            let settings = args
                .settings()
                .with_time_requirement_ms(3_000)
                .with_think_time_ms(1_000);
            let service = service_by_name(system);
            let report = run_workflows(service.as_ref(), &dataset, &workflows, &settings, &mut gt)
                .unwrap_or_else(|e| panic!("{system} {kind:?}: {e}"));
            all.push(report);
        }
        eprintln!("  done: {}", kind.label());
    }
    let merged = DetailedReport::merged(all);
    let by_kind = SummaryReport::from_detailed_by_kind(&merged);

    println!("\n=== Figure 6d: mean missing bins by system x workflow type ===");
    print!("{:<14}", "system");
    for kind in WorkflowType::ALL {
        print!(" {:>12}", kind.label());
    }
    println!();
    for system in MAIN_SYSTEMS {
        print!("{system:<14}");
        for kind in WorkflowType::ALL {
            let cell = by_kind
                .rows
                .iter()
                .find(|r| r.system == system && r.workflow_kind == kind.label())
                .map_or(f64::NAN, |r| r.mean_missing_bins);
            print!(" {cell:>12.3}");
        }
        println!();
    }
    args.write_json("exp1_workflow_types.json", &by_kind);
}
