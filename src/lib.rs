//! # IDEBench — A Benchmark for Interactive Data Exploration (Rust)
//!
//! A complete Rust reproduction of *IDEBench: A Benchmark for Interactive
//! Data Exploration* (Eichmann, Binnig, Kraska, Zgraggen; SIGMOD 2020).
//!
//! This facade crate re-exports the full public API:
//!
//! - [`core`]: benchmark driver, viz/query specification, settings, metrics,
//!   reports and the [`core::SystemAdapter`] trait.
//! - [`storage`]: the columnar storage substrate (tables, star schemas).
//! - [`query`]: shared query-evaluation primitives (filters, binning,
//!   aggregation, confidence intervals, SQL rendering, ground truth).
//! - [`datagen`]: the flights seed generator and the Gaussian-copula data
//!   scaler from §4.2 of the paper.
//! - [`workflow`]: the Markov-chain workload generator from §4.3.
//! - Engines representing the paper's system categories:
//!   [`engine_exact`] (MonetDB-class), [`engine_progressive`] (IDEA-class),
//!   [`engine_stratified`] (System-X-class), [`engine_wander`] (XDB-class)
//!   and [`engine_cache`] (System-Y-class).
//! - [`fleet`]: the multi-session fleet harness — N concurrent simulated
//!   analysts over one shared dataset, coordinated by the persistent scan
//!   worker pool and a cross-session semantic result cache, with merged
//!   throughput/latency/cache reports.
//!
//! ## Quickstart
//!
//! ```
//! use idebench::prelude::*;
//!
//! // 1. Generate a small flights dataset.
//! let table = idebench::datagen::flights::generate(10_000, 42);
//! let dataset = Dataset::Denormalized(std::sync::Arc::new(table));
//!
//! // 2. Generate one mixed workflow.
//! let wf = WorkflowGenerator::new(WorkflowType::Mixed, 7).generate(8);
//!
//! // 3. Run it against the progressive engine under a 500 ms time requirement.
//! let settings = Settings::default().with_time_requirement_ms(500);
//! let mut adapter = idebench::engine_progressive::ProgressiveAdapter::with_defaults();
//! let outcome = BenchmarkDriver::new(settings)
//!     .run_workflow(&mut adapter, &dataset, &wf)
//!     .unwrap();
//! assert!(!outcome.query_results.is_empty());
//! ```

pub use idebench_core as core;
pub use idebench_datagen as datagen;
pub use idebench_engine_cache as engine_cache;
pub use idebench_engine_exact as engine_exact;
pub use idebench_engine_progressive as engine_progressive;
pub use idebench_engine_stratified as engine_stratified;
pub use idebench_engine_wander as engine_wander;
pub use idebench_fleet as fleet;
pub use idebench_query as query;
pub use idebench_storage as storage;
pub use idebench_workflow as workflow;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use idebench_core::{
        BenchmarkDriver, DetailedReport, Metrics, QueryHandle, Settings, StepStatus, SummaryReport,
        SystemAdapter,
    };
    pub use idebench_storage::{DataType, Dataset, Table};
    pub use idebench_workflow::{Workflow, WorkflowGenerator, WorkflowType};
}
