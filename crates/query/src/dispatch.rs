//! Morsel-driven parallel scan dispatch.
//!
//! [`MorselDispatcher`] partitions a scan's row range (by *scan position*,
//! so shuffled orders chunk identically) into fixed [`CHUNK_ROWS`]-sized
//! chunks and fans chunks out over the persistent [`crate::pool::ScanPool`].
//! Each chunk accumulates into its own `BatchAcc` partial — workers never
//! share an accumulator — and completed partials are folded into a base
//! accumulator **in chunk order**, whichever worker finishes first.
//!
//! # Determinism
//!
//! The chunk partition depends only on `CHUNK_ROWS` and absolute scan
//! position; the merge order depends only on chunk indices. Neither depends
//! on the worker count, scheduling, or how a budget slices the scan, so the
//! accumulated result — including every floating-point rounding — is
//! bit-identical for any `workers ≥ 1`. The retained scalar reference path
//! ([`crate::execute_exact_scalar`]) folds its row-at-a-time accumulation
//! over the same chunk grid, which is what lets differential tests pin
//! parallel == scalar *bit for bit*.
//!
//! # Memory
//!
//! Only in-flight partials are alive: completed chunks merge eagerly into
//! the base and their accumulators return to a pool, so a scan holds
//! O(workers) accumulators regardless of table size.
//!
//! # Worker lifetime
//!
//! Workers are *pooled*, not scoped: a qualifying `scan_span` publishes
//! helper claims on the process-wide persistent [`crate::pool::ScanPool`]
//! and runs the span body on the calling thread itself, so fanning out
//! costs a queue push + wake rather than a thread spawn/join round-trip
//! per worker per span. Pool workers that pick a claim up pull chunk
//! indices from the span's shared cursor until the supply is dry; claims
//! the pool never got to are revoked when the caller's own pass finishes.
//! Because the pool is shared and fixed-size (one worker per core), any
//! number of concurrent sessions' scans compose without oversubscription —
//! the FIFO claim queue arbitrates chunks across spans in arrival order —
//! and budget-stepped scans with many chunk-sized grants no longer pay a
//! spawn per grant.

use crate::aggregate::GroupedAcc;
use crate::batch::{BatchAcc, BoundPlan, Gather, Natural, MORSEL};
use crate::plan::CompiledPlan;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Rows per dispatch chunk — the unit of parallel work distribution *and*
/// of deterministic partial merging. A multiple of [`MORSEL`], sized so the
/// per-chunk partial merge/reset (O(populated bins)) stays a small fraction
/// of per-chunk scan work even for dense 2D bin spaces near
/// [`crate::plan::DENSE_BIN_CAP`].
pub const CHUNK_ROWS: usize = 64 * MORSEL;

/// Worker count of this machine (`available_parallelism`, min 1) — the
/// default when the benchmark settings leave `workers = 0`.
pub fn available_workers() -> usize {
    idebench_core::settings::available_parallelism()
}

/// Chunk-partitioned accumulation state of one scan (see module docs).
pub struct MorselDispatcher {
    workers: usize,
    /// Chunks `0..merged` folded together, in chunk order.
    base: BatchAcc,
    /// The at-most-one chunk whose row range the scan has entered but not
    /// yet finished (budget slicing can pause mid-chunk).
    partial: Option<(usize, BatchAcc)>,
    /// Recycled accumulators (reset, ready for the next chunk).
    pool: Vec<BatchAcc>,
}

/// In-order merge state shared by the workers of one parallel span.
struct MergeState<'a> {
    base: &'a mut BatchAcc,
    /// Next chunk index the base is waiting for.
    next_merge: usize,
    /// Finished chunks that arrived ahead of `next_merge`.
    parked: Vec<(usize, BatchAcc)>,
}

impl MorselDispatcher {
    pub fn new(plan: &CompiledPlan) -> Self {
        MorselDispatcher {
            workers: 1,
            base: BatchAcc::for_plan(plan),
            partial: None,
            pool: Vec::new(),
        }
    }

    /// Sets the worker-pool size (clamped to ≥ 1).
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The accumulated state so far, materialized in chunk order.
    pub fn grouped(&self) -> GroupedAcc {
        let mut g = self.base.to_grouped();
        if let Some((_, p)) = &self.partial {
            g.merge(&p.to_grouped());
        }
        g
    }

    /// Processes scan positions `start..start + take` (`take ≥ 1`), fanning
    /// chunks out over the worker pool when there is enough work to split.
    /// Returns the number of rows that passed the filter.
    ///
    /// `num_rows` is the scan's total length: a final chunk cut short by the
    /// end of the data (rather than by budget) still counts as complete.
    pub fn scan_span(
        &mut self,
        plan: &CompiledPlan,
        order: Option<&[u32]>,
        start: usize,
        take: usize,
        num_rows: usize,
    ) -> u64 {
        debug_assert!(take >= 1 && start + take <= num_rows);
        let end = start + take;
        let scan_done = end >= num_rows;
        let first_chunk = start / CHUNK_ROWS;
        let last_chunk = (end - 1) / CHUNK_ROWS;
        debug_assert!(
            self.partial.as_ref().is_none_or(|(c, _)| *c == first_chunk),
            "a paused chunk is always the one the scan resumes into"
        );
        // Fan out only when the span carries at least a full chunk of work:
        // a tiny budget span that merely straddles a chunk boundary is not
        // worth even a pool round-trip. The sequential path uses the same
        // chunk grid, so the choice never affects results.
        if self.workers == 1 || first_chunk == last_chunk || take < CHUNK_ROWS {
            self.scan_sequential(plan, order, start, end, scan_done, first_chunk, last_chunk)
        } else {
            self.scan_parallel(plan, order, start, end, scan_done, first_chunk, last_chunk)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_sequential(
        &mut self,
        plan: &CompiledPlan,
        order: Option<&[u32]>,
        start: usize,
        end: usize,
        scan_done: bool,
        first_chunk: usize,
        last_chunk: usize,
    ) -> u64 {
        let bound = plan.bind();
        let mut matched = 0u64;
        for chunk in first_chunk..=last_chunk {
            let lo = (chunk * CHUNK_ROWS).max(start);
            let hi = ((chunk + 1) * CHUNK_ROWS).min(end);
            let mut acc = self.acquire(plan, chunk);
            matched += process_span(&bound, order, &mut acc, lo, hi) as u64;
            if hi == (chunk + 1) * CHUNK_ROWS || scan_done {
                self.base.merge_from(&acc);
                acc.reset();
                self.pool.push(acc);
            } else {
                self.partial = Some((chunk, acc));
            }
        }
        matched
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_parallel(
        &mut self,
        plan: &CompiledPlan,
        order: Option<&[u32]>,
        start: usize,
        end: usize,
        scan_done: bool,
        first_chunk: usize,
        last_chunk: usize,
    ) -> u64 {
        let matched_total = AtomicU64::new(0);
        let next_chunk = AtomicUsize::new(first_chunk);
        let carry = Mutex::new(self.partial.take());
        let merge = Mutex::new(MergeState {
            base: &mut self.base,
            next_merge: first_chunk,
            parked: Vec::new(),
        });
        let pool = Mutex::new(&mut self.pool);
        let leftover: Mutex<Option<(usize, BatchAcc)>> = Mutex::new(None);
        let threads = self.workers.min(last_chunk - first_chunk + 1);

        // The span body: every participant (the calling thread plus any
        // pool worker that picks a claim up) pulls chunk indices from the
        // shared cursor until the supply is dry.
        let body = || {
            let bound = plan.bind();
            loop {
                let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                if chunk > last_chunk {
                    break;
                }
                let lo = (chunk * CHUNK_ROWS).max(start);
                let hi = ((chunk + 1) * CHUNK_ROWS).min(end);
                // Resume the paused chunk's partial if this is it;
                // otherwise grab a pooled (or fresh) accumulator.
                let mut acc = (chunk == first_chunk)
                    .then(|| carry.lock().unwrap().take().map(|(_, acc)| acc))
                    .flatten()
                    .or_else(|| pool.lock().unwrap().pop())
                    .unwrap_or_else(|| BatchAcc::for_plan(plan));
                let matched = process_span(&bound, order, &mut acc, lo, hi);
                matched_total.fetch_add(matched as u64, Ordering::Relaxed);
                if hi < (chunk + 1) * CHUNK_ROWS && !scan_done {
                    // Budget cut the (single, final) chunk short:
                    // park it for the next span.
                    *leftover.lock().unwrap() = Some((chunk, acc));
                    continue;
                }
                let mut state = merge.lock().unwrap();
                if chunk == state.next_merge {
                    // Fold in order, draining any parked successors.
                    let mut recycled = Vec::new();
                    state.base.merge_from(&acc);
                    state.next_merge += 1;
                    acc.reset();
                    recycled.push(acc);
                    while let Some(at) = state
                        .parked
                        .iter()
                        .position(|(c, _)| *c == state.next_merge)
                    {
                        let (_, mut parked_acc) = state.parked.swap_remove(at);
                        state.base.merge_from(&parked_acc);
                        state.next_merge += 1;
                        parked_acc.reset();
                        recycled.push(parked_acc);
                    }
                    drop(state);
                    pool.lock().unwrap().append(&mut recycled);
                } else {
                    state.parked.push((chunk, acc));
                }
            }
        };
        crate::pool::global_pool().scope_run(threads - 1, &body);

        debug_assert!(merge.into_inner().unwrap().parked.is_empty());
        self.partial = leftover.into_inner().unwrap();
        matched_total.into_inner()
    }

    fn acquire(&mut self, plan: &CompiledPlan, chunk: usize) -> BatchAcc {
        match self.partial.take() {
            Some((c, acc)) if c == chunk => acc,
            // A paused partial for any other chunk would merge stale rows
            // on top of a re-processed chunk — fail loudly rather than
            // silently double-count (scan_span's invariant rejects this).
            Some((c, _)) => unreachable!("paused chunk {c} resumed as chunk {chunk}"),
            None => self.pool.pop().unwrap_or_else(|| BatchAcc::for_plan(plan)),
        }
    }
}

/// Runs positions `lo..hi` of one chunk morsel by morsel into `acc`,
/// returning the matched-row count.
fn process_span(
    bound: &BoundPlan<'_>,
    order: Option<&[u32]>,
    acc: &mut BatchAcc,
    lo: usize,
    hi: usize,
) -> usize {
    let mut matched = 0;
    let mut pos = lo;
    while pos < hi {
        let take = MORSEL.min(hi - pos);
        matched += match order {
            Some(o) => acc.process_morsel(bound, Gather(&o[pos..pos + take])),
            None => acc.process_morsel(
                bound,
                Natural {
                    base: pos,
                    len: take,
                },
            ),
        };
        pos += take;
    }
    matched
}
