//! Small dense-matrix helpers: covariance and Cholesky factorization.
//!
//! Matrices here are tiny (one row/column per dataset attribute, ~12), so a
//! plain row-major `Vec<f64>` with O(k³) routines is the right tool — no
//! linear-algebra dependency needed.

/// A square row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SquareMatrix {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        SquareMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Identity matrix of side `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Multiplies this (lower-triangular or general) matrix by a vector.
    pub fn mul_vec(&self, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(out.len(), self.n);
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// Lower-triangular Cholesky factor `L` with `L·Lᵀ = self`.
    ///
    /// The matrix must be symmetric; near-singular matrices are regularized
    /// with a small diagonal jitter so correlation matrices estimated from
    /// finite samples always factor.
    pub fn cholesky(&self) -> SquareMatrix {
        let n = self.n;
        let mut a = self.clone();
        // Jitter for numerical safety on rank-deficient inputs.
        let jitter = 1e-9;
        for i in 0..n {
            a[(i, i)] += jitter;
        }
        let mut l = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    // Clamp to keep the factorization real under rounding.
                    l[(i, j)] = sum.max(1e-12).sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        l
    }
}

impl std::ops::Index<(usize, usize)> for SquareMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SquareMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

/// Covariance matrix of column vectors (`columns[c]` is attribute c's data).
///
/// All columns must share a length ≥ 2.
pub fn covariance_matrix(columns: &[Vec<f64>]) -> SquareMatrix {
    let k = columns.len();
    let n = columns.first().map_or(0, Vec::len);
    assert!(n >= 2, "covariance needs at least two observations");
    let means: Vec<f64> = columns
        .iter()
        .map(|c| c.iter().sum::<f64>() / n as f64)
        .collect();
    let mut m = SquareMatrix::zeros(k);
    for i in 0..k {
        for j in i..k {
            let mut s = 0.0;
            for (a, b) in columns[i].iter().zip(&columns[j]) {
                s += (a - means[i]) * (b - means[j]);
            }
            let cov = s / (n as f64 - 1.0);
            m[(i, j)] = cov;
            m[(j, i)] = cov;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_cholesky_is_identity() {
        let i3 = SquareMatrix::identity(3);
        let l = i3.cholesky();
        for a in 0..3 {
            for b in 0..3 {
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((l[(a, b)] - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let mut m = SquareMatrix::zeros(2);
        m[(0, 0)] = 4.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 3.0;
        let l = m.cholesky();
        // L·Lᵀ ≈ m
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - m[(i, j)]).abs() < 1e-6, "at ({i},{j})");
            }
        }
        // Known factor: [[2,0],[1,sqrt(2)]]
        assert!((l[(0, 0)] - 2.0).abs() < 1e-6);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-6);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn near_singular_matrix_still_factors() {
        // Perfectly correlated pair: rank 1.
        let mut m = SquareMatrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 1.0;
        let l = m.cholesky();
        assert!(l[(1, 1)].is_finite());
        assert!(l[(1, 1)] >= 0.0);
    }

    #[test]
    fn mul_vec_applies_rows() {
        let mut m = SquareMatrix::zeros(2);
        m[(0, 0)] = 1.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 3.0;
        let mut out = vec![0.0; 2];
        m.mul_vec(&[10.0, 100.0], &mut out);
        assert_eq!(out, vec![10.0, 320.0]);
    }

    #[test]
    fn covariance_of_correlated_columns() {
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        let c: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = covariance_matrix(&[a, b, c]);
        // var(a) of 0..99 is 841.66…, cov(a,b) = 2·var(a).
        assert!((m[(0, 1)] / m[(0, 0)] - 2.0).abs() < 1e-9);
        // a and the alternating column are (nearly) uncorrelated.
        assert!(m[(0, 2)].abs() < 2.0);
        // Symmetry.
        assert_eq!(m[(1, 0)], m[(0, 1)]);
    }
}
