//! In-repo shim for the `serde` crate (see `crates/shims/`).
//!
//! Instead of serde's visitor-based data model, this shim serializes through
//! an owned JSON tree ([`Value`]): `Serialize` renders a value *to* a
//! [`Value`], `Deserialize` reads one back *from* a [`Value`]. The
//! `serde_derive` shim generates impls of these traits and supports the
//! attribute subset this workspace uses (`rename`, `rename_all`, `tag`,
//! `content`, `untagged`, `default`, `skip_serializing_if`, `flatten`,
//! `with`). The `serde_json` shim supplies text parsing/printing and the
//! `json!` macro on top of the same [`Value`].

pub mod value;

pub use value::{Map, Number, Value};

// The derive macros live in the `serde_derive` proc-macro shim and are
// re-exported here so `use serde::{Deserialize, Serialize}` binds both the
// traits (type namespace) and the derives (macro namespace), exactly like
// real serde with the `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// Serialization into the JSON data model.
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Value;
}

/// Deserialization from the JSON data model.
pub trait Deserialize: Sized {
    /// Reads a value of `Self` out of a JSON value.
    fn from_json(v: &Value) -> Result<Self, DeError>;
}

/// A deserialization error: a human-readable message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a value of the wrong JSON type.
    pub fn expected(what: &str, context: &str) -> DeError {
        DeError(format!("expected {what} for {context}"))
    }

    /// Error for an object missing a required field.
    pub fn missing(field: &str, context: &str) -> DeError {
        DeError(format!("missing field `{field}` in {context}"))
    }

    /// Error with a custom message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

// ------------------------------------------------------------ primitives

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<$t, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<$t, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(n).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<f64, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", "f64"))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F64(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<f32, DeError> {
        Ok(v.as_f64()
            .ok_or_else(|| DeError::expected("number", "f32"))? as f32)
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Value) -> Result<String, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_json(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Serialize for std::path::Path {
    fn to_json(&self) -> Value {
        Value::String(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_json(v: &Value) -> Result<std::path::PathBuf, DeError> {
        match v {
            Value::String(s) => Ok(std::path::PathBuf::from(s)),
            _ => Err(DeError::expected("string", "PathBuf")),
        }
    }
}

// ----------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_json).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json(v: &Value) -> Result<(A, B), DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_json(&items[0])?, B::from_json(&items[1])?))
            }
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json(v: &Value) -> Result<(A, B, C), DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_json(&items[0])?,
                B::from_json(&items[1])?,
                C::from_json(&items[2])?,
            )),
            _ => Err(DeError::expected("3-element array", "tuple")),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, S>
{
    fn to_json(&self) -> Value {
        // Deterministic key order keeps serialized maps stable across runs.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut obj = Map::new();
        for k in keys {
            obj.insert(k.clone(), self[k].to_json());
        }
        Value::Object(obj)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(obj) => {
                let mut out = Self::default();
                for (k, val) in obj.iter() {
                    out.insert(k.clone(), V::from_json(val)?);
                }
                Ok(out)
            }
            _ => Err(DeError::expected("object", "map")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_json(&self) -> Value {
        let mut obj = Map::new();
        for (k, val) in self {
            obj.insert(k.clone(), val.to_json());
        }
        Value::Object(obj)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(obj) => {
                let mut out = Self::new();
                for (k, val) in obj.iter() {
                    out.insert(k.clone(), V::from_json(val)?);
                }
                Ok(out)
            }
            _ => Err(DeError::expected("object", "map")),
        }
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}
