//! Chunked query execution — the building block engines step.

use crate::aggregate::GroupedAcc;
use crate::resolve::ResolvedQuery;
use idebench_core::{AggResult, CoreError, Query};
use idebench_storage::Dataset;
use std::sync::Arc;

/// How a [`ChunkedRun`] snapshot turns accumulated state into a result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnapshotMode {
    /// Values are exact once the scan completes (blocking engines).
    Exact,
    /// Values are scale-up estimates of a uniform sample of the rows
    /// processed so far; `z` is the confidence z-value, `population` the
    /// total row count estimates are scaled to. Snapshots are available as
    /// soon as any row has been processed (progressive engines).
    Estimate {
        /// z-value for the configured confidence level.
        z: f64,
        /// Population size estimates scale up to.
        population: u64,
    },
    /// Like `Estimate`, but the snapshot only becomes available once the
    /// scan completes (blocking engines over offline sample tables).
    EstimateAtEnd {
        /// z-value for the configured confidence level.
        z: f64,
        /// Population size estimates scale up to.
        population: u64,
    },
}

/// A query scan that can be advanced in work-unit-bounded chunks.
///
/// The run owns its dataset handle and an optional row *order* (progressive
/// engines scan a shuffled order so any prefix is a uniform sample). Engines
/// wrap this in their [`idebench_core::QueryHandle`] implementations.
pub struct ChunkedRun {
    dataset: Dataset,
    query: Query,
    /// Row visit order; `None` = natural order 0..n.
    order: Option<Arc<Vec<u32>>>,
    /// Accumulated grouped state.
    acc: Option<GroupedAcc>,
    cursor: usize,
    num_rows: usize,
    row_cost: f64,
    /// Extra cost per row that passes the filter (aggregation work scales
    /// with qualifying tuples, which is what makes filter selectivity the
    /// dominant cost factor — the paper's Exp-4 finding).
    match_cost: f64,
    /// Fixed work consumed before the first row is processed (planning,
    /// warm-up). Charged against the first `advance` budgets.
    startup_units: u64,
    startup_remaining: u64,
    mode: SnapshotMode,
}

impl ChunkedRun {
    /// Creates a run over the natural row order.
    pub fn new(dataset: Dataset, query: Query, mode: SnapshotMode) -> Result<Self, CoreError> {
        Self::with_order(dataset, query, None, mode)
    }

    /// Creates a run visiting rows in the given order (e.g. a shuffle).
    pub fn with_order(
        dataset: Dataset,
        query: Query,
        order: Option<Arc<Vec<u32>>>,
        mode: SnapshotMode,
    ) -> Result<Self, CoreError> {
        // Validate the query binds, and capture scan-shape constants.
        let resolved = ResolvedQuery::new(&dataset, &query)?;
        let num_rows = resolved.num_rows;
        let row_cost = resolved.row_cost();
        if let Some(o) = &order {
            debug_assert_eq!(o.len(), num_rows, "order must cover every row");
        }
        let acc = GroupedAcc::for_query(&resolved, &query.aggregates);
        drop(resolved);
        Ok(ChunkedRun {
            dataset,
            query,
            order,
            acc: Some(acc),
            cursor: 0,
            num_rows,
            row_cost: row_cost as f64,
            match_cost: 0.0,
            startup_units: 0,
            startup_remaining: 0,
            mode,
        })
    }

    /// Overrides the per-row work-unit cost (engine cost models).
    pub fn set_row_cost(&mut self, cost: f64) {
        assert!(cost > 0.0 && cost.is_finite(), "row cost must be positive");
        self.row_cost = cost;
    }

    /// Sets the extra cost charged per filter-matching row.
    pub fn set_match_cost(&mut self, cost: f64) {
        assert!(cost >= 0.0 && cost.is_finite(), "match cost must be >= 0");
        self.match_cost = cost;
    }

    /// Sets a fixed startup cost consumed before any row is processed.
    pub fn set_startup_units(&mut self, units: u64) {
        self.startup_units = units;
        self.startup_remaining = units;
    }

    /// Per-row work-unit cost.
    pub fn row_cost(&self) -> f64 {
        self.row_cost
    }

    /// Rows processed so far.
    pub fn rows_done(&self) -> usize {
        self.cursor
    }

    /// Total rows to process.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Whether the scan is complete.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.num_rows
    }

    /// Fraction of rows processed.
    pub fn progress(&self) -> f64 {
        if self.num_rows == 0 {
            1.0
        } else {
            self.cursor as f64 / self.num_rows as f64
        }
    }

    /// Processes rows until `budget_units` is exhausted or the scan ends.
    /// Returns the units actually consumed.
    pub fn advance(&mut self, budget_units: u64) -> u64 {
        let mut budget = budget_units;
        let mut consumed = 0u64;
        // Pay any outstanding startup cost first.
        if self.startup_remaining > 0 {
            let pay = self.startup_remaining.min(budget);
            self.startup_remaining -= pay;
            consumed += pay;
            budget -= pay;
        }
        if self.is_done() || budget == 0 {
            return consumed;
        }
        let resolved =
            ResolvedQuery::new(&self.dataset, &self.query).expect("validated at construction");
        let acc = self.acc.as_mut().expect("accumulator present");
        let mut available = budget as f64;
        while self.cursor < self.num_rows {
            if available < self.row_cost {
                break;
            }
            let row = match &self.order {
                Some(order) => order[self.cursor] as usize,
                None => self.cursor,
            };
            let matched = acc.process_row(&resolved, row);
            available -= self.row_cost;
            if matched {
                // The matched-row surcharge may overdraw slightly on the
                // last row; clamp so we never report more than granted.
                available -= self.match_cost;
            }
            self.cursor += 1;
        }
        consumed += (budget as f64 - available.max(0.0)).round() as u64;
        consumed.min(budget_units)
    }

    /// The current result under the run's snapshot mode.
    ///
    /// In `Exact` mode this returns `None` until the scan completes; in
    /// `Estimate` mode it returns an estimate as soon as at least one row
    /// has been processed.
    pub fn snapshot(&self) -> Option<AggResult> {
        let acc = self.acc.as_ref()?;
        match self.mode {
            SnapshotMode::Exact => {
                if self.is_done() {
                    Some(acc.finish_exact())
                } else {
                    None
                }
            }
            SnapshotMode::Estimate { z, population } => {
                if self.cursor == 0 {
                    None
                } else if self.is_done() && population as usize == self.num_rows {
                    // A completed full-population scan is exact.
                    Some(acc.finish_exact())
                } else {
                    Some(acc.finish_estimate(population, z))
                }
            }
            SnapshotMode::EstimateAtEnd { z, population } => {
                if !self.is_done() {
                    None
                } else if population as usize == self.num_rows {
                    Some(acc.finish_exact())
                } else {
                    Some(acc.finish_estimate(population, z))
                }
            }
        }
    }

    /// The accumulated state (engines use this for result reuse).
    pub fn accumulator(&self) -> &GroupedAcc {
        self.acc.as_ref().expect("accumulator present")
    }

    /// The query this run executes.
    pub fn query(&self) -> &Query {
        &self.query
    }
}

/// Runs a query to completion, returning the exact result.
///
/// This is both the ground-truth oracle and the execution path of the
/// blocking exact engine.
pub fn execute_exact(dataset: &Dataset, query: &Query) -> Result<AggResult, CoreError> {
    let resolved = ResolvedQuery::new(dataset, query)?;
    let mut acc = GroupedAcc::for_query(&resolved, &query.aggregates);
    for row in 0..resolved.num_rows {
        acc.process_row(&resolved, row);
    }
    Ok(acc.finish_exact())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
    use idebench_core::{BinCoord, BinKey, FilterExpr, Predicate, VizSpec};
    use idebench_storage::{DataType, TableBuilder};

    fn dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = if i % 3 == 0 { "AA" } else { "DL" };
            b.push_row(&[c.into(), (i as f64).into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn count_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn execute_exact_counts() {
        let ds = dataset(9);
        let r = execute_exact(&ds, &count_query()).unwrap();
        assert_eq!(r.value(&BinKey::d1(BinCoord::Cat(0)), 0), Some(3.0));
        assert_eq!(r.value(&BinKey::d1(BinCoord::Cat(1)), 0), Some(6.0));
        assert!(r.exact);
    }

    #[test]
    fn chunked_exact_matches_oneshot() {
        let ds = dataset(100);
        let q = count_query();
        let mut run = ChunkedRun::new(ds.clone(), q.clone(), SnapshotMode::Exact).unwrap();
        // Exact mode: no snapshot mid-scan.
        run.advance(10);
        assert!(run.snapshot().is_none());
        while !run.is_done() {
            run.advance(7);
        }
        assert_eq!(run.snapshot().unwrap(), execute_exact(&ds, &q).unwrap());
    }

    #[test]
    fn advance_respects_budget_and_row_cost() {
        let ds = dataset(50);
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        assert_eq!(run.row_cost(), 1.0);
        let used = run.advance(13);
        assert_eq!(used, 13);
        assert_eq!(run.rows_done(), 13);
        // Budget smaller than row cost consumes nothing.
        let mut tiny = run;
        let used = tiny.advance(0);
        assert_eq!(used, 0);
    }

    #[test]
    fn fractional_row_cost_scales_progress() {
        let ds = dataset(100);
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        run.set_row_cost(2.5);
        let used = run.advance(25);
        assert_eq!(run.rows_done(), 10);
        assert_eq!(used, 25);
        // A sub-cost budget makes no progress.
        let used = run.advance(2);
        assert_eq!(used, 0);
        assert_eq!(run.rows_done(), 10);
    }

    #[test]
    fn match_cost_charges_matching_rows_only() {
        let ds = dataset(100);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        // carrier AA on every third row.
        let q = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["AA".into()],
            })),
        );
        let mut run = ChunkedRun::new(ds, q, SnapshotMode::Exact).unwrap();
        run.set_row_cost(1.0);
        run.set_match_cost(2.0);
        // 100 rows: 34 match (i % 3 == 0) → total cost 100 + 68 = 168.
        let mut total = 0u64;
        while !run.is_done() {
            let used = run.advance(50);
            assert!(used <= 50);
            total += used;
        }
        assert!((166..=170).contains(&total), "total {total}");
    }

    #[test]
    fn startup_units_paid_before_rows() {
        let ds = dataset(100);
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        run.set_startup_units(30);
        let used = run.advance(20);
        assert_eq!(used, 20);
        assert_eq!(run.rows_done(), 0);
        let used = run.advance(20);
        assert_eq!(used, 20); // 10 startup + 10 rows
        assert_eq!(run.rows_done(), 10);
    }

    #[test]
    fn estimate_at_end_withholds_partial_results() {
        let ds = dataset(100);
        let mut run = ChunkedRun::new(
            ds,
            count_query(),
            SnapshotMode::EstimateAtEnd {
                z: 1.96,
                population: 1_000,
            },
        )
        .unwrap();
        run.advance(50);
        assert!(run.snapshot().is_none());
        run.advance(100);
        let snap = run.snapshot().unwrap();
        assert!(!snap.exact);
        // Scaled 10× (100-row sample of a 1000-row population).
        let total: f64 = snap.bins.values().map(|s| s.values[0]).sum();
        assert!((total - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn estimate_snapshot_available_immediately() {
        let ds = dataset(1000);
        let q = count_query();
        let mut run = ChunkedRun::new(
            ds,
            q,
            SnapshotMode::Estimate {
                z: 1.96,
                population: 1000,
            },
        )
        .unwrap();
        assert!(run.snapshot().is_none());
        run.advance(100);
        let snap = run.snapshot().unwrap();
        assert!(!snap.exact);
        assert!((snap.processed_fraction - 0.1).abs() < 1e-9);
        // Count estimate should be near the true totals (the natural order
        // here is periodic, so exact thirds).
        let aa = snap.value(&BinKey::d1(BinCoord::Cat(0)), 0).unwrap();
        assert!((aa - 334.0).abs() < 10.0);
    }

    #[test]
    fn completed_estimate_of_full_population_is_exact() {
        let ds = dataset(60);
        let q = count_query();
        let mut run = ChunkedRun::new(
            ds.clone(),
            q.clone(),
            SnapshotMode::Estimate {
                z: 1.96,
                population: 60,
            },
        )
        .unwrap();
        while !run.is_done() {
            run.advance(64);
        }
        let snap = run.snapshot().unwrap();
        assert!(snap.exact);
        assert_eq!(snap, execute_exact(&ds, &q).unwrap());
    }

    #[test]
    fn shuffled_order_visits_every_row_once() {
        let ds = dataset(40);
        let q = count_query();
        let order: Arc<Vec<u32>> = Arc::new((0..40u32).rev().collect());
        let mut run =
            ChunkedRun::with_order(ds.clone(), q.clone(), Some(order), SnapshotMode::Exact)
                .unwrap();
        while !run.is_done() {
            run.advance(9);
        }
        assert_eq!(run.snapshot().unwrap(), execute_exact(&ds, &q).unwrap());
    }

    #[test]
    fn filtered_chunked_run() {
        let ds = dataset(100);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        let q = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::Range {
                column: "dep_delay".into(),
                min: 0.0,
                max: 50.0,
            })),
        );
        let mut run = ChunkedRun::new(ds.clone(), q.clone(), SnapshotMode::Exact).unwrap();
        while !run.is_done() {
            run.advance(33);
        }
        let snap = run.snapshot().unwrap();
        assert_eq!(snap.bins.len(), 5); // bins [0,10) .. [40,50)
        assert_eq!(snap, execute_exact(&ds, &q).unwrap());
        assert_eq!(run.accumulator().rows_matched, 50);
    }

    #[test]
    fn empty_table_completes_immediately() {
        let ds = dataset(0);
        let run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        assert!(run.is_done());
        assert_eq!(run.progress(), 1.0);
        assert_eq!(run.snapshot().unwrap().bins.len(), 0);
    }
}
