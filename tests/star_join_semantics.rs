//! Exp-2 join semantics, end to end: every engine must produce
//! **bit-identical** results on a normalized (star-schema) dataset and its
//! de-normalized twin, across scan worker counts, through both the legacy
//! `SystemAdapter` path and the shared `EngineService` path.
//!
//! This is the acceptance gate of the join-devirtualization layer: the
//! shared fact-ordered materialization cache and the per-plan staged-FK
//! fallback may change *wall-clock* cost only — never a result bit. It also
//! pins the new star-schema support of the progressive and stratified
//! engines (the paper's IDEA and System X rejected normalized data; this
//! reproduction runs them on it).

use idebench::core::spec::{AggFunc, AggregateSpec, BinDef, FilterExpr, Predicate};
use idebench::core::{AggResult, Query, VizSpec};
use idebench::core::{EngineService, QueryOptions, Settings, SystemAdapter};
use idebench::engine_cache::CachingAdapter;
use idebench::engine_exact::ExactAdapter;
use idebench::engine_progressive::{ProgressiveAdapter, ProgressiveConfig};
use idebench::engine_stratified::StratifiedAdapter;
use idebench::engine_wander::WanderAdapter;
use idebench::storage::Dataset;
use std::sync::Arc;

const ROWS: usize = 12_000;

fn datasets() -> (Dataset, Dataset) {
    let table = idebench::datagen::flights::generate(ROWS, 42);
    let denorm = Dataset::Denormalized(Arc::new(table.clone()));
    let star = idebench::datagen::normalize_flights(&table).expect("normalization succeeds");
    (denorm, star)
}

/// Query shapes chosen to exercise every join site: joined binning dims
/// (1D and 2D joined×joined dense), joined filter leaves, measures next to
/// joins, and the wander engine's online-eligible single-COUNT shape.
fn queries() -> Vec<(&'static str, Query)> {
    let nominal_1d = VizSpec::new(
        "v",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Avg, "dep_delay"),
        ],
    );
    let joined_2d = VizSpec::new(
        "v",
        "flights",
        vec![
            BinDef::Nominal {
                dimension: "carrier".into(),
            },
            BinDef::Nominal {
                dimension: "origin_state".into(),
            },
        ],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Sum, "distance"),
        ],
    );
    let filtered_width = VizSpec::new(
        "v",
        "flights",
        vec![BinDef::Width {
            dimension: "dep_delay".into(),
            width: 15.0,
            anchor: 0.0,
        }],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Max, "arr_delay"),
        ],
    );
    let online_count = VizSpec::new(
        "v",
        "flights",
        vec![BinDef::Nominal {
            dimension: "origin_state".into(),
        }],
        vec![AggregateSpec::count()],
    );
    vec![
        ("nominal_1d", Query::for_viz(&nominal_1d, None)),
        ("joined_2d", Query::for_viz(&joined_2d, None)),
        (
            "joined_filter",
            Query::for_viz(
                &filtered_width,
                Some(
                    FilterExpr::Pred(Predicate::In {
                        column: "carrier".into(),
                        values: vec!["C00".into(), "C03".into(), "C07".into()],
                    })
                    .and(FilterExpr::Pred(Predicate::Range {
                        column: "distance".into(),
                        min: 100.0,
                        max: 1_800.0,
                    })),
                ),
            ),
        ),
        ("online_count", Query::for_viz(&online_count, None)),
    ]
}

const ENGINES: [&str; 5] = [
    "exact",
    "wander",
    "progressive",
    "stratified",
    "cache+exact",
];

fn fresh_adapter(name: &str) -> Box<dyn SystemAdapter> {
    match name {
        "exact" => Box::new(ExactAdapter::with_defaults()),
        "wander" => Box::new(WanderAdapter::with_defaults()),
        "progressive" => Box::new(ProgressiveAdapter::with_defaults()),
        "stratified" => Box::new(StratifiedAdapter::with_defaults()),
        "cache+exact" => Box::new(CachingAdapter::with_defaults(ExactAdapter::with_defaults())),
        other => panic!("unknown engine {other}"),
    }
}

fn fresh_service(name: &str) -> Arc<dyn EngineService> {
    match name {
        "exact" => ExactAdapter::with_defaults().into_service().into_shared(),
        "wander" => WanderAdapter::with_defaults().into_service().into_shared(),
        "progressive" => Arc::new(ProgressiveAdapter::service(ProgressiveConfig::default())),
        "stratified" => StratifiedAdapter::with_defaults()
            .into_service()
            .into_shared(),
        "cache+exact" => Arc::new(CachingAdapter::service(
            idebench::engine_cache::CacheConfig::default(),
            |_| ExactAdapter::with_defaults(),
        )),
        other => panic!("unknown engine {other}"),
    }
}

/// Runs every query to completion on the legacy adapter path.
fn run_legacy(name: &str, ds: &Dataset, settings: &Settings) -> Vec<AggResult> {
    let mut adapter = fresh_adapter(name);
    adapter
        .prepare(ds, settings)
        .unwrap_or_else(|e| panic!("{name}: prepare failed on {ds:?}: {e}"));
    queries()
        .into_iter()
        .map(|(label, q)| {
            let mut h = adapter.submit(&q);
            let mut guard = 0;
            while !h.step(u64::MAX / 4).is_done() {
                guard += 1;
                assert!(guard < 1_000, "{name}/{label}: query never completed");
            }
            h.snapshot()
                .unwrap_or_else(|| panic!("{name}/{label}: completed query has no snapshot"))
        })
        .collect()
}

/// Runs every query to completion through a shared `EngineService`.
fn run_service(name: &str, ds: &Dataset, settings: &Settings) -> Vec<AggResult> {
    let svc = fresh_service(name);
    svc.open_session(0, ds, settings)
        .unwrap_or_else(|e| panic!("{name}: open_session failed: {e}"));
    queries()
        .into_iter()
        .map(|(label, q)| {
            let t = svc.submit(
                &q,
                QueryOptions::for_session(0).with_step_quantum(u64::MAX / 4),
            );
            assert!(t.drive().is_done(), "{name}/{label}: service query stuck");
            t.snapshot()
                .unwrap_or_else(|| panic!("{name}/{label}: completed ticket has no snapshot"))
        })
        .collect()
}

/// The satellite gate: normalized results are bit-identical to
/// de-normalized for all five engines × workers {1, 2, 8}, through both
/// execution paths.
#[test]
fn normalized_results_bit_identical_across_engines_workers_and_paths() {
    let (denorm, star) = datasets();
    for workers in [1usize, 2, 8] {
        let settings = Settings::default().with_seed(42).with_workers(workers);
        for name in ENGINES {
            let flat_legacy = run_legacy(name, &denorm, &settings);
            let star_legacy = run_legacy(name, &star, &settings);
            let flat_service = run_service(name, &denorm, &settings);
            let star_service = run_service(name, &star, &settings);
            for (i, (label, _)) in queries().iter().enumerate() {
                assert_eq!(
                    flat_legacy[i], star_legacy[i],
                    "{name}/{label}, {workers} workers: legacy star != denorm"
                );
                assert_eq!(
                    flat_service[i], star_service[i],
                    "{name}/{label}, {workers} workers: service star != denorm"
                );
                assert_eq!(
                    flat_legacy[i], flat_service[i],
                    "{name}/{label}, {workers} workers: service != legacy"
                );
            }
        }
    }
}

/// The shared join cache materializes each dimension attribute once per
/// dataset and is reused across engines, sessions, and repeated queries —
/// the fleet-sharing property of the devirtualization layer.
#[test]
fn join_cache_is_shared_across_sessions_and_queries() {
    let (_, star) = datasets();
    let settings = Settings::default().with_seed(7);
    let schema = star.as_star().unwrap();

    let svc = fresh_service("exact");
    svc.open_session(0, &star, &settings).unwrap();
    svc.open_session(1, &star, &settings).unwrap();
    for session in [0u64, 1, 0, 1] {
        let (_, q) = &queries()[0]; // carrier (joined) × avg(dep_delay)
        let t = svc.submit(
            q,
            QueryOptions::for_session(session).with_step_quantum(u64::MAX / 4),
        );
        assert!(t.drive().is_done());
    }
    let stats = schema.join_cache_stats();
    assert_eq!(
        stats.entries, 1,
        "one joined attribute → one materialization: {stats:?}"
    );
    assert!(
        stats.hits >= 3,
        "repeated queries across sessions hit the shared memo: {stats:?}"
    );
    assert_eq!(stats.declined, 0, "{stats:?}");
    assert!(stats.bytes <= stats.capacity);

    // A second engine over the *same* dataset handle reuses the cache too.
    let before = schema.join_cache_stats();
    let mut adapter = fresh_adapter("wander");
    adapter.prepare(&star, &settings).unwrap();
    let (_, q) = &queries()[0];
    let mut h = adapter.submit(q);
    while !h.step(u64::MAX / 4).is_done() {}
    let after = schema.join_cache_stats();
    assert_eq!(
        after.entries, before.entries,
        "no duplicate materialization"
    );
    assert!(after.hits > before.hits, "cross-engine reuse recorded");
}
