//! Caching ground-truth oracle used for metric evaluation.

use crate::executor::execute_exact;
use idebench_core::{AggResult, GroundTruthProvider, Query};
use idebench_storage::Dataset;
use rustc_hash::FxHashMap;

/// Computes exact results with [`execute_exact`] and memoizes them by query
/// fingerprint. IDE workloads re-issue many identical queries (linked vizs
/// refresh repeatedly), so caching makes whole-benchmark evaluation cheap.
pub struct CachedGroundTruth {
    dataset: Dataset,
    cache: FxHashMap<u64, AggResult>,
    hits: u64,
    misses: u64,
}

impl CachedGroundTruth {
    /// Creates an oracle over the dataset.
    pub fn new(dataset: Dataset) -> Self {
        CachedGroundTruth {
            dataset,
            cache: FxHashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` counters, for harness diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct queries evaluated.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// True when no query has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

impl GroundTruthProvider for CachedGroundTruth {
    fn ground_truth(&mut self, query: &Query) -> AggResult {
        let fp = query.fingerprint();
        if let Some(hit) = self.cache.get(&fp) {
            self.hits += 1;
            return hit.clone();
        }
        self.misses += 1;
        let result = execute_exact(&self.dataset, query)
            .expect("ground-truth query must bind against the dataset");
        self.cache.insert(fp, result.clone());
        result
    }
}

/// Enumerates the distinct queries a workload would trigger, by replaying
/// every interaction through the driver's visualization graph (including
/// its count-binning resolution). Deduplicated by fingerprint.
pub fn enumerate_workload_queries(
    dataset: &Dataset,
    workloads: &[&[idebench_core::Interaction]],
) -> Result<Vec<Query>, idebench_core::CoreError> {
    let mut ranges = idebench_core::driver::ColumnRanges::default();
    let mut seen = rustc_hash::FxHashSet::default();
    let mut out = Vec::new();
    for interactions in workloads {
        let mut graph = idebench_core::VizGraph::new();
        for interaction in *interactions {
            for viz in graph.apply(interaction)? {
                let mut query = graph.query_for(&viz)?;
                idebench_core::driver::resolve_count_binnings(&mut query, dataset, &mut ranges)?;
                if seen.insert(query.fingerprint()) {
                    out.push(query);
                }
            }
        }
    }
    Ok(out)
}

impl CachedGroundTruth {
    /// Pre-computes ground truth for a whole workload in parallel using
    /// `threads` worker threads (std scoped threads with an atomic work
    /// index). The returned oracle serves every workload query from
    /// memory; unseen queries still fall back to on-demand execution.
    pub fn precompute(dataset: Dataset, queries: &[Query], threads: usize) -> Self {
        let threads = threads.clamp(1, 64);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<parking_lot::Mutex<Vec<(u64, AggResult)>>> = (0..threads)
            .map(|_| parking_lot::Mutex::new(Vec::new()))
            .collect();
        std::thread::scope(|scope| {
            for shard in &results {
                let dataset = &dataset;
                let next = &next;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(query) = queries.get(i) else { break };
                    let result = execute_exact(dataset, query)
                        .expect("ground-truth query must bind against the dataset");
                    shard.lock().push((query.fingerprint(), result));
                });
            }
        });
        let mut cache = FxHashMap::default();
        for shard in results {
            cache.extend(shard.into_inner());
        }
        CachedGroundTruth {
            dataset,
            cache,
            hits: 0,
            misses: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggregateSpec, BinDef};
    use idebench_core::VizSpec;
    use idebench_storage::{DataType, TableBuilder};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let mut b = TableBuilder::with_fields("flights", &[("carrier", DataType::Nominal)]);
        for c in ["AA", "DL", "AA"] {
            b.push_row(&[c.into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn query(name: &str) -> Query {
        let spec = VizSpec::new(
            name,
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn caches_by_semantics_not_viz_name() {
        let mut gt = CachedGroundTruth::new(dataset());
        let a = gt.ground_truth(&query("viz_0"));
        let b = gt.ground_truth(&query("viz_other"));
        assert_eq!(a, b);
        assert_eq!(gt.stats(), (1, 1));
        assert_eq!(gt.len(), 1);
    }

    #[test]
    fn precompute_parallel_matches_serial() {
        let ds = dataset();
        let q0 = query("a");
        let mut q1 = query("b");
        q1.set_filter(Some(idebench_core::FilterExpr::Pred(
            idebench_core::Predicate::In {
                column: "carrier".into(),
                values: vec!["DL".into()],
            },
        )));
        let queries = vec![q0.clone(), q1.clone()];
        let mut frozen = CachedGroundTruth::precompute(ds.clone(), &queries, 4);
        let mut serial = CachedGroundTruth::new(ds);
        assert_eq!(frozen.ground_truth(&q0), serial.ground_truth(&q0));
        assert_eq!(frozen.ground_truth(&q1), serial.ground_truth(&q1));
        // Both served from the precomputed cache.
        assert_eq!(frozen.stats().0, 2);
        assert_eq!(frozen.len(), 2);
    }

    #[test]
    fn enumerate_workload_queries_dedups() {
        use idebench_core::spec::{AggregateSpec, BinDef};
        use idebench_core::{Interaction, VizSpec};
        let ds = dataset();
        let viz = |name: &str| {
            VizSpec::new(
                name,
                "flights",
                vec![BinDef::Nominal {
                    dimension: "carrier".into(),
                }],
                vec![AggregateSpec::count()],
            )
        };
        // Two workflows issuing semantically identical queries.
        let wf1 = vec![Interaction::CreateViz { viz: viz("a") }];
        let wf2 = vec![
            Interaction::CreateViz { viz: viz("x") },
            Interaction::SetFilter {
                viz: "x".into(),
                filter: None,
            },
        ];
        let queries = enumerate_workload_queries(&ds, &[wf1.as_slice(), wf2.as_slice()]).unwrap();
        assert_eq!(queries.len(), 1, "identical semantics deduplicate");
    }

    #[test]
    fn distinct_queries_miss() {
        let mut gt = CachedGroundTruth::new(dataset());
        let q1 = query("v");
        let mut q2 = query("v");
        q2.set_filter(Some(idebench_core::FilterExpr::Pred(
            idebench_core::Predicate::In {
                column: "carrier".into(),
                values: vec!["AA".into()],
            },
        )));
        gt.ground_truth(&q1);
        gt.ground_truth(&q2);
        assert_eq!(gt.stats(), (0, 2));
    }
}
