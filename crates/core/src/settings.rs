//! Benchmark settings (paper §4.6) and the execution/time model.

use serde::{Deserialize, Serialize};

/// Dataset size labels used by the default configuration.
///
/// The paper runs S=100M, M=500M, L=1B rows on a dual-socket server. This
/// reproduction scales rows down and compensates by scaling the virtual
/// work rate (see [`ExecutionMode::Virtual`]) so that the ratio between
/// query cost and the time-requirement grid is preserved (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum DataScale {
    /// Small (default 1,000,000 rows).
    S,
    /// Medium (default 5,000,000 rows).
    M,
    /// Large (default 10,000,000 rows).
    L,
}

impl DataScale {
    /// Default row count for the scale.
    pub fn default_rows(self) -> usize {
        match self {
            DataScale::S => 1_000_000,
            DataScale::M => 5_000_000,
            DataScale::L => 10_000_000,
        }
    }

    /// Report label, mirroring the paper's "100m"/"500m"/"1b" strings.
    pub fn label(self) -> &'static str {
        match self {
            DataScale::S => "S",
            DataScale::M => "M",
            DataScale::L => "L",
        }
    }
}

/// How query execution time is accounted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "mode", rename_all = "lowercase")]
pub enum ExecutionMode {
    /// Deterministic virtual time: engines report *work units* (≈ one unit
    /// per tuple touched) and the driver converts them to virtual seconds at
    /// `work_rate` units/second. Reproducible across machines.
    Virtual {
        /// Work units per virtual second.
        work_rate: f64,
    },
    /// Wall-clock time: the driver steps queries until a real deadline.
    Wall,
}

impl ExecutionMode {
    /// The default calibration: 1M units/s, so a full scan of the M dataset
    /// (5M rows) costs 5 virtual seconds — the same ratio to the paper's
    /// 0.5–10 s TR grid as MonetDB scanning 500M rows on the paper's testbed.
    pub fn default_virtual() -> Self {
        ExecutionMode::Virtual { work_rate: 1e6 }
    }
}

/// All benchmark settings (§4.6 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Settings {
    /// Time Requirement (TR): maximum duration per query, milliseconds.
    pub time_requirement_ms: u64,
    /// Think time between consecutive interactions, milliseconds.
    pub think_time_ms: u64,
    /// Confidence level at which AQP engines report margins (e.g. 0.95).
    pub confidence_level: f64,
    /// Whether the dataset is normalized (star schema) and engines must join.
    pub use_joins: bool,
    /// Dataset scale label (report column `data size`).
    pub data_scale: DataScale,
    /// Execution/time accounting mode.
    pub execution: ExecutionMode,
    /// Work units a driver step grants a query at a time. Smaller = more
    /// precise TR enforcement, larger = less overhead.
    pub step_quantum: u64,
    /// RNG seed controlling any stochastic choices in the run.
    pub seed: u64,
    /// Optional CPU-contention model for concurrent queries: each of `k`
    /// concurrent lanes runs at `1 / (1 + penalty·(k−1))` of full speed.
    ///
    /// The default 0 models the paper's 20-core testbed where a handful of
    /// concurrent queries do not contend (its Exp 4 found no significant
    /// concurrency effect); positive values let users explore the
    /// contention hypothesis the paper offers for Figure 6d.
    #[serde(default)]
    pub concurrency_penalty: f64,
    /// Worker threads each engine may use for one query's scan (intra-query
    /// parallelism in the morsel dispatcher). `0` (the default) means "all
    /// available cores"; see [`Settings::effective_workers`]. Results are
    /// bit-identical for every value — the dispatcher's fixed chunk grid
    /// and in-order partial merge pin the accumulation sequence — so this
    /// only trades wall-clock speed, never reproducibility. Note the
    /// dispatcher fans out per budget grant and only when a grant carries
    /// at least one dispatch chunk of rows: large grants and one-shot scans
    /// parallelize, while small `step_quantum` grants step sequentially.
    #[serde(default)]
    pub workers: usize,
}

/// This machine's available parallelism, min 1 — the single fallback both
/// [`Settings::effective_workers`] and the query dispatcher's
/// `available_workers` resolve "use all cores" through.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for Settings {
    /// The paper's default configuration: TR = 3 s is mid-grid; think time
    /// 1 s (used in all stress-test experiments); 95% confidence;
    /// de-normalized schema.
    fn default() -> Self {
        Settings {
            time_requirement_ms: 3_000,
            think_time_ms: 1_000,
            confidence_level: 0.95,
            use_joins: false,
            data_scale: DataScale::M,
            execution: ExecutionMode::default_virtual(),
            step_quantum: 16_384,
            seed: 42,
            concurrency_penalty: 0.0,
            workers: 0,
        }
    }
}

impl Settings {
    /// The five default time requirements of the paper's evaluation (§5.1).
    pub const DEFAULT_TIME_REQUIREMENTS_MS: [u64; 5] = [500, 1_000, 3_000, 5_000, 10_000];

    /// Builder-style setter for the time requirement.
    pub fn with_time_requirement_ms(mut self, tr: u64) -> Self {
        self.time_requirement_ms = tr;
        self
    }

    /// Builder-style setter for the think time.
    pub fn with_think_time_ms(mut self, tt: u64) -> Self {
        self.think_time_ms = tt;
        self
    }

    /// Builder-style setter for joins/normalized mode.
    pub fn with_joins(mut self, joins: bool) -> Self {
        self.use_joins = joins;
        self
    }

    /// Builder-style setter for the data scale label.
    pub fn with_data_scale(mut self, scale: DataScale) -> Self {
        self.data_scale = scale;
        self
    }

    /// Builder-style setter for the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Builder-style setter for the scan worker count (`0` = all cores).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Derives per-session settings for multi-session (fleet) runs: the
    /// same configuration with the seed mixed with the session index, so
    /// every simulated analyst explores independently yet reproducibly.
    /// Session 0 keeps the base seed — a 1-session fleet is exactly the
    /// single-analyst benchmark.
    pub fn for_session(&self, session: u64) -> Settings {
        let mut s = self.clone();
        s.seed = self
            .seed
            .wrapping_add(session.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        s
    }

    /// The scan worker count engines should configure on their runs:
    /// `workers` itself, or — when it is 0 — this machine's available
    /// parallelism (min 1).
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            available_parallelism()
        } else {
            self.workers
        }
    }

    /// The TR in work units under virtual execution.
    ///
    /// Returns `None` in wall mode (deadlines are wall-clock instants).
    pub fn tr_budget_units(&self) -> Option<u64> {
        match self.execution {
            ExecutionMode::Virtual { work_rate } => {
                Some((self.time_requirement_ms as f64 / 1e3 * work_rate).round() as u64)
            }
            ExecutionMode::Wall => None,
        }
    }

    /// Think time in work units under virtual execution (speculation budget).
    pub fn think_budget_units(&self) -> Option<u64> {
        match self.execution {
            ExecutionMode::Virtual { work_rate } => {
                Some((self.think_time_ms as f64 / 1e3 * work_rate).round() as u64)
            }
            ExecutionMode::Wall => None,
        }
    }

    /// Converts work units to virtual milliseconds (virtual mode only).
    pub fn units_to_ms(&self, units: u64) -> f64 {
        match self.execution {
            ExecutionMode::Virtual { work_rate } => units as f64 / work_rate * 1e3,
            ExecutionMode::Wall => f64::NAN,
        }
    }

    /// The work rate engines use to convert their second-denominated
    /// constants (report intervals, warm-ups, middleware overheads) into
    /// work units. Wall mode falls back to the default calibration.
    pub fn work_rate(&self) -> f64 {
        match self.execution {
            ExecutionMode::Virtual { work_rate } => work_rate,
            ExecutionMode::Wall => 1e6,
        }
    }

    /// Converts seconds to work units at this settings' rate.
    pub fn seconds_to_units(&self, seconds: f64) -> u64 {
        (seconds * self.work_rate()).round() as u64
    }

    /// The z-value for the configured two-sided confidence level.
    ///
    /// Supports the common levels exactly and falls back to a rational
    /// approximation of the normal quantile elsewhere.
    pub fn z_value(&self) -> f64 {
        crate::metrics::normal_quantile(0.5 + self.confidence_level / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let s = Settings::default();
        assert_eq!(s.confidence_level, 0.95);
        assert!(!s.use_joins);
        assert_eq!(s.time_requirement_ms, 3_000);
        assert_eq!(
            Settings::DEFAULT_TIME_REQUIREMENTS_MS,
            [500, 1000, 3000, 5000, 10000]
        );
    }

    #[test]
    fn tr_budget_in_units() {
        let s = Settings::default()
            .with_time_requirement_ms(500)
            .with_execution(ExecutionMode::Virtual { work_rate: 1e6 });
        assert_eq!(s.tr_budget_units(), Some(500_000));
        assert_eq!(s.think_budget_units(), Some(1_000_000));
        let wall = s.with_execution(ExecutionMode::Wall);
        assert_eq!(wall.tr_budget_units(), None);
    }

    #[test]
    fn units_to_ms_roundtrip() {
        let s = Settings::default();
        let budget = s.tr_budget_units().unwrap();
        let ms = s.units_to_ms(budget);
        assert!((ms - s.time_requirement_ms as f64).abs() < 1e-6);
    }

    #[test]
    fn z_value_for_95_pct() {
        let s = Settings::default();
        assert!((s.z_value() - 1.959964).abs() < 1e-3);
    }

    #[test]
    fn scale_defaults() {
        assert_eq!(DataScale::S.default_rows(), 1_000_000);
        assert!(DataScale::L.default_rows() > DataScale::M.default_rows());
        assert_eq!(DataScale::M.label(), "M");
    }

    #[test]
    fn settings_serde_roundtrip() {
        let s = Settings::default()
            .with_joins(true)
            .with_seed(7)
            .with_workers(3);
        let js = serde_json::to_string(&s).unwrap();
        let back: Settings = serde_json::from_str(&js).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn session_seeds_are_stable_and_distinct() {
        let s = Settings::default().with_seed(42);
        assert_eq!(s.for_session(0).seed, 42, "session 0 keeps the base seed");
        let seeds: Vec<u64> = (0..8).map(|i| s.for_session(i).seed).collect();
        for (i, a) in seeds.iter().enumerate() {
            for b in seeds.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(s.for_session(3), s.for_session(3), "derivation is pure");
        // Everything but the seed is untouched.
        let d = s.for_session(5);
        assert_eq!(d.time_requirement_ms, s.time_requirement_ms);
        assert_eq!(d.workers, s.workers);
    }

    #[test]
    fn workers_default_to_available_parallelism() {
        let s = Settings::default();
        assert_eq!(s.workers, 0);
        assert!(s.effective_workers() >= 1);
        assert_eq!(s.with_workers(6).effective_workers(), 6);
    }

    #[test]
    fn workers_field_optional_in_serialized_settings() {
        // Settings serialized before the workers knob existed still load.
        let js = r#"{"time_requirement_ms":3000,"think_time_ms":1000,
            "confidence_level":0.95,"use_joins":false,"data_scale":"m",
            "execution":{"mode":"virtual","work_rate":1000000.0},
            "step_quantum":16384,"seed":42}"#;
        let s: Settings = serde_json::from_str(js).unwrap();
        assert_eq!(s.workers, 0);
    }
}
