//! **Table 1 (paper appendix A.1):** the detailed per-query report for a
//! single workflow.
//!
//! Runs one mixed workflow on the progressive engine with the paper's
//! Table-1 configuration (TR = 0.5 s, think time 3 s, size M) and prints
//! the report as CSV, mirroring Table 1's columns.

use idebench_bench::{adapter_by_name, default_workflows, flights_dataset, ExpArgs};
use idebench_core::{BenchmarkDriver, DetailedReport};
use idebench_query::CachedGroundTruth;
use idebench_workflow::WorkflowType;

fn main() {
    let args = ExpArgs::parse();
    let rows = args.rows('M');
    println!("detailed report: one mixed workflow, {rows} rows, TR=0.5s, think=3s\n");
    let dataset = flights_dataset(rows, args.seed);
    let mut gt = CachedGroundTruth::new(dataset.clone());
    let workflow = &default_workflows(WorkflowType::Mixed, args.seed, 1, 20)[0];

    let settings = args
        .settings()
        .with_time_requirement_ms(500)
        .with_think_time_ms(3_000);
    let driver = BenchmarkDriver::new(settings);
    let mut adapter = adapter_by_name("progressive");
    let outcome = driver
        .run_workflow(adapter.as_mut(), &dataset, workflow)
        .expect("workflow runs");
    let report = DetailedReport::from_outcome(&outcome, &mut gt);
    print!("{}", report.to_csv());

    std::fs::create_dir_all(&args.out_dir).expect("create output dir");
    let path = args.out_dir.join("detailed_report.csv");
    std::fs::write(&path, report.to_csv()).expect("write csv");
    eprintln!("\n[wrote {}]", path.display());
    args.write_json("detailed_report.json", &report);
}
