//! Benchmark reports (paper §4.8): the detailed per-query report (Table 1)
//! and the aggregated summary report (Figure 5).

use crate::driver::{GroundTruthProvider, WorkflowOutcome};
use crate::metrics::{mean, median, percentiles, Metrics};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One row of the detailed report — the columns of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetailedRow {
    /// Query identifier within the run.
    pub id: usize,
    /// Index of the triggering interaction.
    pub interaction: usize,
    /// Visualization name.
    pub viz_name: String,
    /// System (adapter) name — Table 1's `driver` column.
    pub driver: String,
    /// Data scale label.
    pub data_size: String,
    /// Think time setting, ms.
    pub think_time: u64,
    /// Time requirement setting, ms.
    pub time_req: u64,
    /// Workflow name.
    pub workflow: String,
    /// Workflow type label.
    pub workflow_kind: String,
    /// Query start, ms since workflow start.
    pub start_time: f64,
    /// Query end (completion or cancellation), ms since workflow start.
    pub end_time: f64,
    /// Whether the time requirement was violated.
    pub tr_violated: bool,
    /// Number of binning dimensions.
    pub bin_dims: usize,
    /// Binning type label (e.g. `"nominal quantitative"`).
    pub binning_type: String,
    /// Aggregate type label (e.g. `"avg"`).
    pub agg_type: String,
    /// Number of concurrently issued queries for this interaction.
    pub concurrent: usize,
    /// Number of leaf filter predicates (specificity; Exp 4).
    pub filter_specificity: usize,
    /// Quality metrics vs ground truth.
    #[serde(flatten)]
    pub metrics: Metrics,
}

/// The detailed report: one row per executed query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DetailedReport {
    /// All rows, in execution order.
    pub rows: Vec<DetailedRow>,
}

impl DetailedReport {
    /// Evaluates a workflow outcome against ground truth, producing rows.
    pub fn from_outcome(
        outcome: &WorkflowOutcome,
        ground_truth: &mut dyn GroundTruthProvider,
    ) -> DetailedReport {
        let mut rows = Vec::with_capacity(outcome.query_results.len());
        for m in &outcome.query_results {
            let gt = ground_truth.ground_truth(&m.query);
            let metrics = match &m.result {
                Some(result) => Metrics::evaluate(result, &gt),
                None => Metrics::all_missing(&gt),
            };
            rows.push(DetailedRow {
                id: m.query_id,
                interaction: m.interaction_id,
                viz_name: m.viz_name.clone(),
                driver: outcome.system.clone(),
                data_size: outcome.settings.data_scale.label().to_string(),
                think_time: outcome.settings.think_time_ms,
                time_req: outcome.settings.time_requirement_ms,
                workflow: outcome.workflow_name.clone(),
                workflow_kind: outcome.workflow_kind.clone(),
                start_time: m.start_ms,
                end_time: m.end_ms,
                tr_violated: m.tr_violated,
                bin_dims: m.query.binning().len(),
                binning_type: m
                    .query
                    .binning()
                    .iter()
                    .map(crate::spec::BinDef::kind_label)
                    .collect::<Vec<_>>()
                    .join(" "),
                agg_type: m
                    .query
                    .aggregates()
                    .iter()
                    .map(|a| a.func.to_string())
                    .collect::<Vec<_>>()
                    .join(" "),
                concurrent: m.concurrent,
                filter_specificity: m.query.filter_specificity(),
                metrics,
            });
        }
        DetailedReport { rows }
    }

    /// Merges several reports (e.g. one per workflow) into one.
    pub fn merged(reports: impl IntoIterator<Item = DetailedReport>) -> DetailedReport {
        let mut rows = Vec::new();
        for r in reports {
            rows.extend(r.rows);
        }
        DetailedReport { rows }
    }

    /// Serializes the report as CSV with a header row (Table 1 layout).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "id,interaction,viz_name,driver,data_size,think_time,time_req,workflow,\
             start_time,end_time,tr_violated,bin_dims,binning_type,agg_type,bins_ofm,\
             bins_delivered,bins_in_gt,rel_error_avg,rel_error_stdev,missing_bins,\
             cosine_distance,margin_avg,margin_stdev\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{:.0},{:.0},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                r.id,
                r.interaction,
                r.viz_name,
                r.driver,
                r.data_size,
                r.think_time,
                r.time_req,
                r.workflow,
                r.start_time,
                r.end_time,
                if r.tr_violated { "TRUE" } else { "FALSE" },
                r.bin_dims,
                r.binning_type,
                r.agg_type,
                r.metrics.bins_out_of_margin,
                r.metrics.bins_delivered,
                r.metrics.bins_in_gt,
                fmt_opt(r.metrics.rel_error_avg),
                fmt_opt(r.metrics.rel_error_stdev),
                format_args!("{:.2}", r.metrics.missing_bins),
                fmt_opt(r.metrics.cosine_distance),
                fmt_opt(r.metrics.margin_avg),
                fmt_opt(r.metrics.margin_stdev),
            );
        }
        out
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => String::new(),
    }
}

/// One aggregated row of the summary report: a (system, TR, workflow-kind)
/// cell of Figure 5 / Figure 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// System name.
    pub system: String,
    /// Time requirement, ms.
    pub time_req: u64,
    /// Workflow kind, or `"all"` when pooled.
    pub workflow_kind: String,
    /// Number of queries in the cell.
    pub queries: usize,
    /// Median (p50) query latency, ms (`end − start`; cancelled queries
    /// latch at the TR). Nearest-rank, so always an observed latency.
    #[serde(default)]
    pub p50_latency_ms: f64,
    /// 95th-percentile query latency, ms.
    #[serde(default)]
    pub p95_latency_ms: f64,
    /// 99th-percentile query latency, ms.
    #[serde(default)]
    pub p99_latency_ms: f64,
    /// Percentage (0–100) of queries that violated the TR.
    pub pct_tr_violated: f64,
    /// Mean missing-bins ratio (0–1), violated queries counting as 1.
    pub mean_missing_bins: f64,
    /// Median of per-query mean relative errors (non-violated queries).
    pub median_mre: Option<f64>,
    /// Mean of per-query mean relative errors (non-violated queries).
    pub mean_mre: Option<f64>,
    /// Median of per-query mean relative margins.
    pub median_margin: Option<f64>,
    /// Mean cosine distance.
    pub mean_cosine: Option<f64>,
    /// Area above the MRE CDF truncated at 100% — equals `E[min(MRE, 1)]`;
    /// smaller is better (Figure 5's "% above the CDF").
    pub area_above_cdf: Option<f64>,
}

/// The aggregated summary report (paper Figure 5).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SummaryReport {
    /// Aggregated rows.
    pub rows: Vec<SummaryRow>,
}

impl SummaryReport {
    /// Aggregates detailed rows per `(system, TR)` pooling workflow kinds.
    pub fn from_detailed(detailed: &DetailedReport) -> SummaryReport {
        Self::aggregate(detailed, false)
    }

    /// Aggregates per `(system, TR, workflow kind)` (Figure 6d).
    pub fn from_detailed_by_kind(detailed: &DetailedReport) -> SummaryReport {
        Self::aggregate(detailed, true)
    }

    fn aggregate(detailed: &DetailedReport, by_kind: bool) -> SummaryReport {
        // Group keys in first-seen order for stable output.
        let mut keys: Vec<(String, u64, String)> = Vec::new();
        for r in &detailed.rows {
            let kind = if by_kind {
                r.workflow_kind.clone()
            } else {
                "all".to_string()
            };
            let key = (r.driver.clone(), r.time_req, kind);
            if !keys.contains(&key) {
                keys.push(key);
            }
        }

        let mut rows = Vec::with_capacity(keys.len());
        for (system, time_req, kind) in keys {
            let group: Vec<&DetailedRow> = detailed
                .rows
                .iter()
                .filter(|r| {
                    r.driver == system
                        && r.time_req == time_req
                        && (!by_kind || r.workflow_kind == kind)
                })
                .collect();
            let n = group.len();
            let violated = group.iter().filter(|r| r.tr_violated).count();
            let latencies: Vec<f64> = group.iter().map(|r| r.end_time - r.start_time).collect();
            let latency_pcts = percentiles(&latencies, &[50.0, 95.0, 99.0]);
            let missing: Vec<f64> = group.iter().map(|r| r.metrics.missing_bins).collect();
            let mres: Vec<f64> = group
                .iter()
                .filter(|r| !r.tr_violated)
                .filter_map(|r| r.metrics.rel_error_avg)
                .collect();
            let margins: Vec<f64> = group
                .iter()
                .filter(|r| !r.tr_violated)
                .filter_map(|r| r.metrics.margin_avg)
                .collect();
            let cosines: Vec<f64> = group
                .iter()
                .filter(|r| !r.tr_violated)
                .filter_map(|r| r.metrics.cosine_distance)
                .collect();
            let clipped: Vec<f64> = mres.iter().map(|&e| e.min(1.0)).collect();
            rows.push(SummaryRow {
                system,
                time_req,
                workflow_kind: kind,
                queries: n,
                p50_latency_ms: latency_pcts[0].unwrap_or(0.0),
                p95_latency_ms: latency_pcts[1].unwrap_or(0.0),
                p99_latency_ms: latency_pcts[2].unwrap_or(0.0),
                pct_tr_violated: if n == 0 {
                    0.0
                } else {
                    violated as f64 / n as f64 * 100.0
                },
                mean_missing_bins: mean(&missing).unwrap_or(0.0),
                median_mre: median(&mres),
                mean_mre: mean(&mres),
                median_margin: median(&margins),
                mean_cosine: mean(&cosines),
                area_above_cdf: mean(&clipped),
            });
        }
        SummaryReport { rows }
    }

    /// The empirical CDF of per-query MREs for one `(system, TR)` cell,
    /// truncated at 100% — the curve plotted in Figure 5. Returns sorted
    /// `(error, cumulative_fraction)` points.
    pub fn mre_cdf(detailed: &DetailedReport, system: &str, time_req: u64) -> Vec<(f64, f64)> {
        let mut errs: Vec<f64> = detailed
            .rows
            .iter()
            .filter(|r| r.driver == system && r.time_req == time_req && !r.tr_violated)
            .filter_map(|r| r.metrics.rel_error_avg)
            .map(|e| e.min(1.0))
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN errors"));
        let n = errs.len();
        errs.into_iter()
            .enumerate()
            .map(|(i, e)| (e, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Renders the report as an aligned text table (the stdout artifact the
    /// experiment binaries print).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:<14} {:>7} {:>7} {:>7} {:>7} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "system",
            "TR(ms)",
            "workflow",
            "queries",
            "p50ms",
            "p95ms",
            "p99ms",
            "%TRviol",
            "missing",
            "medMRE",
            "medMargin",
            "cosine",
            "areaCDF"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:<14} {:>7} {:>7.0} {:>7.0} {:>7.0} {:>8.1} {:>9.3} {:>9} {:>9} {:>9} {:>9}",
                r.system,
                r.time_req,
                r.workflow_kind,
                r.queries,
                r.p50_latency_ms,
                r.p95_latency_ms,
                r.p99_latency_ms,
                r.pct_tr_violated,
                r.mean_missing_bins,
                fmt_cell(r.median_mre),
                fmt_cell(r.median_margin),
                fmt_cell(r.mean_cosine),
                fmt_cell(r.area_above_cdf),
            );
        }
        out
    }

    /// Renders one Figure-5-style MRE CDF as an ASCII plot: x = mean
    /// relative error truncated at 100%, y = fraction of queries.
    pub fn render_cdf_ascii(detailed: &DetailedReport, system: &str, time_req: u64) -> String {
        const WIDTH: usize = 50;
        const HEIGHT: usize = 10;
        let cdf = Self::mre_cdf(detailed, system, time_req);
        let mut out = format!("MRE CDF — {system} @ TR={time_req} ms\n");
        if cdf.is_empty() {
            out.push_str("  (no completed queries)\n");
            return out;
        }
        // grid[y][x], y=0 at the top (fraction 1.0).
        let mut grid = vec![[b' '; WIDTH]; HEIGHT];
        let mut frac_at = [0.0f64; WIDTH];
        for (err, frac) in &cdf {
            let x = ((err / 1.0) * (WIDTH - 1) as f64).round() as usize;
            // CDF is monotone: keep the max fraction reaching each column.
            for f in frac_at.iter_mut().skip(x.min(WIDTH - 1)) {
                *f = f.max(*frac);
            }
        }
        for (x, &frac) in frac_at.iter().enumerate() {
            if frac <= 0.0 {
                continue;
            }
            let y = ((1.0 - frac) * (HEIGHT - 1) as f64).round() as usize;
            grid[y.min(HEIGHT - 1)][x] = b'#';
        }
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                "1.0"
            } else if i == HEIGHT - 1 {
                "0.0"
            } else {
                "   "
            };
            let _ = writeln!(out, "{label} |{}", String::from_utf8_lossy(row));
        }
        let _ = writeln!(out, "    +{}", "-".repeat(WIDTH));
        let _ = writeln!(out, "     0%{}100%", " ".repeat(WIDTH - 7));
        out
    }

    /// Renders the report as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| system | TR (ms) | workflow | queries | p50 (ms) | p95 (ms) | p99 (ms) | \
             % TR violated | missing bins | \
             median MRE | median margin | cosine | area CDF |\n\
             |---|---:|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n",
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {:.0} | {:.0} | {:.0} | {:.1} | {:.3} | {} | {} | {} | {} |",
                r.system,
                r.time_req,
                r.workflow_kind,
                r.queries,
                r.p50_latency_ms,
                r.p95_latency_ms,
                r.p99_latency_ms,
                r.pct_tr_violated,
                r.mean_missing_bins,
                fmt_cell(r.median_mre),
                fmt_cell(r.median_margin),
                fmt_cell(r.mean_cosine),
                fmt_cell(r.area_above_cdf),
            );
        }
        out
    }
}

fn fmt_cell(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(mre: Option<f64>, missing: f64) -> Metrics {
        Metrics {
            missing_bins: missing,
            bins_delivered: 10,
            bins_in_gt: 10,
            rel_error_avg: mre,
            rel_error_stdev: Some(0.0),
            smape: mre,
            cosine_distance: Some(0.05),
            margin_avg: Some(0.1),
            margin_stdev: Some(0.0),
            bins_out_of_margin: 0,
            bias: Some(1.0),
        }
    }

    fn row(system: &str, tr: u64, kind: &str, violated: bool, mre: Option<f64>) -> DetailedRow {
        DetailedRow {
            id: 0,
            interaction: 0,
            viz_name: "viz_0".into(),
            driver: system.into(),
            data_size: "M".into(),
            think_time: 1000,
            time_req: tr,
            workflow: "wf_0".into(),
            workflow_kind: kind.into(),
            start_time: 0.0,
            end_time: 100.0,
            tr_violated: violated,
            bin_dims: 1,
            binning_type: "nominal".into(),
            agg_type: "count".into(),
            concurrent: 1,
            filter_specificity: 0,
            metrics: metrics(mre, if violated { 1.0 } else { 0.0 }),
        }
    }

    #[test]
    fn summary_counts_violations_and_pools_kinds() {
        let detailed = DetailedReport {
            rows: vec![
                row("exact", 500, "mixed", true, None),
                row("exact", 500, "mixed", false, Some(0.0)),
                row("exact", 500, "independent", false, Some(0.2)),
                row("prog", 500, "mixed", false, Some(0.1)),
            ],
        };
        let s = SummaryReport::from_detailed(&detailed);
        assert_eq!(s.rows.len(), 2);
        let exact = s.rows.iter().find(|r| r.system == "exact").unwrap();
        assert_eq!(exact.queries, 3);
        assert!((exact.pct_tr_violated - 100.0 / 3.0).abs() < 1e-9);
        // violated query contributes 1.0 missing bins.
        assert!((exact.mean_missing_bins - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(exact.median_mre, Some(0.1));
    }

    #[test]
    fn summary_by_kind_separates_workflow_types() {
        let detailed = DetailedReport {
            rows: vec![
                row("exact", 500, "mixed", false, Some(0.0)),
                row("exact", 500, "independent", true, None),
            ],
        };
        let s = SummaryReport::from_detailed_by_kind(&detailed);
        assert_eq!(s.rows.len(), 2);
        assert!(s.rows.iter().any(|r| r.workflow_kind == "independent"));
    }

    #[test]
    fn area_above_cdf_is_clipped_mean() {
        let detailed = DetailedReport {
            rows: vec![
                row("x", 500, "mixed", false, Some(0.5)),
                row("x", 500, "mixed", false, Some(3.0)), // clips to 1.0
            ],
        };
        let s = SummaryReport::from_detailed(&detailed);
        assert!((s.rows[0].area_above_cdf.unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mre_cdf_is_monotone() {
        let detailed = DetailedReport {
            rows: vec![
                row("x", 500, "mixed", false, Some(0.4)),
                row("x", 500, "mixed", false, Some(0.1)),
                row("x", 500, "mixed", true, Some(9.0)), // excluded: violated
            ],
        };
        let cdf = SummaryReport::mre_cdf(&detailed, "x", 500);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf[0], (0.1, 0.5));
        assert_eq!(cdf[1], (0.4, 1.0));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let detailed = DetailedReport {
            rows: vec![row("exact", 500, "mixed", false, Some(0.25))],
        };
        let csv = detailed.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("id,interaction,viz_name"));
        let data = lines.next().unwrap();
        assert!(data.contains("FALSE"));
        assert!(data.contains("0.25"));
    }

    #[test]
    fn render_text_contains_rows() {
        let detailed = DetailedReport {
            rows: vec![row("exact", 500, "mixed", false, Some(0.25))],
        };
        let s = SummaryReport::from_detailed(&detailed);
        let text = s.render_text();
        assert!(text.contains("exact"));
        assert!(text.contains("500"));
    }

    #[test]
    fn cdf_ascii_renders_axes_and_curve() {
        let detailed = DetailedReport {
            rows: vec![
                row("x", 500, "mixed", false, Some(0.1)),
                row("x", 500, "mixed", false, Some(0.6)),
            ],
        };
        let plot = SummaryReport::render_cdf_ascii(&detailed, "x", 500);
        assert!(plot.contains("MRE CDF — x @ TR=500 ms"));
        assert!(plot.contains('#'), "curve plotted");
        assert!(plot.contains("0%"));
        // Empty cell degrades gracefully.
        let empty = SummaryReport::render_cdf_ascii(&detailed, "nope", 500);
        assert!(empty.contains("no completed queries"));
    }

    #[test]
    fn render_markdown_is_a_table() {
        let detailed = DetailedReport {
            rows: vec![row("exact", 500, "mixed", false, Some(0.25))],
        };
        let md = SummaryReport::from_detailed(&detailed).render_markdown();
        let mut lines = md.lines();
        assert!(lines.next().unwrap().starts_with("| system |"));
        assert!(lines.next().unwrap().starts_with("|---"));
        let row_line = lines.next().unwrap();
        assert!(row_line.starts_with("| exact | 500 |"));
        assert!(row_line.contains("0.250"));
    }

    #[test]
    fn summary_latency_percentiles_are_observed_values() {
        let mut rows = Vec::new();
        for i in 1..=100u64 {
            let mut r = row("exact", 500, "mixed", false, Some(0.1));
            r.end_time = i as f64 * 10.0; // latencies 10, 20, …, 1000 ms
            rows.push(r);
        }
        let s = SummaryReport::from_detailed(&DetailedReport { rows });
        let cell = &s.rows[0];
        assert_eq!(cell.p50_latency_ms, 500.0);
        assert_eq!(cell.p95_latency_ms, 950.0);
        assert_eq!(cell.p99_latency_ms, 990.0);
        let text = s.render_text();
        assert!(text.contains("p95ms"));
        let md = s.render_markdown();
        assert!(md.contains("| p95 (ms) |"));
        assert!(md.lines().nth(2).unwrap().contains("| 950 |"));
    }

    #[test]
    fn merged_concatenates() {
        let a = DetailedReport {
            rows: vec![row("x", 500, "mixed", false, Some(0.1))],
        };
        let b = DetailedReport {
            rows: vec![row("y", 500, "mixed", false, Some(0.2))],
        };
        let m = DetailedReport::merged([a, b]);
        assert_eq!(m.rows.len(), 2);
    }
}
