//! Concurrent sessions: a closed-loop 8-analyst fleet on one shared
//! engine service.
//!
//! ```sh
//! cargo run --release --example concurrent_sessions
//! ```
//!
//! Eight simulated analysts (one Markov-generated mixed workflow each,
//! seeded per session) explore the same immutable flights dataset at once —
//! all through **one `Arc<dyn EngineService>`**: the sessions own no engine
//! state; they submit deadline-tagged query tickets under their session id
//! and the service's scheduler multiplexes the work. Their scans share the
//! persistent worker pool, their completed exact results flow through the
//! cross-session semantic cache, and the merged fleet report shows
//! service-level numbers the single-analyst benchmark cannot: throughput
//! across sessions, fleet-wide latency percentiles, and per-session cache
//! traffic.

use idebench::fleet::{FleetConfig, FleetHarness, FleetReport};
use idebench::prelude::*;
use idebench::workflow::WorkflowType;
use std::sync::Arc;

fn main() {
    // One shared flights dataset (§4.2) — all sessions scan the same table.
    let table = idebench::datagen::flights::generate(100_000, 42);
    let dataset = Dataset::Denormalized(Arc::new(table));

    // 8 analysts, closed loop: everyone is present from t = 0, pacing
    // themselves with 1 s think time under a 1 s time requirement.
    let settings = Settings::default()
        .with_time_requirement_ms(1_000)
        .with_think_time_ms(1_000)
        .with_seed(7);
    let config = FleetConfig::new(settings.clone(), 8).with_workflow(WorkflowType::Mixed, 12);
    let harness = FleetHarness::new(config);

    // Each session gets a derived seed and an independent workflow; the
    // engine service, dataset, scan pool, and semantic cache are shared.
    for i in 0..8u64 {
        println!(
            "session {i}: seed {} -> workflow {}",
            settings.for_session(i).seed,
            harness.workflow_for(i as usize).name,
        );
    }

    // ONE engine instance serves the whole fleet: `into_service()` hosts
    // the exact adapter behind the shared `EngineService` scheduler.
    let service = idebench::engine_exact::ExactAdapter::with_defaults()
        .into_service()
        .into_shared();
    let outcome = harness.run(&dataset, service).expect("fleet runs");

    // Evaluate against (shared, deduplicated) ground truth and print the
    // fleet summary.
    let report = FleetReport::evaluate(&outcome, &dataset);
    println!("\n{}", report.render_text());
}
