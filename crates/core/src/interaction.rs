//! The user interactions a workflow is made of (paper §4.3, Figure 3/4).

use crate::spec::{FilterExpr, Selection, VizSpec};
use serde::{Deserialize, Serialize};

/// One simulated user interaction.
///
/// Workflows are sequences of these; the benchmark driver applies them to
/// its visualization graph and derives the queries each one triggers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "interaction", rename_all = "snake_case")]
pub enum Interaction {
    /// Create a new visualization (triggers one query for it).
    CreateViz {
        /// The new viz.
        viz: VizSpec,
    },
    /// Set (or clear) the filter of an existing viz. Triggers a re-query of
    /// the viz itself and of every viz reachable through outgoing links.
    SetFilter {
        /// Target viz name.
        viz: String,
        /// New filter; `None` clears it.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        filter: Option<FilterExpr>,
    },
    /// Brush/select bins on a viz. Triggers re-queries of all *linked*
    /// downstream vizs (the source keeps showing its own result).
    Select {
        /// Source viz name.
        viz: String,
        /// The selected bins; `None` clears the selection.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        selection: Option<Selection>,
    },
    /// Link `source` → `target`: target's queries now include source's
    /// filter + selection (paper §2.2 "linking"; triggers a target re-query).
    Link {
        /// Link source viz name.
        source: String,
        /// Link target viz name.
        target: String,
    },
    /// Remove a viz and its links (frees engine state; triggers no query).
    Discard {
        /// Viz to remove.
        viz: String,
    },
}

impl Interaction {
    /// Short label for logs and the workflow viewer.
    pub fn kind(&self) -> &'static str {
        match self {
            Interaction::CreateViz { .. } => "create_viz",
            Interaction::SetFilter { .. } => "set_filter",
            Interaction::Select { .. } => "select",
            Interaction::Link { .. } => "link",
            Interaction::Discard { .. } => "discard",
        }
    }

    /// The primary viz this interaction manipulates.
    pub fn subject(&self) -> &str {
        match self {
            Interaction::CreateViz { viz } => &viz.name,
            Interaction::SetFilter { viz, .. }
            | Interaction::Select { viz, .. }
            | Interaction::Discard { viz } => viz,
            Interaction::Link { source, .. } => source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggregateSpec, BinDef};

    fn viz(name: &str) -> VizSpec {
        VizSpec::new(
            name,
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        )
    }

    #[test]
    fn kinds_and_subjects() {
        let i = Interaction::CreateViz { viz: viz("viz_0") };
        assert_eq!(i.kind(), "create_viz");
        assert_eq!(i.subject(), "viz_0");

        let l = Interaction::Link {
            source: "a".into(),
            target: "b".into(),
        };
        assert_eq!(l.kind(), "link");
        assert_eq!(l.subject(), "a");
    }

    #[test]
    fn interaction_json_is_tagged() {
        let i = Interaction::Discard {
            viz: "viz_3".into(),
        };
        let js = serde_json::to_value(&i).unwrap();
        assert_eq!(js["interaction"], "discard");
        assert_eq!(js["viz"], "viz_3");
        let back: Interaction = serde_json::from_value(js).unwrap();
        assert_eq!(i, back);
    }

    #[test]
    fn create_viz_roundtrip() {
        let i = Interaction::CreateViz { viz: viz("viz_1") };
        let js = serde_json::to_string(&i).unwrap();
        let back: Interaction = serde_json::from_str(&js).unwrap();
        assert_eq!(i, back);
    }
}
