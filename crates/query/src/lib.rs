//! Query-evaluation primitives shared by all IDEBench engines.
//!
//! The engines in this workspace differ in *when* and *over which rows* they
//! evaluate a query (blocking full scans, progressive shuffled prefixes,
//! offline samples, random join walks) — but the per-row semantics of
//! filtering, binning and aggregation are identical. This crate centralizes
//! those semantics around a vectorized, morsel-driven execution core:
//!
//! # Execution pipeline
//!
//! ```text
//!   Query ──compile──▶ CompiledPlan ──chunks──▶ worker pool ──▶ AggResult
//!           (once per         morsel dispatcher:    per worker+chunk:
//!            ChunkedRun)      fixed CHUNK_ROWS      filter → Mask
//!                             grid, partial per     bin    → slots/keys
//!                             chunk, in-order       accumulate dense/sparse
//!                             merge
//! ```
//!
//! - [`plan`]: the **owned** [`CompiledPlan`] — column names resolved to
//!   `(Arc<Table>, index)` handles (following star-schema foreign keys),
//!   IN-lists lowered to dictionary membership tables, binning classified as
//!   dense (bounded bin space: nominal dictionaries *and* statistics-bounded
//!   fixed-width bucketings) or sparse (genuinely unbounded key spaces).
//!   Built exactly once per run; [`plan_compilations`] lets tests pin that.
//! - [`batch`]: fixed-size morsel kernels (filter → bitmask, batched bin
//!   slot computation, bulk accumulation) and the dense flat-array /
//!   sparse hashed accumulators.
//! - [`dispatch`]: the [`MorselDispatcher`] — partitions the scan into
//!   fixed [`CHUNK_ROWS`]-sized chunks, fans them out over the persistent
//!   [`ScanPool`] with a per-chunk accumulator each, and merges partials in
//!   chunk order, making results bit-identical for every worker count.
//! - [`pool`]: the [`ScanPool`] — a process-wide, channel-fed pool of
//!   persistent scan workers ([`global_pool`]), shared by every dispatcher
//!   so intra-query parallelism and multi-session concurrency compose
//!   without oversubscription.
//! - [`executor`]: [`ChunkedRun`] — work-unit-budgeted morsel execution with
//!   monotone, exactly-capped budget accounting over the dispatcher — plus
//!   [`execute_exact`] / [`execute_exact_parallel`] (vectorized one-shot)
//!   and [`execute_exact_scalar`] (the retained row-at-a-time reference
//!   path used for differential testing).
//! - [`resolve`], [`filter`], [`binning`], [`aggregate`]: the scalar
//!   reference implementations ([`ResolvedQuery`] and friends) plus the
//!   canonical grouped accumulator ([`GroupedAcc`]) every path finishes
//!   through — exact finalization and sample-scale-up estimation with CLT
//!   confidence intervals.
//! - [`ground_truth`]: a caching [`idebench_core::GroundTruthProvider`].
//! - [`sql`]: SQL rendering of queries (paper Figure 4).
//!
//! # Engine usage
//!
//! Engines compile once, read their cost model off the plan, and hand the
//! same plan to the run — the query is never re-compiled during stepping:
//!
//! ```
//! use idebench_query::{ChunkedRun, CompiledPlan, SnapshotMode};
//! # use idebench_core::spec::{AggregateSpec, BinDef};
//! # use idebench_core::{Query, VizSpec};
//! # use idebench_storage::{DataType, Dataset, TableBuilder};
//! # use std::sync::Arc;
//! # let mut b = TableBuilder::with_fields("t", &[("c", DataType::Nominal)]);
//! # b.push_row(&["x".into()]).unwrap();
//! # let dataset = Dataset::Denormalized(Arc::new(b.finish()));
//! # let spec = VizSpec::new("v", "t",
//! #     vec![BinDef::Nominal { dimension: "c".into() }],
//! #     vec![AggregateSpec::count()]);
//! # let query = Query::for_viz(&spec, None);
//! let plan = CompiledPlan::compile(&dataset, &query)?;
//! let cost = 0.1 * plan.width_units(); // engine-specific cost model
//! let mut run = ChunkedRun::from_plan(plan, None, SnapshotMode::Exact);
//! run.set_row_cost(cost.max(0.01));
//! while !run.is_done() {
//!     run.advance(16_384);
//! }
//! assert!(run.snapshot().is_some());
//! # Ok::<(), idebench_core::CoreError>(())
//! ```

pub mod aggregate;
pub mod batch;
pub mod binning;
pub mod dispatch;
pub mod executor;
pub mod filter;
pub mod ground_truth;
pub mod plan;
pub mod pool;
pub mod resolve;
pub mod sql;

pub use aggregate::{BinAcc, GroupedAcc, MeasureAcc};
pub use batch::MORSEL;
pub use binning::CompiledBinning;
pub use dispatch::{available_workers, MorselDispatcher, CHUNK_ROWS};
pub use executor::{
    execute_exact, execute_exact_parallel, execute_exact_scalar, execute_exact_scalar_with_order,
    execute_exact_with_policy, ChunkedRun, SnapshotMode,
};
pub use filter::CompiledFilter;
pub use ground_truth::{enumerate_workload_queries, CachedGroundTruth};
pub use plan::{
    plan_compilations, AccMode, CompiledPlan, JoinPolicy, PlannedColumn, DENSE_BIN_CAP,
};
pub use pool::{global_pool, ScanPool};
pub use resolve::{ResolvedColumn, ResolvedQuery};
pub use sql::to_sql;
