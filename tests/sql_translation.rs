//! Golden tests for the Figure-4 pipeline: JSON workflow specification →
//! composed queries → SQL text.

use idebench::core::spec::{SelCoord, Selection};
use idebench::core::{Interaction, VizGraph};
use idebench::query::to_sql;
use idebench::workflow::Workflow;

/// The 1:N workflow of paper Figure 4, in this crate's JSON dialect.
const FIGURE4_JSON: &str = r#"{
  "name": "fig4",
  "kind": "1n_linking",
  "interactions": [
    {
      "interaction": "create_viz",
      "viz": {
        "name": "viz_0",
        "source": "flights",
        "binning": [ { "type": "nominal", "dimension": "carrier" } ],
        "aggregates": [ { "type": "count" } ]
      }
    },
    {
      "interaction": "create_viz",
      "viz": {
        "name": "viz_1",
        "source": "flights",
        "binning": [
          { "type": "width", "dimension": "dep_delay", "width": 10.0, "anchor": 0.0 }
        ],
        "aggregates": [ { "type": "avg", "dimension": "arr_delay" } ]
      }
    },
    {
      "interaction": "create_viz",
      "viz": {
        "name": "viz_2",
        "source": "flights",
        "binning": [ { "type": "nominal", "dimension": "origin_state" } ],
        "aggregates": [ { "type": "count" } ]
      }
    },
    { "interaction": "link", "source": "viz_0", "target": "viz_1" },
    { "interaction": "link", "source": "viz_0", "target": "viz_2" }
  ]
}"#;

/// Replays interactions, returning the SQL of each triggered query.
fn triggered_sql(workflow: &Workflow) -> Vec<(String, String)> {
    let mut graph = VizGraph::new();
    let mut out = Vec::new();
    for interaction in &workflow.interactions {
        for viz in graph.apply(interaction).expect("valid workflow") {
            let q = graph.query_for(&viz).expect("query composes");
            out.push((viz, to_sql(&q, None)));
        }
    }
    out
}

#[test]
fn figure4_unselected_queries() {
    let wf = Workflow::from_json(FIGURE4_JSON).unwrap();
    let sql = triggered_sql(&wf);
    assert_eq!(
        sql[0].1,
        "SELECT carrier AS bin_0, COUNT(*) FROM flights GROUP BY bin_0"
    );
    assert_eq!(
        sql[1].1,
        "SELECT FLOOR(dep_delay / 10) * 10 AS bin_0, AVG(arr_delay) FROM flights GROUP BY bin_0"
    );
    assert_eq!(
        sql[2].1,
        "SELECT origin_state AS bin_0, COUNT(*) FROM flights GROUP BY bin_0"
    );
    // Linking viz_0 → viz_1 re-queries viz_1 (no selection yet → same SQL).
    assert_eq!(sql[3].0, "viz_1");
    assert_eq!(sql[3].1, sql[1].1);
}

#[test]
fn figure4_selection_fans_out_with_where_clauses() {
    let wf = Workflow::from_json(FIGURE4_JSON).unwrap();
    let mut graph = VizGraph::new();
    for interaction in &wf.interactions {
        graph.apply(interaction).unwrap();
    }
    // The Figure-4 moment: selecting a carrier bin on viz_0 updates both
    // linked targets with a WHERE clause.
    let affected = graph
        .apply(&Interaction::Select {
            viz: "viz_0".into(),
            selection: Some(Selection {
                bins: vec![vec![SelCoord::Category("AA".into())]],
            }),
        })
        .unwrap();
    assert_eq!(affected, vec!["viz_1", "viz_2"]);
    let q1 = graph.query_for("viz_1").unwrap();
    assert_eq!(
        to_sql(&q1, None),
        "SELECT FLOOR(dep_delay / 10) * 10 AS bin_0, AVG(arr_delay) FROM flights \
         WHERE carrier IN ('AA') GROUP BY bin_0"
    );
    let q2 = graph.query_for("viz_2").unwrap();
    assert_eq!(
        to_sql(&q2, None),
        "SELECT origin_state AS bin_0, COUNT(*) FROM flights \
         WHERE carrier IN ('AA') GROUP BY bin_0"
    );
}

#[test]
fn multi_bin_selection_renders_or() {
    let wf = Workflow::from_json(FIGURE4_JSON).unwrap();
    let mut graph = VizGraph::new();
    for interaction in &wf.interactions {
        graph.apply(interaction).unwrap();
    }
    graph
        .apply(&Interaction::Select {
            viz: "viz_0".into(),
            selection: Some(Selection {
                bins: vec![
                    vec![SelCoord::Category("AA".into())],
                    vec![SelCoord::Category("DL".into())],
                ],
            }),
        })
        .unwrap();
    let sql = to_sql(&graph.query_for("viz_2").unwrap(), None);
    assert!(
        sql.contains("WHERE (carrier IN ('AA') OR carrier IN ('DL'))"),
        "got: {sql}"
    );
}

#[test]
fn star_schema_sql_renders_joins() {
    let table = idebench::datagen::flights::generate(1_000, 1);
    let star_ds = idebench::datagen::normalize_flights(&table).unwrap();
    let star = star_ds.as_star().unwrap();
    let wf = Workflow::from_json(FIGURE4_JSON).unwrap();
    let mut graph = VizGraph::new();
    graph.apply(&wf.interactions[0]).unwrap(); // carrier viz
    let q = graph.query_for("viz_0").unwrap();
    let sql = to_sql(&q, Some(star));
    assert!(
        sql.contains("JOIN carriers ON flights.carrier_key = carriers.rowid"),
        "got: {sql}"
    );
}

#[test]
fn workflow_json_roundtrip_preserves_semantics() {
    let wf = Workflow::from_json(FIGURE4_JSON).unwrap();
    let back = Workflow::from_json(&wf.to_json()).unwrap();
    assert_eq!(wf, back);
    assert_eq!(triggered_sql(&wf), triggered_sql(&back));
}
