//! Deadline-prioritized submission: two sessions share one engine service,
//! and the scheduler funds the tighter deadline first.
//!
//! ```sh
//! cargo run --release --example deadline_scheduling
//! ```
//!
//! This drives the `EngineService` API directly (no benchmark driver):
//!
//! 1. A *dashboard* session submits a query with a relaxed deadline —
//!    background-quality work.
//! 2. An *interactive* session submits the same scan with a tight
//!    deadline — a user is waiting.
//! 3. Pumping the scheduler shows earliest-deadline-first multiplexing:
//!    the interactive ticket absorbs the grants until it completes, then
//!    the background ticket proceeds.
//! 4. The dashboard's viz re-queries (the analyst changed a filter): the
//!    superseded pending ticket is revoked — it consumes no further work
//!    and never surfaces a stale snapshot.

use idebench::core::{QueryOptions, Settings};
use idebench::prelude::*;
use idebench::query::execute_exact;
use idebench_core::spec::{AggregateSpec, BinDef, VizSpec};
use idebench_core::Query;
use std::sync::Arc;

fn query(viz: &str) -> Query {
    let spec = VizSpec::new(
        viz,
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    );
    Query::for_viz(&spec, None)
}

fn main() {
    let table = idebench::datagen::flights::generate(200_000, 42);
    let dataset = Dataset::Denormalized(Arc::new(table));

    // One shared exact-engine service; two sessions open on it.
    let service = idebench::engine_exact::ExactAdapter::with_defaults()
        .into_service()
        .into_shared();
    let settings = Settings::default();
    const DASHBOARD: u64 = 0;
    const INTERACTIVE: u64 = 1;
    for s in [DASHBOARD, INTERACTIVE] {
        service.open_session(s, &dataset, &settings).unwrap();
    }

    // The dashboard refreshes with a relaxed 5M-unit deadline; then a user
    // interaction arrives needing an answer within 1M units.
    let relaxed = service.submit(
        &query("dashboard_viz"),
        QueryOptions::for_session(DASHBOARD).with_deadline_units(5_000_000),
    );
    let urgent = service.submit(
        &query("drilldown_viz"),
        QueryOptions::for_session(INTERACTIVE).with_deadline_units(1_000_000),
    );

    // Drive the *relaxed* ticket: every pump goes to the globally most
    // urgent work, so the interactive query finishes first anyway.
    let mut pumps_until_urgent_done = 0u64;
    while !urgent.is_settled() {
        relaxed.pump();
        pumps_until_urgent_done += 1;
    }
    println!(
        "interactive query finished first after {pumps_until_urgent_done} grants \
         (spent {} units); dashboard had received {} units so far",
        urgent.spent_units(),
        relaxed.spent_units(),
    );
    assert!(urgent.is_done());
    assert_eq!(
        urgent.snapshot().unwrap(),
        execute_exact(&dataset, &query("drilldown_viz")).unwrap()
    );

    // The analyst tweaks the dashboard filter before its refresh finished:
    // re-submitting on the same viz revokes the superseded ticket.
    let refreshed = service.submit(
        &query("dashboard_viz"),
        QueryOptions::for_session(DASHBOARD).with_deadline_units(5_000_000),
    );
    println!(
        "superseded dashboard ticket: {:?} (stale snapshot suppressed: {})",
        relaxed.status(),
        relaxed.snapshot().is_none(),
    );
    assert!(relaxed.status().is_revoked());
    assert!(relaxed.snapshot().is_none());

    let status = refreshed.drive();
    println!(
        "refreshed dashboard query completed: {status:?}, {} result bins",
        refreshed.snapshot().map_or(0, |r| r.bins.len()),
    );
}
