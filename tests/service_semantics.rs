//! Shared-service semantics: the `EngineService` redesign must not change
//! a single measured bit relative to the pre-redesign driver path, and its
//! new behaviour — cooperative cancellation — must hold under real engines.
//!
//! - A differential proptest pins the service path's reports bit-identical
//!   to the legacy `SystemAdapter` driver path, for every engine and
//!   across scan worker counts {1, 2, 8}.
//! - Cancellation tests pin the supersede rule end to end: a superseded
//!   viz query is revoked before completion, consumes no further work
//!   units, and never surfaces a stale snapshot.

use idebench::core::{
    BenchmarkDriver, EngineService, QueryOptions, ServiceCore, Settings, SystemAdapter,
};
use idebench::engine_cache::{CacheConfig, CachingAdapter};
use idebench::engine_exact::ExactAdapter;
use idebench::engine_progressive::{ProgressiveAdapter, ProgressiveConfig};
use idebench::engine_stratified::StratifiedAdapter;
use idebench::engine_wander::WanderAdapter;
use idebench::prelude::*;
use idebench::workflow::{WorkflowGenerator, WorkflowType};
use idebench_core::spec::{AggregateSpec, BinDef, VizSpec};
use idebench_core::{ExecutionMode, Query, WorkflowOutcome};
use proptest::prelude::*;
use std::sync::Arc;

fn dataset() -> Dataset {
    Dataset::Denormalized(Arc::new(idebench::datagen::flights::generate(20_000, 42)))
}

/// One engine in both worlds: its report name, a fresh legacy adapter, and
/// a fresh shared service hosting the same engine configuration.
type EngineUnderTest = (&'static str, Box<dyn SystemAdapter>, Arc<dyn EngineService>);

fn engines() -> Vec<EngineUnderTest> {
    vec![
        (
            "exact",
            Box::new(ExactAdapter::with_defaults()) as Box<dyn SystemAdapter>,
            ExactAdapter::with_defaults().into_service().into_shared(),
        ),
        (
            "wander",
            Box::new(WanderAdapter::with_defaults()),
            WanderAdapter::with_defaults().into_service().into_shared(),
        ),
        (
            "stratified",
            Box::new(StratifiedAdapter::with_defaults()),
            StratifiedAdapter::with_defaults()
                .into_service()
                .into_shared(),
        ),
        (
            "progressive",
            Box::new(ProgressiveAdapter::with_defaults()),
            Arc::new(ProgressiveAdapter::service(ProgressiveConfig::default())),
        ),
        (
            "cache+exact",
            Box::new(CachingAdapter::with_defaults(ExactAdapter::with_defaults())),
            Arc::new(CachingAdapter::service(CacheConfig::default(), |_| {
                ExactAdapter::with_defaults()
            })),
        ),
    ]
}

/// A bit-exact fingerprint of everything a run measured: timing, TR
/// verdicts, and the full result payloads (serialized, so every bin and
/// every float participates).
fn fingerprint(outcome: &WorkflowOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "total={} prep={:?}", outcome.total_ms, outcome.prep);
    for m in &outcome.query_results {
        let result = m
            .result
            .as_ref()
            .map(|r| serde_json::to_string(r).expect("results serialize"))
            .unwrap_or_else(|| "none".into());
        let _ = writeln!(
            out,
            "{}|{}|{}|{}|{}|{}|{}|{}",
            m.query_id,
            m.interaction_id,
            m.viz_name,
            m.start_ms,
            m.end_ms,
            m.tr_violated,
            m.concurrent,
            result
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// For every engine: the `EngineService` path reproduces the
    /// pre-redesign driver path bit for bit, and stays bit-identical
    /// across scan worker counts {1, 2, 8}.
    #[test]
    fn service_path_is_bit_identical_to_legacy_driver(seed in 0u64..1_000) {
        let ds = dataset();
        let workflow = WorkflowGenerator::new(WorkflowType::Mixed, seed).generate(8);
        for (name, _, _) in engines() {
            let mut reference: Option<String> = None;
            for workers in [1usize, 2, 8] {
                let settings = Settings::default()
                    .with_time_requirement_ms(100)
                    .with_think_time_ms(50)
                    .with_seed(seed)
                    .with_workers(workers)
                    .with_execution(ExecutionMode::Virtual { work_rate: 1e5 });
                let driver = BenchmarkDriver::new(settings);
                // Fresh engine state per run, matching how experiment
                // sweeps restart systems between cells.
                let (_, mut adapter, service) = engines()
                    .into_iter()
                    .find(|(n, _, _)| *n == name)
                    .expect("engine exists");
                let legacy = driver
                    .run_workflow(adapter.as_mut(), &ds, &workflow)
                    .expect("legacy path runs");
                let serviced = driver
                    .run_workflow_service(service.as_ref(), &ds, &workflow)
                    .expect("service path runs");
                let legacy_fp = fingerprint(&legacy);
                prop_assert_eq!(
                    &legacy_fp,
                    &fingerprint(&serviced),
                    "engine {} diverged between paths at workers={}",
                    name,
                    workers
                );
                match &reference {
                    None => reference = Some(legacy_fp),
                    Some(r) => prop_assert_eq!(
                        r,
                        &legacy_fp,
                        "engine {} diverged across worker counts at workers={}",
                        name,
                        workers
                    ),
                }
            }
        }
    }
}

fn carrier_query(viz: &str) -> Query {
    let spec = VizSpec::new(
        viz,
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    );
    Query::for_viz(&spec, None)
}

/// The supersede rule, end to end over a real progressive engine: the
/// revoked ticket stops consuming units and suppresses its (partial, would-
/// be-stale) snapshot, while the superseding query runs to completion.
#[test]
fn superseded_query_is_revoked_without_stale_snapshot() {
    let ds = dataset();
    let svc = ProgressiveAdapter::service(ProgressiveConfig {
        first_query_warmup_s: 0.0,
        enable_reuse: false,
        ..ProgressiveConfig::default()
    });
    svc.open_session(0, &ds, &Settings::default()).unwrap();

    let stale = svc.submit(
        &carrier_query("viz_a"),
        QueryOptions::for_session(0).with_step_quantum(2_000),
    );
    stale.pump();
    let spent_at_revocation = stale.spent_units();
    assert!(spent_at_revocation > 0, "made real progress");
    assert!(!stale.is_settled(), "still mid-flight");
    assert!(
        stale.snapshot().is_some(),
        "a live progressive run has a partial snapshot"
    );

    // The analyst changes the filter on the same viz: new query supersedes.
    let fresh = svc.submit(
        &carrier_query("viz_a"),
        QueryOptions::for_session(0).with_step_quantum(2_000),
    );

    // Revoked before completion...
    assert!(stale.status().is_revoked());
    // ...never surfaces a stale snapshot...
    assert!(stale.snapshot().is_none());
    // ...and consumes no further units while the replacement runs.
    assert!(fresh.drive().is_done());
    assert_eq!(stale.spent_units(), spent_at_revocation);
    assert!(fresh.snapshot().is_some());
}

/// Revocation scopes: only the same (session, viz) pair supersedes — other
/// vizs and other sessions are untouched.
#[test]
fn revocation_is_scoped_to_session_and_viz() {
    let ds = dataset();
    let svc = ServiceCore::shared_adapter(ExactAdapter::with_defaults()).into_shared();
    svc.open_session(0, &ds, &Settings::default()).unwrap();
    svc.open_session(1, &ds, &Settings::default()).unwrap();

    let q = |viz: &str| carrier_query(viz);
    let o = |s: u64| QueryOptions::for_session(s).with_step_quantum(1_000);
    let s0_a = svc.submit(&q("viz_a"), o(0));
    let s0_b = svc.submit(&q("viz_b"), o(0));
    let s1_a = svc.submit(&q("viz_a"), o(1));
    let replacement = svc.submit(&q("viz_a"), o(0));

    assert!(s0_a.status().is_revoked(), "same session+viz superseded");
    assert!(!s0_b.is_settled(), "other viz untouched");
    assert!(!s1_a.is_settled(), "other session untouched");
    assert!(replacement.drive().is_done());
    assert!(s0_b.drive().is_done());
    assert!(s1_a.drive().is_done());
}
