//! The IDEBench workload generator (paper §4.3).
//!
//! Workflows are sequences of user interactions resembling the four IDE
//! exploration patterns of Figure 3 — independent browsing, sequential
//! linking, 1:N linking, N:1 linking — plus the "mixed" workloads used in
//! the paper's main experiment. The generator models each pattern as a
//! Markov chain over interaction kinds with pattern-specific transition
//! probabilities, and samples concrete binnings, aggregates, filters and
//! selections from a (customizable) data profile.
//!
//! Generated workflows are plain data: JSON-(de)serializable (the paper's
//! workflow format, Figure 4), inspectable with [`Workflow::render_text`]
//! (the paper's "interactive viewer", terminal edition), and runnable via
//! [`idebench_core::BenchmarkDriver`].

pub mod generator;
pub mod profile;
pub mod store;

pub use generator::{GeneratorConfig, WorkflowGenerator};
pub use profile::{DataProfile, DimensionProfile};

use idebench_core::driver::RunnableWorkflow;
use idebench_core::Interaction;
use serde::{Deserialize, Serialize};

/// The four workflow patterns of paper Figure 3, plus mixed.
// Serde names match `label()` so workflow JSON files and report columns
// use the same strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkflowType {
    /// Independent visualizations; filters affect only one viz (Fig. 3a).
    #[serde(rename = "independent")]
    Independent,
    /// A chain v1 → v2 → v3 …; drill-down exploration (Fig. 3b).
    #[serde(rename = "sequential")]
    SequentialLinking,
    /// One source viz fanned out to N targets (Fig. 3c).
    #[serde(rename = "1n_linking")]
    OneToN,
    /// N source vizs feeding one target (Fig. 3d).
    #[serde(rename = "n1_linking")]
    NToOne,
    /// A blend of all four patterns (the paper's main workload).
    #[serde(rename = "mixed")]
    Mixed,
}

impl WorkflowType {
    /// All concrete types plus mixed, in presentation order.
    pub const ALL: [WorkflowType; 5] = [
        WorkflowType::Independent,
        WorkflowType::SequentialLinking,
        WorkflowType::OneToN,
        WorkflowType::NToOne,
        WorkflowType::Mixed,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            WorkflowType::Independent => "independent",
            WorkflowType::SequentialLinking => "sequential",
            WorkflowType::OneToN => "1n_linking",
            WorkflowType::NToOne => "n1_linking",
            WorkflowType::Mixed => "mixed",
        }
    }
}

/// A generated (or hand-written) workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Unique name, e.g. `"mixed_2"`.
    pub name: String,
    /// The pattern it follows.
    pub kind: WorkflowType,
    /// The interaction sequence.
    pub interactions: Vec<Interaction>,
}

impl Workflow {
    /// Creates a workflow from parts.
    pub fn new(
        name: impl Into<String>,
        kind: WorkflowType,
        interactions: Vec<Interaction>,
    ) -> Self {
        Workflow {
            name: name.into(),
            kind,
            interactions,
        }
    }

    /// Serializes to pretty JSON (the benchmark's workflow file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("workflows serialize")
    }

    /// Parses a workflow from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Renders a human-readable description (the terminal "viewer").
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "workflow {} [{}]", self.name, self.kind.label());
        for (i, interaction) in self.interactions.iter().enumerate() {
            let detail = match interaction {
                Interaction::CreateViz { viz } => format!(
                    "create {} ({}d {} / {})",
                    viz.name,
                    viz.bin_dims(),
                    viz.binning_type_label(),
                    viz.agg_type_label()
                ),
                Interaction::SetFilter { viz, filter } => match filter {
                    Some(f) => format!("filter {viz} ({} predicates)", f.num_predicates()),
                    None => format!("clear filter on {viz}"),
                },
                Interaction::Select { viz, selection } => match selection {
                    Some(s) => format!("select {} bins on {viz}", s.bins.len()),
                    None => format!("clear selection on {viz}"),
                },
                Interaction::Link { source, target } => format!("link {source} -> {target}"),
                Interaction::Discard { viz } => format!("discard {viz}"),
            };
            let _ = writeln!(out, "  {i:>3}. {detail}");
        }
        out
    }
}

impl RunnableWorkflow for Workflow {
    fn workflow_name(&self) -> &str {
        &self.name
    }

    fn workflow_kind(&self) -> &str {
        self.kind.label()
    }

    fn interactions(&self) -> &[Interaction] {
        &self.interactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggregateSpec, BinDef};
    use idebench_core::VizSpec;

    fn tiny() -> Workflow {
        let viz = VizSpec::new(
            "viz_0",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Workflow::new(
            "demo",
            WorkflowType::Independent,
            vec![Interaction::CreateViz { viz }],
        )
    }

    #[test]
    fn json_roundtrip() {
        let wf = tiny();
        let js = wf.to_json();
        let back = Workflow::from_json(&js).unwrap();
        assert_eq!(wf, back);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(WorkflowType::Mixed.label(), "mixed");
        assert_eq!(WorkflowType::OneToN.label(), "1n_linking");
        assert_eq!(WorkflowType::ALL.len(), 5);
    }

    #[test]
    fn render_text_lists_interactions() {
        let text = tiny().render_text();
        assert!(text.contains("workflow demo [independent]"));
        assert!(text.contains("create viz_0"));
    }

    #[test]
    fn runnable_workflow_impl() {
        let wf = tiny();
        use idebench_core::driver::RunnableWorkflow as _;
        assert_eq!(wf.workflow_name(), "demo");
        assert_eq!(wf.workflow_kind(), "independent");
        assert_eq!(wf.interactions().len(), 1);
    }
}
