//! Fleet-level bit-identity: a seeded fleet run produces a bit-identical
//! merged report regardless of scan worker count (and, by the harness's
//! virtual-clock event order, of physical session interleaving) — the
//! repo's single-scan determinism guarantee extended to whole fleets.

use idebench::fleet::{FleetConfig, FleetHarness, FleetReport, LoadModel};
use idebench::prelude::*;
use idebench::workflow::WorkflowType;
use proptest::prelude::*;
use std::sync::Arc;

fn dataset() -> Dataset {
    Dataset::Denormalized(Arc::new(idebench::datagen::flights::generate(30_000, 42)))
}

/// One shared exact-engine service, as every fleet run uses it.
fn exact_service() -> std::sync::Arc<dyn idebench::core::EngineService> {
    idebench::engine_exact::ExactAdapter::with_defaults()
        .into_service()
        .into_shared()
}

fn fleet_report_json(dataset: &Dataset, config: FleetConfig) -> String {
    let outcome = FleetHarness::new(config)
        .run(dataset, exact_service())
        .expect("fleet runs");
    FleetReport::evaluate(&outcome, dataset).to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same seed ⇒ same merged fleet report, bit for bit, across
    /// workers ∈ {1, 2, 8} and session counts ∈ {1, 4}.
    #[test]
    fn fleet_report_bit_identical_across_worker_counts(seed in any::<u64>()) {
        let ds = dataset();
        for sessions in [1usize, 4] {
            let mut reference: Option<String> = None;
            for workers in [1usize, 2, 8] {
                let settings = Settings::default()
                    .with_time_requirement_ms(1_000)
                    .with_think_time_ms(500)
                    .with_seed(seed)
                    .with_workers(workers);
                let cfg = FleetConfig::new(settings, sessions)
                    .with_workflow(WorkflowType::Mixed, 8);
                let json = fleet_report_json(&ds, cfg);
                match &reference {
                    None => reference = Some(json),
                    Some(r) => prop_assert_eq!(
                        &json, r,
                        "sessions = {}, workers = {} diverged", sessions, workers
                    ),
                }
            }
        }
    }
}

/// Open-loop fleets are just as reproducible: Poisson arrivals are seeded,
/// so the whole report — arrival schedule included — is a pure function of
/// the configuration.
#[test]
fn open_loop_fleet_is_reproducible() {
    let ds = dataset();
    let cfg = || {
        FleetConfig::new(
            Settings::default()
                .with_time_requirement_ms(1_000)
                .with_think_time_ms(500)
                .with_seed(9),
            4,
        )
        .with_workflow(WorkflowType::Mixed, 8)
        .with_load(LoadModel::Open {
            arrival_rate_per_s: 0.5,
        })
    };
    assert_eq!(fleet_report_json(&ds, cfg()), fleet_report_json(&ds, cfg()));
}

/// The staggered shared-dashboard scenario records real cross-session
/// traffic: a query one session completed earlier on the virtual timeline
/// is a hit when a later-arriving session repeats it, and the hit/miss
/// ledger is itself deterministic.
#[test]
fn shared_dashboard_records_cross_session_hits_deterministically() {
    let ds = dataset();
    let cfg = || {
        FleetConfig::new(
            Settings::default()
                .with_time_requirement_ms(1_000)
                .with_think_time_ms(500)
                .with_seed(3),
            3,
        )
        .with_workflow(WorkflowType::Mixed, 8)
        .with_shared_workflow(true)
        .with_load(LoadModel::Open {
            arrival_rate_per_s: 0.05,
        })
    };
    let run = |c: FleetConfig| FleetHarness::new(c).run(&ds, exact_service()).unwrap();
    let a = run(cfg());
    let b = run(cfg());
    assert!(
        a.cache.hits > 0,
        "replayed workflows must hit: {:?}",
        a.cache
    );
    // Later sessions replay session 0's completed queries from the cache.
    assert!(a.sessions[1].cache.hits > 0);
    assert_eq!(a.sessions[0].cache.hits, b.sessions[0].cache.hits);
    assert_eq!(a.cache, b.cache);
    assert_eq!(a.cache_entries, b.cache_entries);
}
