//! Token-stream parsing for the derive shim: item → [`crate::Item`].

use crate::{
    split_top_level_commas, strip_visibility, tokens_to_string, ContainerAttrs, DefaultAttr, Field,
    FieldAttrs, Fields, Item, ItemKind, Variant,
};
use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One `key` or `key = "value"` argument of a `#[serde(...)]` attribute.
type SerdeArg = (String, Option<String>);

pub(crate) fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut serde_args: Vec<SerdeArg> = Vec::new();

    // Attributes and visibility precede the `struct` / `enum` keyword.
    let kind_is_enum = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    serde_args.extend(parse_attr_group(g));
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break false;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                i += 1;
                break true;
            }
            Some(other) => panic!("serde shim: unexpected token {other} before item keyword"),
            None => panic!("serde shim: ran out of tokens before item keyword"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim: expected item name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim: generic types are not supported (derive on {name})");
        }
    }

    let attrs = container_attrs(&serde_args, &name);

    let kind = if kind_is_enum {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde shim: expected enum body for {name}, got {other:?}"),
        };
        ItemKind::Enum(parse_variants(body.stream()))
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Fields::Unit),
            other => panic!("serde shim: expected struct body for {name}, got {other:?}"),
        }
    };

    Item { name, attrs, kind }
}

/// Extracts the `#[serde(...)]` arguments out of one attribute bracket
/// group; other attributes (doc comments, derives, lints) yield nothing.
fn parse_attr_group(group: &proc_macro::Group) -> Vec<SerdeArg> {
    if group.delimiter() != Delimiter::Bracket {
        return Vec::new();
    }
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)]
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            parse_serde_args(args.stream())
        }
        _ => Vec::new(),
    }
}

/// Parses `key`, `key = "value"` pairs separated by commas.
fn parse_serde_args(stream: TokenStream) -> Vec<SerdeArg> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => panic!("serde shim: unexpected attribute token {other}"),
        };
        i += 1;
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                match tokens.get(i) {
                    Some(TokenTree::Literal(lit)) => {
                        value = Some(unquote(&lit.to_string()));
                        i += 1;
                    }
                    other => panic!("serde shim: expected string after `{key} =`, got {other:?}"),
                }
            }
        }
        out.push((key, value));
    }
    out
}

/// Strips the surrounding quotes of a string-literal token.
fn unquote(lit: &str) -> String {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("serde shim: expected string literal, got {lit}"));
    assert!(
        !inner.contains('\\'),
        "serde shim: escapes in attribute strings are not supported ({lit})"
    );
    inner.to_string()
}

fn container_attrs(args: &[SerdeArg], name: &str) -> ContainerAttrs {
    let mut attrs = ContainerAttrs::default();
    for (key, value) in args {
        match (key.as_str(), value) {
            ("rename_all", Some(v)) => attrs.rename_all = Some(v.clone()),
            ("tag", Some(v)) => attrs.tag = Some(v.clone()),
            ("content", Some(v)) => attrs.content = Some(v.clone()),
            ("untagged", None) => attrs.untagged = true,
            (other, _) => {
                panic!("serde shim: unsupported container attribute `{other}` on {name}")
            }
        }
    }
    attrs
}

fn field_attrs(args: &[SerdeArg], field: &str) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    for (key, value) in args {
        match (key.as_str(), value) {
            ("rename", Some(v)) => attrs.rename = Some(v.clone()),
            ("default", None) => attrs.default = Some(DefaultAttr::Std),
            ("default", Some(v)) => attrs.default = Some(DefaultAttr::Path(v.clone())),
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v.clone()),
            ("flatten", None) => attrs.flatten = true,
            ("with", Some(v)) => attrs.with = Some(v.clone()),
            (other, _) => panic!("serde shim: unsupported field attribute `{other}` on {field}"),
        }
    }
    attrs
}

/// Parses `name: Type` fields (with optional attributes and visibility) out
/// of a brace group's stream.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut serde_args: Vec<SerdeArg> = Vec::new();
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                serde_args.extend(parse_attr_group(g));
                i += 1;
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field {name}, got {other:?}"),
        }
        // Type: tokens until a top-level comma.
        let mut ty_tokens: Vec<TokenTree> = Vec::new();
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            ty_tokens.push(t.clone());
            i += 1;
        }
        let attrs = field_attrs(&serde_args, &name);
        fields.push(Field {
            name,
            ty: tokens_to_string(&ty_tokens),
            attrs,
        });
    }
    fields
}

/// Parses a paren group as tuple-struct / tuple-variant fields.
fn parse_tuple_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let types: Vec<String> = split_top_level_commas(&tokens)
        .iter()
        .map(|seg| tokens_to_string(strip_visibility(seg)))
        .collect();
    if types.is_empty() {
        Fields::Unit
    } else {
        Fields::Tuple(types)
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut serde_args: Vec<SerdeArg> = Vec::new();
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                serde_args.extend(parse_attr_group(g));
                i += 1;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                parse_tuple_fields(g.stream())
            }
            _ => Fields::Unit,
        };
        // Skip the separating comma (and reject discriminants).
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde shim: enum discriminants are not supported (variant {name})")
            }
            _ => {}
        }
        let mut rename = None;
        for (key, value) in &serde_args {
            match (key.as_str(), value) {
                ("rename", Some(v)) => rename = Some(v.clone()),
                (other, _) => {
                    panic!("serde shim: unsupported variant attribute `{other}` on {name}")
                }
            }
        }
        variants.push(Variant {
            name,
            rename,
            fields,
        });
    }
    variants
}
