//! The resolved query the driver hands to system adapters.

use crate::spec::{AggregateSpec, BinDef, FilterExpr, VizSpec};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// A fully-resolved aggregate query.
///
/// This is what the benchmark driver sends to a [`crate::SystemAdapter`]:
/// the viz's binning and aggregates, plus the *composed* filter — the viz's
/// own filter AND-combined with the filters/selections propagated from all
/// linked upstream visualizations (paper §2.2 "linking").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Name of the visualization this query refreshes.
    pub viz_name: String,
    /// Source table name.
    pub source: String,
    /// Binning definitions (1 or 2).
    pub binning: Vec<BinDef>,
    /// Aggregates per bin.
    pub aggregates: Vec<AggregateSpec>,
    /// Composed filter, if any.
    pub filter: Option<FilterExpr>,
}

impl Query {
    /// Builds a query for a viz with an already-composed filter.
    pub fn for_viz(spec: &VizSpec, filter: Option<FilterExpr>) -> Self {
        Query {
            viz_name: spec.name.clone(),
            source: spec.source.clone(),
            binning: spec.binning.clone(),
            aggregates: spec.aggregates.clone(),
            filter,
        }
    }

    /// A canonical, human-readable key identifying the *semantics* of the
    /// query (binning + aggregates + filter + source), independent of which
    /// viz or interaction issued it. Used for ground-truth caching and
    /// result reuse.
    pub fn canonical_key(&self) -> String {
        // serde_json's field ordering is declaration order, which is stable.
        let mut key = String::with_capacity(128);
        key.push_str(&self.source);
        key.push('|');
        key.push_str(&serde_json::to_string(&self.binning).expect("binning serializes"));
        key.push('|');
        key.push_str(&serde_json::to_string(&self.aggregates).expect("aggregates serialize"));
        key.push('|');
        match &self.filter {
            Some(f) => {
                key.push_str(&serde_json::to_string(f).expect("filter serializes"));
            }
            None => key.push_str("null"),
        }
        key
    }

    /// A 64-bit fingerprint of [`Self::canonical_key`].
    pub fn fingerprint(&self) -> u64 {
        let mut h = rustc_hash::FxHasher::default();
        self.canonical_key().hash(&mut h);
        h.finish()
    }

    /// All columns the query touches (binning dims + measures + filters).
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut cols: Vec<&str> = self.binning.iter().map(BinDef::dimension).collect();
        for a in &self.aggregates {
            if let Some(d) = &a.dimension {
                cols.push(d);
            }
        }
        if let Some(f) = &self.filter {
            cols.extend(f.columns());
        }
        cols
    }

    /// Number of leaf filter predicates (the specificity proxy of Exp 4).
    pub fn filter_specificity(&self) -> usize {
        self.filter.as_ref().map_or(0, FilterExpr::num_predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AggFunc, Predicate};

    fn viz() -> VizSpec {
        VizSpec::new(
            "viz_1",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        )
    }

    fn range(col: &str, min: f64, max: f64) -> FilterExpr {
        FilterExpr::pred(Predicate::Range {
            column: col.into(),
            min,
            max,
        })
    }

    #[test]
    fn fingerprint_ignores_viz_name() {
        let q1 = Query::for_viz(&viz(), None);
        let mut v2 = viz();
        v2.name = "viz_99".into();
        let q2 = Query::for_viz(&v2, None);
        assert_eq!(q1.fingerprint(), q2.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_filters() {
        let q1 = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        let q2 = Query::for_viz(&viz(), Some(range("distance", 0.0, 600.0)));
        let q3 = Query::for_viz(&viz(), None);
        assert_ne!(q1.fingerprint(), q2.fingerprint());
        assert_ne!(q1.fingerprint(), q3.fingerprint());
    }

    #[test]
    fn referenced_columns_cover_all_parts() {
        let q = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        let cols = q.referenced_columns();
        assert!(cols.contains(&"carrier"));
        assert!(cols.contains(&"dep_delay"));
        assert!(cols.contains(&"distance"));
    }

    #[test]
    fn specificity_counts_predicates() {
        let f = range("a", 0.0, 1.0).and(range("b", 0.0, 1.0));
        let q = Query::for_viz(&viz(), Some(f));
        assert_eq!(q.filter_specificity(), 2);
        assert_eq!(Query::for_viz(&viz(), None).filter_specificity(), 0);
    }

    #[test]
    fn query_serde_roundtrip() {
        let q = Query::for_viz(&viz(), Some(range("distance", 0.0, 500.0)));
        let js = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&js).unwrap();
        assert_eq!(q, back);
    }
}
