//! Owned compiled query plans.
//!
//! [`CompiledPlan`] is the once-per-run compilation product of a
//! [`Query`] against a [`Dataset`]: every referenced column resolved to a
//! `(table, column-index)` handle (following star-schema foreign keys),
//! filter predicates lowered to typed comparisons (IN-lists becoming dense
//! dictionary membership tables), and binning classified as *dense*
//! (bounded bin space → flat-array accumulation) or *sparse* (unbounded →
//! hash accumulation). A bin space is bounded when every dimension is —
//! nominal dimensions by their dictionary, fixed-width bucketings by the
//! column's cached min/max statistics (`slot = floor((v − anchor)/width) −
//! lo`, clamped into `[0, len)`); only genuinely unbounded or oversized key
//! spaces keep the hashed store.
//!
//! Unlike [`crate::resolve::ResolvedQuery`] — the borrow-based scalar
//! reference path, recompiled wherever it is used — a `CompiledPlan` owns
//! `Arc` handles into the dataset and therefore lives inside a
//! [`crate::ChunkedRun`] for the whole scan: `advance` only *binds* the plan
//! (index-based slice lookups, no name resolution, no hashing) and runs
//! batch kernels over it. [`plan_compilations`] counts compilations so tests
//! can pin the once-per-run property.
//!
//! # Join devirtualization
//!
//! On star schemas, a dimension attribute is logically reached through the
//! fact table's foreign key (`column[fk[row]]`). Under the default
//! [`JoinPolicy::Devirtualized`], compilation eliminates that per-row
//! indirection from the kernels:
//!
//! 1. **Materialization** (preferred): the plan asks the schema's shared
//!    [`idebench_storage::StarSchema::materialize_join`] cache for a
//!    fact-ordered copy of the column. On success the kernels read a flat
//!    slice — star scans run at de-normalized speed, and the `Arc`-shared
//!    memo means every session and query over the dataset reuses one copy.
//! 2. **Per-plan join caches** (fallback, e.g. when the shared cache is
//!    over capacity): the plan builds an `O(|dim|)` dimension-row-indexed
//!    cache — dictionary codes for nominal attributes, widened values for
//!    numeric ones — and each morsel gathers the FK column **once** into a
//!    shared staging buffer, translating every joined column through its
//!    cache into flat per-morsel slices.
//!
//! Either way, the batch kernels only ever see flat slices (plus a staged
//! validity mask); the legacy per-row virtualized access survives solely
//! under [`JoinPolicy::Indirect`] as the differential/benchmark baseline.
//! Devirtualization changes *wall-clock* cost only: the benchmark's virtual
//! cost model ([`CompiledPlan::row_cost`], [`CompiledPlan::width_units`])
//! still charges every logical join, exactly as before.

use idebench_core::{BinDef, CoreError, FilterExpr, Predicate, Query};
use idebench_storage::{Column, ColumnSlice, Dataset, SelVec, Table};
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on the flat bin space of the dense accumulation path.
/// Binnings whose bounded-bin-space product (dictionary sizes × reachable
/// bucket counts) exceeds this fall back to sparse (hashed) accumulation.
pub const DENSE_BIN_CAP: usize = 1 << 13;

static PLAN_COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of [`CompiledPlan`] compilations since process start.
///
/// Construction-count tests assert that stepping a [`crate::ChunkedRun`]
/// compiles its plan exactly once, no matter how the budget is sliced.
pub fn plan_compilations() -> u64 {
    PLAN_COMPILATIONS.load(Ordering::Relaxed)
}

/// How a [`CompiledPlan`] executes star-schema join access (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinPolicy {
    /// Joined columns are lowered to flat slices: materialized fact-ordered
    /// copies from the shared [`idebench_storage::StarSchema`] join cache
    /// when it has room, per-morsel FK staging through per-plan dimension
    /// caches otherwise. The default.
    #[default]
    Devirtualized,
    /// The pre-cache behaviour: every access to a joined (or nullable)
    /// column pays the per-row `column[fk[row]]` double indirection inside
    /// the kernels. Kept as the differential-test and benchmark baseline.
    Indirect,
}

/// Sentinel in a per-plan nominal join cache marking a null dimension row.
pub(crate) const NULL_CODE: u32 = u32::MAX;

/// How morsel kernels physically access a planned column.
#[derive(Debug, Clone)]
pub(crate) enum Access {
    /// Flat payload without nulls — kernels index it by fact row directly.
    Direct,
    /// Gathered per morsel into stage buffer `slot` (flat values plus a
    /// validity mask); `nominal` picks the code vs. numeric buffer.
    Staged { slot: usize, nominal: bool },
    /// Legacy per-row virtualized access (fk indirection + null checks in
    /// the row loop). Only under [`JoinPolicy::Indirect`].
    Virtual,
}

/// A query column resolved to owned storage handles.
///
/// `table` holds the column payload; for star-schema dimension attributes,
/// `fk` names the fact table's foreign-key column through which fact rows
/// logically reach it (`column[fk[row]]` — the indirection *is* the join).
/// `materialized` carries the fact-ordered copy when the shared join cache
/// devirtualized that indirection, and `access` says how kernels read the
/// column (see `Access`). The *cost model* always follows `fk`: a
/// devirtualized join still bills as a join.
#[derive(Debug, Clone)]
pub struct PlannedColumn {
    table: Arc<Table>,
    col: usize,
    fk: Option<(Arc<Table>, usize)>,
    materialized: Option<Arc<Column>>,
    access: Access,
}

impl PlannedColumn {
    /// Resolves `name` against the dataset.
    ///
    /// Standalone resolution keeps legacy access (direct when flat and
    /// fully valid, per-row virtualized otherwise);
    /// [`CompiledPlan::compile`] upgrades its columns per [`JoinPolicy`].
    pub fn resolve(dataset: &Dataset, name: &str) -> Result<Self, CoreError> {
        let make = |table: Arc<Table>, col: usize, fk: Option<(Arc<Table>, usize)>| {
            let access = if fk.is_none() && table.column_at(col).validity().is_none() {
                Access::Direct
            } else {
                Access::Virtual
            };
            PlannedColumn {
                table,
                col,
                fk,
                materialized: None,
                access,
            }
        };
        match dataset {
            Dataset::Denormalized(t) => Ok(make(Arc::clone(t), t.schema().index_of(name)?, None)),
            Dataset::Star(s) => {
                if let Ok(col) = s.fact().schema().index_of(name) {
                    return Ok(make(Arc::clone(s.fact()), col, None));
                }
                let (spec, dim) = s.dimension_of_column(name).ok_or_else(|| {
                    CoreError::Storage(format!("unknown column {name} in star schema"))
                })?;
                let fk_idx = s.fact().schema().index_of(&spec.fk_name)?;
                if s.fact().column_at(fk_idx).as_int().is_none() {
                    return Err(CoreError::Storage(format!("fk {} not int", spec.fk_name)));
                }
                Ok(make(
                    Arc::clone(dim),
                    dim.schema().index_of(name)?,
                    Some((Arc::clone(s.fact()), fk_idx)),
                ))
            }
        }
    }

    /// The underlying (logical) column — for dimension attributes, the
    /// column in the dimension table, independent of materialization.
    pub fn column(&self) -> &Column {
        self.table.column_at(self.col)
    }

    /// The column the kernels physically read: the fact-ordered
    /// materialization when the join was devirtualized through the shared
    /// cache, the logical column otherwise.
    pub(crate) fn payload(&self) -> &Column {
        self.materialized
            .as_deref()
            .unwrap_or_else(|| self.column())
    }

    /// The column's name in its home table.
    fn name(&self) -> &str {
        &self.table.schema().fields()[self.col].name
    }

    /// Whether the column is reached through a foreign key (join access).
    pub fn is_joined(&self) -> bool {
        self.fk.is_some()
    }

    /// Scan width in 4-byte units (same model as the scalar reference path:
    /// dictionary codes 1 unit, ints/floats 2, plus 2.5 for join access).
    pub fn width_units(&self) -> f64 {
        let own = match self.column().typed() {
            ColumnSlice::Codes(..) => 1.0,
            _ => 2.0,
        };
        if self.fk.is_some() {
            own + 2.0 + 0.5
        } else {
            own
        }
    }

    /// Binds the plan column to the legacy per-row virtualized accessor.
    #[inline]
    pub(crate) fn bind(&self) -> BoundColumn<'_> {
        let column = self.column();
        BoundColumn {
            data: column.typed(),
            validity: column.validity(),
            fk: self.fk.as_ref().map(|(fact, idx)| {
                fact.column_at(*idx)
                    .as_int()
                    .expect("fk column validated at compile time")
            }),
        }
    }

    /// The column as one morsel's kernels see it (see [`ColView`]).
    #[inline]
    pub(crate) fn view(&self) -> ColView<'_> {
        match self.access {
            Access::Direct => ColView::direct(self.payload().typed()),
            Access::Staged { slot, nominal } => {
                if nominal {
                    ColView::StagedCodes(slot)
                } else {
                    ColView::StagedNum(slot)
                }
            }
            Access::Virtual => ColView::Virtual(self.bind()),
        }
    }
}

/// A column as the morsel kernels consume it: a flat typed slice indexed by
/// fact row (`Direct*` — no nulls by construction), a staged scratch slot
/// indexed by morsel position with a validity mask (joined or nullable
/// columns under [`JoinPolicy::Devirtualized`]), or the retained per-row
/// virtualized accessor ([`JoinPolicy::Indirect`] and the scalar filter
/// lowering). This is what collapsed the old per-kernel
/// `(data, fk, validity)` match arms: every arm is flat except `Virtual`.
#[derive(Clone, Copy)]
pub(crate) enum ColView<'a> {
    /// Direct float slice.
    F64(&'a [f64]),
    /// Direct integer slice.
    I64(&'a [i64]),
    /// Direct dictionary-code slice.
    Codes(&'a [u32]),
    /// Numeric stage buffer `slot` (values at morsel positions).
    StagedNum(usize),
    /// Code stage buffer `slot` (codes at morsel positions).
    StagedCodes(usize),
    /// Per-row virtualized access.
    Virtual(BoundColumn<'a>),
}

impl<'a> ColView<'a> {
    /// Direct view of a flat, fully-valid payload.
    #[inline]
    pub(crate) fn direct(data: ColumnSlice<'a>) -> Self {
        match data {
            ColumnSlice::F64(d) => ColView::F64(d),
            ColumnSlice::I64(d) => ColView::I64(d),
            ColumnSlice::Codes(d, _) => ColView::Codes(d),
        }
    }
}

/// A [`PlannedColumn`] bound to borrowed slices for per-row virtualized
/// access — the one non-flat arm of [`ColView`].
#[derive(Clone, Copy)]
pub(crate) struct BoundColumn<'a> {
    pub data: ColumnSlice<'a>,
    pub validity: Option<&'a SelVec>,
    pub fk: Option<&'a [i64]>,
}

impl BoundColumn<'_> {
    /// The physical row backing fact row `row`.
    #[inline(always)]
    pub fn physical(&self, row: usize) -> usize {
        match self.fk {
            Some(fk) => fk[row] as usize,
            None => row,
        }
    }

    /// Numeric value at the fact row; `None` when null.
    #[inline(always)]
    pub fn numeric(&self, row: usize) -> Option<f64> {
        let r = self.physical(row);
        if let Some(v) = self.validity {
            if !v.contains(r) {
                return None;
            }
        }
        Some(match self.data {
            ColumnSlice::F64(d) => d[r],
            ColumnSlice::I64(d) => d[r] as f64,
            ColumnSlice::Codes(d, _) => f64::from(d[r]),
        })
    }

    /// Dictionary code at the fact row; `None` when null or non-nominal.
    #[inline(always)]
    pub fn code(&self, row: usize) -> Option<u32> {
        let r = self.physical(row);
        if let Some(v) = self.validity {
            if !v.contains(r) {
                return None;
            }
        }
        match self.data {
            ColumnSlice::Codes(d, _) => Some(d[r]),
            _ => None,
        }
    }
}

/// A filter tree lowered to planned columns and dense membership tables.
#[derive(Debug, Clone)]
pub(crate) enum PlannedFilter {
    /// Half-open quantitative range.
    Range {
        col: PlannedColumn,
        min: f64,
        max: f64,
    },
    /// Nominal membership, as a dictionary-length lookup table: IN-list
    /// hashing is paid once at compile time, never per row.
    In {
        col: PlannedColumn,
        member: Vec<bool>,
    },
    And(Vec<PlannedFilter>),
    Or(Vec<PlannedFilter>),
}

impl PlannedFilter {
    fn compile(dataset: &Dataset, expr: &FilterExpr) -> Result<Self, CoreError> {
        Ok(match expr {
            FilterExpr::Pred(Predicate::Range { column, min, max }) => PlannedFilter::Range {
                col: PlannedColumn::resolve(dataset, column)?,
                min: *min,
                max: *max,
            },
            FilterExpr::Pred(Predicate::In { column, values }) => {
                let col = PlannedColumn::resolve(dataset, column)?;
                let member = match col.column().typed() {
                    ColumnSlice::Codes(_, dict) => {
                        let mut member = vec![false; dict.len()];
                        for v in values {
                            // Categories absent from the dictionary never
                            // match (the filter referenced a value not in
                            // the data).
                            if let Some(code) = dict.code(v) {
                                member[code as usize] = true;
                            }
                        }
                        member
                    }
                    _ => {
                        return Err(CoreError::Storage(format!(
                            "IN filter on non-nominal column {column}"
                        )))
                    }
                };
                PlannedFilter::In { col, member }
            }
            FilterExpr::And(children) => PlannedFilter::And(
                children
                    .iter()
                    .map(|c| Self::compile(dataset, c))
                    .collect::<Result<_, _>>()?,
            ),
            FilterExpr::Or(children) => PlannedFilter::Or(
                children
                    .iter()
                    .map(|c| Self::compile(dataset, c))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    fn joined_columns(&self) -> usize {
        match self {
            PlannedFilter::Range { col, .. } | PlannedFilter::In { col, .. } => {
                usize::from(col.is_joined())
            }
            PlannedFilter::And(children) | PlannedFilter::Or(children) => {
                children.iter().map(PlannedFilter::joined_columns).sum()
            }
        }
    }

    fn for_each_col_mut(&mut self, f: &mut impl FnMut(&mut PlannedColumn)) {
        match self {
            PlannedFilter::Range { col, .. } | PlannedFilter::In { col, .. } => f(col),
            PlannedFilter::And(children) | PlannedFilter::Or(children) => {
                for c in children {
                    c.for_each_col_mut(f);
                }
            }
        }
    }

    fn for_each_col(&self, f: &mut impl FnMut(&PlannedColumn)) {
        match self {
            PlannedFilter::Range { col, .. } | PlannedFilter::In { col, .. } => f(col),
            PlannedFilter::And(children) | PlannedFilter::Or(children) => {
                for c in children {
                    c.for_each_col(f);
                }
            }
        }
    }

    fn width_units(&self) -> f64 {
        match self {
            PlannedFilter::Range { col, .. } | PlannedFilter::In { col, .. } => col.width_units(),
            PlannedFilter::And(children) | PlannedFilter::Or(children) => {
                children.iter().map(PlannedFilter::width_units).sum()
            }
        }
    }
}

/// Dense lowering of a fixed-width bucketing: column min/max statistics
/// bound the reachable bucket indices to `[lo, lo + len)`, so the bucket
/// becomes an arithmetic array slot (`slot = bucket − lo`, clamped into the
/// bounded space) instead of a hash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DenseWidth {
    /// Bucket index of the column minimum (the slot-space origin).
    pub lo: i64,
    /// Number of reachable buckets (`hi − lo + 1`), `≤ DENSE_BIN_CAP`.
    pub len: usize,
}

/// One planned binning dimension.
#[derive(Debug, Clone)]
pub(crate) enum PlannedDim {
    /// Nominal: bin = dictionary code; `dict_len` bounds the bin space.
    Nominal { col: PlannedColumn, dict_len: usize },
    /// Fixed-width bucketing: bin = `floor((x - anchor) / width)`. `dense`
    /// is the arithmetic slot lowering when column statistics bound the
    /// bucket space; `None` leaves the dimension on the hashed path.
    Width {
        col: PlannedColumn,
        width: f64,
        anchor: f64,
        dense: Option<DenseWidth>,
    },
}

impl PlannedDim {
    fn col(&self) -> &PlannedColumn {
        match self {
            PlannedDim::Nominal { col, .. } | PlannedDim::Width { col, .. } => col,
        }
    }

    fn col_mut(&mut self) -> &mut PlannedColumn {
        match self {
            PlannedDim::Nominal { col, .. } | PlannedDim::Width { col, .. } => col,
        }
    }

    /// Size of the dimension's bounded bin space, when it has one.
    fn dense_len(&self) -> Option<usize> {
        match self {
            PlannedDim::Nominal { dict_len, .. } => Some((*dict_len).max(1)),
            PlannedDim::Width { dense, .. } => dense.map(|d| d.len),
        }
    }
}

/// How bin keys are accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccMode {
    /// Flat-array accumulation over a bounded nominal bin space of the given
    /// size (slot = `code0 + code1 * dict_len0`).
    Dense(usize),
    /// Hash accumulation for unbounded (bucketed) bin spaces.
    Sparse,
}

/// An owned handle to a column staged per morsel (see [`StageSpec::Own`]).
#[derive(Debug, Clone)]
pub(crate) enum ColRef {
    /// A column inside a table.
    Table(Arc<Table>, usize),
    /// A free-standing column (fact-ordered materialization).
    Owned(Arc<Column>),
}

impl ColRef {
    pub(crate) fn get(&self) -> &Column {
        match self {
            ColRef::Table(t, i) => t.column_at(*i),
            ColRef::Owned(c) => c,
        }
    }
}

/// One per-morsel staging instruction of a compiled plan. Stage buffer `i`
/// of the accumulator is filled by `stages[i]` at the top of every morsel;
/// kernels then consume flat slices plus the staged validity mask.
#[derive(Debug, Clone)]
pub(crate) enum StageSpec {
    /// Gather the column's own rows (folding its validity into the mask).
    Own(ColRef),
    /// Translate the staged FK buffer `fk_slot` through a per-plan
    /// dimension-row code cache ([`NULL_CODE`] marks null dimension rows).
    JoinCodes {
        fk_slot: usize,
        cache: Arc<Vec<u32>>,
    },
    /// Translate the staged FK buffer `fk_slot` through a per-plan
    /// dimension-row numeric cache (`valid` is the dimension column's
    /// validity, indexed by dimension row).
    JoinNum {
        fk_slot: usize,
        vals: Arc<Vec<f64>>,
        valid: Option<SelVec>,
    },
}

impl StageSpec {
    /// Whether the staged values are dictionary codes (vs. numerics).
    pub(crate) fn nominal(&self) -> bool {
        match self {
            StageSpec::Own(col) => matches!(col.get().typed(), ColumnSlice::Codes(..)),
            StageSpec::JoinCodes { .. } => true,
            StageSpec::JoinNum { .. } => false,
        }
    }
}

/// Which stage buffers (and FK gathers) each morsel phase fills: columns
/// the filter reads stage *before* filter evaluation, everything else only
/// after — a fully-filtered-out morsel skips the post-phase gathers
/// entirely, so selective filters never pay for join staging they don't
/// consume. Each FK gathers at most once per morsel (a filter-phase FK is
/// excluded from the post phase even when post stages read it).
#[derive(Debug, Default)]
pub(crate) struct StagePhases {
    pub filter_stages: Vec<usize>,
    pub post_stages: Vec<usize>,
    pub filter_fks: Vec<usize>,
    pub post_fks: Vec<usize>,
}

/// An owned, reusable compiled query plan (see module docs).
pub struct CompiledPlan {
    dataset: Dataset,
    query: Query,
    pub(crate) filter: Option<PlannedFilter>,
    pub(crate) dims: Vec<PlannedDim>,
    pub(crate) measures: Vec<Option<PlannedColumn>>,
    /// Per-morsel staging instructions (one per stage buffer).
    pub(crate) stages: Vec<StageSpec>,
    /// Distinct foreign-key columns gathered once per morsel, shared by
    /// every [`StageSpec::JoinCodes`]/[`StageSpec::JoinNum`] over them.
    pub(crate) fk_cols: Vec<(Arc<Table>, usize)>,
    /// Filter-phase vs. post-filter-phase staging split.
    pub(crate) phases: StagePhases,
    policy: JoinPolicy,
    acc_mode: AccMode,
    num_rows: usize,
    joined_columns: usize,
    width_units: f64,
    fact_arity: usize,
}

impl CompiledPlan {
    /// Compiles `query` against `dataset` under the default
    /// [`JoinPolicy::Devirtualized`]. The dataset handle is cheap to clone
    /// (`Arc`s all the way down) and is retained inside the plan.
    pub fn compile(dataset: &Dataset, query: &Query) -> Result<Self, CoreError> {
        Self::compile_with(dataset, query, JoinPolicy::default())
    }

    /// Compiles `query` against `dataset` under an explicit [`JoinPolicy`].
    ///
    /// Results are bit-identical across policies — the policy only decides
    /// whether kernels pay the per-row join indirection; differential tests
    /// and `bench_scan`'s star-join gate rely on that.
    pub fn compile_with(
        dataset: &Dataset,
        query: &Query,
        policy: JoinPolicy,
    ) -> Result<Self, CoreError> {
        PLAN_COMPILATIONS.fetch_add(1, Ordering::Relaxed);
        let mut filter = query
            .filter()
            .map(|f| PlannedFilter::compile(dataset, f))
            .transpose()?;
        let mut dims = query
            .binning()
            .iter()
            .map(|def| Self::compile_dim(dataset, def))
            .collect::<Result<Vec<_>, _>>()?;
        if !(1..=2).contains(&dims.len()) {
            return Err(CoreError::Storage(format!(
                "unsupported binning arity {}",
                dims.len()
            )));
        }
        let mut measures = query
            .aggregates()
            .iter()
            .map(|a| {
                a.dimension
                    .as_deref()
                    .map(|d| PlannedColumn::resolve(dataset, d))
                    .transpose()
            })
            .collect::<Result<Vec<_>, _>>()?;

        let (stages, fk_cols) =
            Self::plan_access(dataset, policy, &mut filter, &mut dims, &mut measures);
        let phases = Self::partition_stages(&filter, &stages, fk_cols.len());
        let acc_mode = Self::pick_acc_mode(&dims);
        let joined_columns = dims.iter().filter(|d| d.col().is_joined()).count()
            + filter.as_ref().map_or(0, PlannedFilter::joined_columns)
            + measures.iter().flatten().filter(|m| m.is_joined()).count();
        let width_units = dims.iter().map(|d| d.col().width_units()).sum::<f64>()
            + filter.as_ref().map_or(0.0, PlannedFilter::width_units)
            + measures
                .iter()
                .flatten()
                .map(PlannedColumn::width_units)
                .sum::<f64>();
        let fact_arity = match dataset {
            Dataset::Denormalized(t) => t.num_columns(),
            Dataset::Star(s) => s.fact().num_columns(),
        };
        Ok(CompiledPlan {
            num_rows: dataset.fact_rows(),
            dataset: dataset.clone(),
            query: query.clone(),
            filter,
            dims,
            measures,
            stages,
            fk_cols,
            phases,
            policy,
            acc_mode,
            joined_columns,
            width_units,
            fact_arity,
        })
    }

    /// Assigns every planned column its kernel [`Access`], deduplicated by
    /// physical column: the shared stage slots, per-plan join caches, and
    /// distinct FK staging columns fall out of this pass (module docs).
    fn plan_access(
        dataset: &Dataset,
        policy: JoinPolicy,
        filter: &mut Option<PlannedFilter>,
        dims: &mut [PlannedDim],
        measures: &mut [Option<PlannedColumn>],
    ) -> (Vec<StageSpec>, Vec<(Arc<Table>, usize)>) {
        // Per physical column: its access plus any shared materialization.
        type AccessMemo = FxHashMap<(usize, usize), (Access, Option<Arc<Column>>)>;
        let star = dataset.as_star();
        let mut stages: Vec<StageSpec> = Vec::new();
        let mut fk_cols: Vec<(Arc<Table>, usize)> = Vec::new();
        let mut memo: AccessMemo = FxHashMap::default();

        let mut assign = |col: &mut PlannedColumn| {
            let key = (Arc::as_ptr(&col.table) as usize, col.col);
            if let Some((access, materialized)) = memo.get(&key) {
                col.access = access.clone();
                col.materialized = materialized.clone();
                return;
            }
            let push_stage = |stages: &mut Vec<StageSpec>, spec: StageSpec| Access::Staged {
                nominal: spec.nominal(),
                slot: {
                    stages.push(spec);
                    stages.len() - 1
                },
            };
            let (access, materialized) = match policy {
                JoinPolicy::Indirect => (col.access.clone(), None),
                JoinPolicy::Devirtualized => {
                    let materialized = match (&col.fk, star) {
                        (Some(_), Some(s)) => s.materialize_join(col.name()),
                        _ => None,
                    };
                    if let Some(m) = &materialized {
                        let access = if m.validity().is_none() {
                            Access::Direct
                        } else {
                            push_stage(&mut stages, StageSpec::Own(ColRef::Owned(Arc::clone(m))))
                        };
                        (access, materialized)
                    } else if let Some((fact, fk_idx)) = &col.fk {
                        // Joined but not materialized (shared cache full, or
                        // no star): per-plan dimension-row caches, unless
                        // the dimension outgrows the u32 staging encoding.
                        let dim_col = col.column();
                        if dim_col.len() >= u32::MAX as usize {
                            (Access::Virtual, None)
                        } else {
                            let fk_key = (Arc::clone(fact), *fk_idx);
                            let fk_slot = fk_cols
                                .iter()
                                .position(|(t, i)| Arc::ptr_eq(t, fact) && i == fk_idx)
                                .unwrap_or_else(|| {
                                    fk_cols.push(fk_key);
                                    fk_cols.len() - 1
                                });
                            let spec =
                                match dim_col.typed() {
                                    ColumnSlice::Codes(codes, _) => StageSpec::JoinCodes {
                                        fk_slot,
                                        cache: Arc::new(
                                            codes
                                                .iter()
                                                .enumerate()
                                                .map(|(i, &c)| {
                                                    if dim_col.is_valid(i) {
                                                        c
                                                    } else {
                                                        NULL_CODE
                                                    }
                                                })
                                                .collect(),
                                        ),
                                    },
                                    _ => StageSpec::JoinNum {
                                        fk_slot,
                                        vals: Arc::new(
                                            (0..dim_col.len())
                                                .map(|i| dim_col.numeric_at(i).unwrap_or(0.0))
                                                .collect(),
                                        ),
                                        valid: dim_col.validity().cloned(),
                                    },
                                };
                            (push_stage(&mut stages, spec), None)
                        }
                    } else if col.column().validity().is_none() {
                        (Access::Direct, None)
                    } else {
                        // Nullable fact column: stage it so kernels fold the
                        // validity bitmap into the morsel mask once.
                        let spec = StageSpec::Own(ColRef::Table(Arc::clone(&col.table), col.col));
                        (push_stage(&mut stages, spec), None)
                    }
                }
            };
            memo.insert(key, (access.clone(), materialized.clone()));
            col.access = access;
            col.materialized = materialized;
        };

        for dim in dims.iter_mut() {
            assign(dim.col_mut());
        }
        if let Some(f) = filter {
            f.for_each_col_mut(&mut assign);
        }
        for m in measures.iter_mut().flatten() {
            assign(m);
        }
        (stages, fk_cols)
    }

    fn compile_dim(dataset: &Dataset, def: &BinDef) -> Result<PlannedDim, CoreError> {
        Ok(match def {
            BinDef::Nominal { dimension } => {
                let col = PlannedColumn::resolve(dataset, dimension)?;
                let dict_len = match col.column().typed() {
                    ColumnSlice::Codes(_, dict) => dict.len(),
                    _ => {
                        return Err(CoreError::Storage(format!(
                            "nominal binning on non-nominal column {dimension}"
                        )))
                    }
                };
                PlannedDim::Nominal { col, dict_len }
            }
            BinDef::Width {
                dimension,
                width,
                anchor,
            } => {
                if !(width.is_finite() && *width > 0.0) {
                    return Err(CoreError::Storage(format!(
                        "non-positive bin width {width} on {dimension}"
                    )));
                }
                let col = PlannedColumn::resolve(dataset, dimension)?;
                let dense = Self::dense_width(&col, *width, *anchor);
                PlannedDim::Width {
                    col,
                    width: *width,
                    anchor: *anchor,
                    dense,
                }
            }
            BinDef::Count { dimension, .. } => {
                return Err(CoreError::Storage(format!(
                    "unresolved count binning on {dimension} (driver resolves these)"
                )))
            }
        })
    }

    /// Lowers a fixed-width bucketing to dense arithmetic slots when the
    /// column's min/max statistics bound its reachable buckets to at most
    /// [`DENSE_BIN_CAP`]. Columns without usable stats (empty, all-null, or
    /// non-finite values) stay on the hashed path.
    fn dense_width(col: &PlannedColumn, width: f64, anchor: f64) -> Option<DenseWidth> {
        let (min, max) = col.column().numeric_min_max()?;
        let lo = ((min - anchor) / width).floor();
        let hi = ((max - anchor) / width).floor();
        if !(lo.is_finite() && hi.is_finite()) {
            return None;
        }
        // Reject oversized spans in f64 *before* any integer cast: the
        // bucket indices themselves can exceed every integer range for
        // pathological value/width combinations. `hi - lo` is exact for
        // spans under the cap (both are integer-valued and close).
        let span = hi - lo;
        if !(0.0..DENSE_BIN_CAP as f64).contains(&span) {
            return None;
        }
        // The slot kernel and bucket decode need `lo` to round-trip
        // through i64 exactly; outside that range stay on the hashed path.
        if lo < i64::MIN as f64 || hi >= i64::MAX as f64 {
            return None;
        }
        Some(DenseWidth {
            lo: lo as i64,
            len: span as usize + 1,
        })
    }

    /// Splits staging into the filter phase (stage slots the filter reads,
    /// plus the FK gathers feeding them) and the post phase (everything
    /// else) — see [`StagePhases`].
    fn partition_stages(
        filter: &Option<PlannedFilter>,
        stages: &[StageSpec],
        n_fks: usize,
    ) -> StagePhases {
        let mut in_filter = vec![false; stages.len()];
        if let Some(f) = filter {
            f.for_each_col(&mut |col| {
                if let Access::Staged { slot, .. } = col.access {
                    in_filter[slot] = true;
                }
            });
        }
        let mut fk_in_filter = vec![false; n_fks];
        let mut fk_in_post = vec![false; n_fks];
        for (i, spec) in stages.iter().enumerate() {
            if let StageSpec::JoinCodes { fk_slot, .. } | StageSpec::JoinNum { fk_slot, .. } = spec
            {
                if in_filter[i] {
                    fk_in_filter[*fk_slot] = true;
                } else {
                    fk_in_post[*fk_slot] = true;
                }
            }
        }
        let split = |flags: &[bool]| -> (Vec<usize>, Vec<usize>) {
            let mut yes = Vec::new();
            let mut no = Vec::new();
            for (i, &f) in flags.iter().enumerate() {
                if f {
                    yes.push(i);
                } else {
                    no.push(i);
                }
            }
            (yes, no)
        };
        let (filter_stages, post_stages) = split(&in_filter);
        StagePhases {
            filter_stages,
            post_stages,
            filter_fks: split(&fk_in_filter).0,
            // A filter-phase FK is already staged when the post phase runs.
            post_fks: (0..n_fks)
                .filter(|&i| fk_in_post[i] && !fk_in_filter[i])
                .collect(),
        }
    }

    /// Dense accumulation applies when every dimension has a bounded bin
    /// space — a nominal dictionary, or a bucketed dimension whose column
    /// statistics bound its reachable buckets — and the product of those
    /// spaces stays under [`DENSE_BIN_CAP`]. Anything else (unbounded or
    /// statistics-less buckets, oversized products) takes the hashed path.
    fn pick_acc_mode(dims: &[PlannedDim]) -> AccMode {
        let mut space = 1usize;
        for dim in dims {
            let Some(len) = dim.dense_len() else {
                return AccMode::Sparse;
            };
            space = match space.checked_mul(len) {
                Some(s) if s <= DENSE_BIN_CAP => s,
                _ => return AccMode::Sparse,
            };
        }
        AccMode::Dense(space)
    }

    /// The dataset this plan scans.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The query this plan executes.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of fact rows to scan.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Accumulation mode selected for the binning.
    pub fn acc_mode(&self) -> AccMode {
        self.acc_mode
    }

    /// The join-access policy this plan was compiled under.
    pub fn join_policy(&self) -> JoinPolicy {
        self.policy
    }

    /// How many referenced columns are join-accessed (cost-model input).
    pub fn joined_columns(&self) -> usize {
        self.joined_columns
    }

    /// Total scan width of the referenced columns in 4-byte units.
    pub fn width_units(&self) -> f64 {
        self.width_units
    }

    /// Number of columns of the fact (or single) table.
    pub fn fact_arity(&self) -> usize {
        self.fact_arity
    }

    /// Per-row work-unit cost: 1 for the scan plus 1 per join-accessed
    /// column (the price of the FK indirection / hash probe).
    pub fn row_cost(&self) -> u64 {
        1 + self.joined_columns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
    use idebench_core::VizSpec;
    use idebench_storage::{DataType, DimensionSpec, StarSchema, TableBuilder, Value};

    fn denorm() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        b.push_row(&["AA".into(), 5.0.into()]).unwrap();
        b.push_row(&["DL".into(), 15.0.into()]).unwrap();
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn star() -> Dataset {
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        f.push_row(&[5.0.into(), 1i64.into()]).unwrap();
        f.push_row(&[15.0.into(), 0i64.into()]).unwrap();
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        d.push_row(&[Value::Str("AA".into())]).unwrap();
        d.push_row(&[Value::Str("DL".into())]).unwrap();
        Dataset::Star(Arc::new(
            StarSchema::new(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
            )
            .unwrap(),
        ))
    }

    fn nominal_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn direct_and_joined_column_access() {
        let c = PlannedColumn::resolve(&denorm(), "dep_delay").unwrap();
        assert!(!c.is_joined());
        assert_eq!(c.bind().numeric(1), Some(15.0));

        let j = PlannedColumn::resolve(&star(), "carrier").unwrap();
        assert!(j.is_joined());
        // Row 0 has carrier_key = 1 → "DL" (code 1 in the dim dictionary).
        assert_eq!(j.bind().code(0), Some(1));
        assert_eq!(j.bind().code(1), Some(0));
    }

    #[test]
    fn unknown_column_errors() {
        assert!(PlannedColumn::resolve(&star(), "ghost").is_err());
        assert!(PlannedColumn::resolve(&denorm(), "ghost").is_err());
    }

    #[test]
    fn plan_costs_joins_and_width() {
        let plan = CompiledPlan::compile(&star(), &nominal_query()).unwrap();
        assert_eq!(plan.joined_columns(), 1);
        assert_eq!(plan.row_cost(), 2);
        assert_eq!(plan.num_rows(), 2);
        // carrier joined (1 + 2.5) + dep_delay (2).
        assert!((plan.width_units() - 5.5).abs() < 1e-12);

        let flat = CompiledPlan::compile(&denorm(), &nominal_query()).unwrap();
        assert_eq!(flat.row_cost(), 1);
        assert!((flat.width_units() - 3.0).abs() < 1e-12);
    }

    fn width_query(width: f64) -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width,
                anchor: 0.0,
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn nominal_binning_is_dense() {
        let plan = CompiledPlan::compile(&denorm(), &nominal_query()).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Dense(2));
    }

    #[test]
    fn bounded_buckets_are_dense_unbounded_sparse() {
        // dep_delay spans [5, 15]: width 10 reaches buckets {0, 1} → dense.
        let plan = CompiledPlan::compile(&denorm(), &width_query(10.0)).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Dense(2));

        // A width so fine the reachable bucket count blows past the cap
        // keeps the hashed store.
        let plan = CompiledPlan::compile(&denorm(), &width_query(1e-4)).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Sparse);
    }

    #[test]
    fn extreme_value_ranges_stay_sparse_without_overflow() {
        // Finite but astronomically spread values: bucket indices exceed
        // every integer range. Planning must fall back to the hashed store
        // instead of panicking on an integer-cast overflow.
        let mut b = TableBuilder::with_fields("flights", &[("x", DataType::Float)]);
        b.push_row(&[(-1e40).into()]).unwrap();
        b.push_row(&[1e40.into()]).unwrap();
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "x".into(),
                width: 1.0,
                anchor: 0.0,
            }],
            vec![AggregateSpec::count()],
        );
        let plan = CompiledPlan::compile(&ds, &Query::for_viz(&spec, None)).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Sparse);
    }

    #[test]
    fn dense_width_origin_offsets_negative_buckets() {
        // Values in [5, 15] with width 2 → buckets 2..=7, origin lo = 2.
        let q = width_query(2.0);
        let plan = CompiledPlan::compile(&denorm(), &q).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Dense(6));
        match &plan.dims[0] {
            PlannedDim::Width { dense, .. } => {
                assert_eq!(*dense, Some(DenseWidth { lo: 2, len: 6 }));
            }
            other => panic!("expected width dim, got {other:?}"),
        }
    }

    #[test]
    fn two_d_mixed_nominal_bucket_is_dense() {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![
                BinDef::Nominal {
                    dimension: "carrier".into(),
                },
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
            ],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(&spec, None);
        let plan = CompiledPlan::compile(&denorm(), &q).unwrap();
        // 2 carriers × 2 reachable buckets.
        assert_eq!(plan.acc_mode(), AccMode::Dense(4));
    }

    #[test]
    fn in_filter_compiles_to_membership_table() {
        let q = Query::for_viz(
            &VizSpec::new(
                "v",
                "flights",
                vec![BinDef::Nominal {
                    dimension: "carrier".into(),
                }],
                vec![AggregateSpec::count()],
            ),
            Some(FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["AA".into(), "ZZ".into()],
            })),
        );
        let plan = CompiledPlan::compile(&denorm(), &q).unwrap();
        match plan.filter.as_ref().unwrap() {
            PlannedFilter::In { member, .. } => {
                assert_eq!(member, &[true, false]); // AA yes, DL no, ZZ absent
            }
            other => panic!("expected In, got {other:?}"),
        }
    }

    #[test]
    fn invalid_definitions_rejected() {
        let bad_nominal = Query::for_viz(
            &VizSpec::new(
                "v",
                "flights",
                vec![BinDef::Nominal {
                    dimension: "dep_delay".into(),
                }],
                vec![AggregateSpec::count()],
            ),
            None,
        );
        assert!(CompiledPlan::compile(&denorm(), &bad_nominal).is_err());

        let bad_width = Query::for_viz(
            &VizSpec::new(
                "v",
                "flights",
                vec![BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 0.0,
                    anchor: 0.0,
                }],
                vec![AggregateSpec::count()],
            ),
            None,
        );
        assert!(CompiledPlan::compile(&denorm(), &bad_width).is_err());
    }

    fn star_capped(capacity: usize) -> Dataset {
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        f.push_row(&[5.0.into(), 1i64.into()]).unwrap();
        f.push_row(&[15.0.into(), 0i64.into()]).unwrap();
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        d.push_row(&[Value::Str("AA".into())]).unwrap();
        d.push_row(&[Value::Str("DL".into())]).unwrap();
        Dataset::Star(Arc::new(
            StarSchema::with_join_cache_capacity(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
                capacity,
            )
            .unwrap(),
        ))
    }

    #[test]
    fn star_joins_devirtualize_through_the_shared_cache() {
        let ds = star();
        let plan = CompiledPlan::compile(&ds, &nominal_query()).unwrap();
        let col = plan.dims[0].col();
        assert!(matches!(col.access, Access::Direct), "materialized → flat");
        let mat = col.materialized.as_ref().expect("materialized column");
        assert_eq!(mat.as_nominal().unwrap().0, &[1, 0], "fact-ordered codes");
        assert!(plan.stages.is_empty() && plan.fk_cols.is_empty());
        // The cost model still bills the logical join.
        assert_eq!(plan.joined_columns(), 1);
        assert_eq!(plan.row_cost(), 2);

        // A second plan over the same dataset shares the materialization.
        let again = CompiledPlan::compile(&ds, &nominal_query()).unwrap();
        let stats = ds.as_star().unwrap().join_cache_stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.hits >= 1, "second compile hits the memo");
        assert!(Arc::ptr_eq(
            mat,
            again.dims[0].col().materialized.as_ref().unwrap()
        ));
    }

    #[test]
    fn capped_cache_falls_back_to_per_plan_code_caches() {
        let ds = star_capped(0);
        let plan = CompiledPlan::compile(&ds, &nominal_query()).unwrap();
        let col = plan.dims[0].col();
        assert!(
            matches!(
                col.access,
                Access::Staged {
                    slot: 0,
                    nominal: true
                }
            ),
            "declined materialization stages through the FK"
        );
        assert!(col.materialized.is_none());
        assert_eq!(plan.fk_cols.len(), 1, "one staged FK column");
        match &plan.stages[..] {
            [StageSpec::JoinCodes { fk_slot: 0, cache }] => {
                assert_eq!(cache.as_slice(), &[0, 1], "dim-row-indexed codes");
            }
            other => panic!("expected one JoinCodes stage, got {other:?}"),
        }
        assert_eq!(ds.as_star().unwrap().join_cache_stats().declined, 1);
    }

    #[test]
    fn staging_defers_non_filter_columns_past_the_filter() {
        // Filter on a *direct* fact column, binning on a staged joined one:
        // the join staging must land in the post-filter phase, so morsels
        // the filter rejects never pay the FK gather.
        let ds = star_capped(0);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::Range {
                column: "dep_delay".into(),
                min: 0.0,
                max: 10.0,
            })),
        );
        let plan = CompiledPlan::compile(&ds, &q).unwrap();
        assert_eq!(plan.stages.len(), 1);
        assert!(plan.phases.filter_stages.is_empty());
        assert!(plan.phases.filter_fks.is_empty());
        assert_eq!(plan.phases.post_stages, vec![0]);
        assert_eq!(plan.phases.post_fks, vec![0]);

        // When the filter itself reads the staged column, it (and its FK)
        // moves to the filter phase — and is not re-staged afterwards.
        let q2 = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["AA".into()],
            })),
        );
        let plan2 = CompiledPlan::compile(&ds, &q2).unwrap();
        assert_eq!(plan2.phases.filter_stages, vec![0]);
        assert_eq!(plan2.phases.filter_fks, vec![0]);
        assert!(plan2.phases.post_stages.is_empty());
        assert!(plan2.phases.post_fks.is_empty());
    }

    #[test]
    fn indirect_policy_keeps_virtual_access() {
        let ds = star();
        let plan = CompiledPlan::compile_with(&ds, &nominal_query(), JoinPolicy::Indirect).unwrap();
        assert!(matches!(plan.dims[0].col().access, Access::Virtual));
        assert!(plan.stages.is_empty() && plan.fk_cols.is_empty());
        assert_eq!(plan.join_policy(), JoinPolicy::Indirect);
        // No materialization was even attempted.
        assert_eq!(ds.as_star().unwrap().join_cache_stats().misses, 0);
    }

    #[test]
    fn repeated_column_references_share_one_stage_slot() {
        // dep_delay appears as a (joined) dim *and* a measure: staged once.
        let mut f = TableBuilder::with_fields("facts", &[("k", DataType::Int)]);
        f.push_row(&[0i64.into()]).unwrap();
        f.push_row(&[1i64.into()]).unwrap();
        let mut d = TableBuilder::with_fields("dims", &[("dep_delay", DataType::Float)]);
        d.push_row(&[5.0.into()]).unwrap();
        d.push_row(&[15.0.into()]).unwrap();
        let ds = Dataset::Star(Arc::new(
            StarSchema::with_join_cache_capacity(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("dims", "k", vec!["dep_delay".into()]),
                    Arc::new(d.finish()),
                )],
                0,
            )
            .unwrap(),
        ));
        let spec = VizSpec::new(
            "v",
            "facts",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        let plan = CompiledPlan::compile(&ds, &Query::for_viz(&spec, None)).unwrap();
        assert_eq!(plan.stages.len(), 1, "dim and measure share the stage");
        assert!(matches!(
            plan.dims[0].col().access,
            Access::Staged {
                slot: 0,
                nominal: false
            }
        ));
        assert!(matches!(
            plan.measures[0].as_ref().unwrap().access,
            Access::Staged {
                slot: 0,
                nominal: false
            }
        ));
    }

    #[test]
    fn compilation_counter_advances() {
        let before = plan_compilations();
        let _ = CompiledPlan::compile(&denorm(), &nominal_query()).unwrap();
        assert!(plan_compilations() > before);
    }
}
