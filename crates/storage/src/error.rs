//! Error type for storage operations.

use std::fmt;

/// Errors produced by storage-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column referenced by name does not exist in the schema.
    UnknownColumn(String),
    /// A value with the wrong [`crate::DataType`] was appended or read.
    TypeMismatch {
        /// Column on which the mismatch occurred.
        column: String,
        /// What the schema declares.
        expected: &'static str,
        /// What was supplied.
        got: &'static str,
    },
    /// Columns of a table disagree on row count.
    LengthMismatch {
        /// Expected row count (from the first column).
        expected: usize,
        /// Row count of the offending column.
        got: usize,
    },
    /// A table referenced by name does not exist in a star schema.
    UnknownTable(String),
    /// CSV parsing failed.
    Csv {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// An I/O error occurred (message only; `std::io::Error` is not `Clone`).
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StorageError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch on column {column}: expected {expected}, got {got}"
            ),
            StorageError::LengthMismatch { expected, got } => {
                write!(f, "column length mismatch: expected {expected}, got {got}")
            }
            StorageError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            StorageError::Csv { line, message } => write!(f, "csv error at line {line}: {message}"),
            StorageError::Io(message) => write!(f, "io error: {message}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_column() {
        let e = StorageError::UnknownColumn("dep_delay".into());
        assert_eq!(e.to_string(), "unknown column: dep_delay");
    }

    #[test]
    fn display_type_mismatch() {
        let e = StorageError::TypeMismatch {
            column: "carrier".into(),
            expected: "nominal",
            got: "float",
        };
        assert!(e.to_string().contains("carrier"));
        assert!(e.to_string().contains("nominal"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
