//! Owned compiled query plans.
//!
//! [`CompiledPlan`] is the once-per-run compilation product of a
//! [`Query`] against a [`Dataset`]: every referenced column resolved to a
//! `(table, column-index)` handle (following star-schema foreign keys),
//! filter predicates lowered to typed comparisons (IN-lists becoming dense
//! dictionary membership tables), and binning classified as *dense*
//! (bounded bin space → flat-array accumulation) or *sparse* (unbounded →
//! hash accumulation). A bin space is bounded when every dimension is —
//! nominal dimensions by their dictionary, fixed-width bucketings by the
//! column's cached min/max statistics (`slot = floor((v − anchor)/width) −
//! lo`, clamped into `[0, len)`); only genuinely unbounded or oversized key
//! spaces keep the hashed store.
//!
//! Unlike [`crate::resolve::ResolvedQuery`] — the borrow-based scalar
//! reference path, recompiled wherever it is used — a `CompiledPlan` owns
//! `Arc` handles into the dataset and therefore lives inside a
//! [`crate::ChunkedRun`] for the whole scan: `advance` only *binds* the plan
//! (index-based slice lookups, no name resolution, no hashing) and runs
//! batch kernels over it. [`plan_compilations`] counts compilations so tests
//! can pin the once-per-run property.

use idebench_core::{BinDef, CoreError, FilterExpr, Predicate, Query};
use idebench_storage::{Column, ColumnSlice, Dataset, SelVec, Table};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on the flat bin space of the dense accumulation path.
/// Binnings whose bounded-bin-space product (dictionary sizes × reachable
/// bucket counts) exceeds this fall back to sparse (hashed) accumulation.
pub const DENSE_BIN_CAP: usize = 1 << 13;

static PLAN_COMPILATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of [`CompiledPlan`] compilations since process start.
///
/// Construction-count tests assert that stepping a [`crate::ChunkedRun`]
/// compiles its plan exactly once, no matter how the budget is sliced.
pub fn plan_compilations() -> u64 {
    PLAN_COMPILATIONS.load(Ordering::Relaxed)
}

/// A query column resolved to owned storage handles.
///
/// `table` holds the column payload; for star-schema dimension attributes,
/// `fk` names the fact table's foreign-key column through which fact rows
/// reach it (`column[fk[row]]` — the indirection *is* the join).
#[derive(Debug, Clone)]
pub struct PlannedColumn {
    table: Arc<Table>,
    col: usize,
    fk: Option<(Arc<Table>, usize)>,
}

impl PlannedColumn {
    /// Resolves `name` against the dataset.
    pub fn resolve(dataset: &Dataset, name: &str) -> Result<Self, CoreError> {
        match dataset {
            Dataset::Denormalized(t) => Ok(PlannedColumn {
                col: t.schema().index_of(name)?,
                table: Arc::clone(t),
                fk: None,
            }),
            Dataset::Star(s) => {
                if let Ok(col) = s.fact().schema().index_of(name) {
                    return Ok(PlannedColumn {
                        table: Arc::clone(s.fact()),
                        col,
                        fk: None,
                    });
                }
                let (spec, dim) = s.dimension_of_column(name).ok_or_else(|| {
                    CoreError::Storage(format!("unknown column {name} in star schema"))
                })?;
                let fk_idx = s.fact().schema().index_of(&spec.fk_name)?;
                if s.fact().column_at(fk_idx).as_int().is_none() {
                    return Err(CoreError::Storage(format!("fk {} not int", spec.fk_name)));
                }
                Ok(PlannedColumn {
                    col: dim.schema().index_of(name)?,
                    table: Arc::clone(dim),
                    fk: Some((Arc::clone(s.fact()), fk_idx)),
                })
            }
        }
    }

    /// The underlying column.
    pub fn column(&self) -> &Column {
        self.table.column_at(self.col)
    }

    /// Whether the column is reached through a foreign key (join access).
    pub fn is_joined(&self) -> bool {
        self.fk.is_some()
    }

    /// Scan width in 4-byte units (same model as the scalar reference path:
    /// dictionary codes 1 unit, ints/floats 2, plus 2.5 for join access).
    pub fn width_units(&self) -> f64 {
        let own = match self.column().typed() {
            ColumnSlice::Codes(..) => 1.0,
            _ => 2.0,
        };
        if self.fk.is_some() {
            own + 2.0 + 0.5
        } else {
            own
        }
    }

    /// Binds the plan column to borrowed slices for kernel execution.
    #[inline]
    pub(crate) fn bind(&self) -> BoundColumn<'_> {
        let column = self.column();
        BoundColumn {
            data: column.typed(),
            validity: column.validity(),
            fk: self.fk.as_ref().map(|(fact, idx)| {
                fact.column_at(*idx)
                    .as_int()
                    .expect("fk column validated at compile time")
            }),
        }
    }
}

/// A [`PlannedColumn`] bound to borrowed slices for one `advance` call.
#[derive(Clone, Copy)]
pub(crate) struct BoundColumn<'a> {
    pub data: ColumnSlice<'a>,
    pub validity: Option<&'a SelVec>,
    pub fk: Option<&'a [i64]>,
}

impl BoundColumn<'_> {
    /// The physical row backing fact row `row`.
    #[inline(always)]
    pub fn physical(&self, row: usize) -> usize {
        match self.fk {
            Some(fk) => fk[row] as usize,
            None => row,
        }
    }

    /// Numeric value at the fact row; `None` when null.
    #[inline(always)]
    pub fn numeric(&self, row: usize) -> Option<f64> {
        let r = self.physical(row);
        if let Some(v) = self.validity {
            if !v.contains(r) {
                return None;
            }
        }
        Some(match self.data {
            ColumnSlice::F64(d) => d[r],
            ColumnSlice::I64(d) => d[r] as f64,
            ColumnSlice::Codes(d, _) => f64::from(d[r]),
        })
    }

    /// Dictionary code at the fact row; `None` when null or non-nominal.
    #[inline(always)]
    pub fn code(&self, row: usize) -> Option<u32> {
        let r = self.physical(row);
        if let Some(v) = self.validity {
            if !v.contains(r) {
                return None;
            }
        }
        match self.data {
            ColumnSlice::Codes(d, _) => Some(d[r]),
            _ => None,
        }
    }
}

/// A filter tree lowered to planned columns and dense membership tables.
#[derive(Debug, Clone)]
pub(crate) enum PlannedFilter {
    /// Half-open quantitative range.
    Range {
        col: PlannedColumn,
        min: f64,
        max: f64,
    },
    /// Nominal membership, as a dictionary-length lookup table: IN-list
    /// hashing is paid once at compile time, never per row.
    In {
        col: PlannedColumn,
        member: Vec<bool>,
    },
    And(Vec<PlannedFilter>),
    Or(Vec<PlannedFilter>),
}

impl PlannedFilter {
    fn compile(dataset: &Dataset, expr: &FilterExpr) -> Result<Self, CoreError> {
        Ok(match expr {
            FilterExpr::Pred(Predicate::Range { column, min, max }) => PlannedFilter::Range {
                col: PlannedColumn::resolve(dataset, column)?,
                min: *min,
                max: *max,
            },
            FilterExpr::Pred(Predicate::In { column, values }) => {
                let col = PlannedColumn::resolve(dataset, column)?;
                let member = match col.column().typed() {
                    ColumnSlice::Codes(_, dict) => {
                        let mut member = vec![false; dict.len()];
                        for v in values {
                            // Categories absent from the dictionary never
                            // match (the filter referenced a value not in
                            // the data).
                            if let Some(code) = dict.code(v) {
                                member[code as usize] = true;
                            }
                        }
                        member
                    }
                    _ => {
                        return Err(CoreError::Storage(format!(
                            "IN filter on non-nominal column {column}"
                        )))
                    }
                };
                PlannedFilter::In { col, member }
            }
            FilterExpr::And(children) => PlannedFilter::And(
                children
                    .iter()
                    .map(|c| Self::compile(dataset, c))
                    .collect::<Result<_, _>>()?,
            ),
            FilterExpr::Or(children) => PlannedFilter::Or(
                children
                    .iter()
                    .map(|c| Self::compile(dataset, c))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    fn joined_columns(&self) -> usize {
        match self {
            PlannedFilter::Range { col, .. } | PlannedFilter::In { col, .. } => {
                usize::from(col.is_joined())
            }
            PlannedFilter::And(children) | PlannedFilter::Or(children) => {
                children.iter().map(PlannedFilter::joined_columns).sum()
            }
        }
    }

    fn width_units(&self) -> f64 {
        match self {
            PlannedFilter::Range { col, .. } | PlannedFilter::In { col, .. } => col.width_units(),
            PlannedFilter::And(children) | PlannedFilter::Or(children) => {
                children.iter().map(PlannedFilter::width_units).sum()
            }
        }
    }
}

/// Dense lowering of a fixed-width bucketing: column min/max statistics
/// bound the reachable bucket indices to `[lo, lo + len)`, so the bucket
/// becomes an arithmetic array slot (`slot = bucket − lo`, clamped into the
/// bounded space) instead of a hash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DenseWidth {
    /// Bucket index of the column minimum (the slot-space origin).
    pub lo: i64,
    /// Number of reachable buckets (`hi − lo + 1`), `≤ DENSE_BIN_CAP`.
    pub len: usize,
}

/// One planned binning dimension.
#[derive(Debug, Clone)]
pub(crate) enum PlannedDim {
    /// Nominal: bin = dictionary code; `dict_len` bounds the bin space.
    Nominal { col: PlannedColumn, dict_len: usize },
    /// Fixed-width bucketing: bin = `floor((x - anchor) / width)`. `dense`
    /// is the arithmetic slot lowering when column statistics bound the
    /// bucket space; `None` leaves the dimension on the hashed path.
    Width {
        col: PlannedColumn,
        width: f64,
        anchor: f64,
        dense: Option<DenseWidth>,
    },
}

impl PlannedDim {
    fn col(&self) -> &PlannedColumn {
        match self {
            PlannedDim::Nominal { col, .. } | PlannedDim::Width { col, .. } => col,
        }
    }

    /// Size of the dimension's bounded bin space, when it has one.
    fn dense_len(&self) -> Option<usize> {
        match self {
            PlannedDim::Nominal { dict_len, .. } => Some((*dict_len).max(1)),
            PlannedDim::Width { dense, .. } => dense.map(|d| d.len),
        }
    }
}

/// How bin keys are accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccMode {
    /// Flat-array accumulation over a bounded nominal bin space of the given
    /// size (slot = `code0 + code1 * dict_len0`).
    Dense(usize),
    /// Hash accumulation for unbounded (bucketed) bin spaces.
    Sparse,
}

/// An owned, reusable compiled query plan (see module docs).
pub struct CompiledPlan {
    dataset: Dataset,
    query: Query,
    pub(crate) filter: Option<PlannedFilter>,
    pub(crate) dims: Vec<PlannedDim>,
    pub(crate) measures: Vec<Option<PlannedColumn>>,
    acc_mode: AccMode,
    num_rows: usize,
    joined_columns: usize,
    width_units: f64,
    fact_arity: usize,
}

impl CompiledPlan {
    /// Compiles `query` against `dataset`. The dataset handle is cheap to
    /// clone (`Arc`s all the way down) and is retained inside the plan.
    pub fn compile(dataset: &Dataset, query: &Query) -> Result<Self, CoreError> {
        PLAN_COMPILATIONS.fetch_add(1, Ordering::Relaxed);
        let filter = query
            .filter
            .as_ref()
            .map(|f| PlannedFilter::compile(dataset, f))
            .transpose()?;
        let dims = query
            .binning
            .iter()
            .map(|def| Self::compile_dim(dataset, def))
            .collect::<Result<Vec<_>, _>>()?;
        if !(1..=2).contains(&dims.len()) {
            return Err(CoreError::Storage(format!(
                "unsupported binning arity {}",
                dims.len()
            )));
        }
        let measures = query
            .aggregates
            .iter()
            .map(|a| {
                a.dimension
                    .as_deref()
                    .map(|d| PlannedColumn::resolve(dataset, d))
                    .transpose()
            })
            .collect::<Result<Vec<_>, _>>()?;

        let acc_mode = Self::pick_acc_mode(&dims);
        let joined_columns = dims.iter().filter(|d| d.col().is_joined()).count()
            + filter.as_ref().map_or(0, PlannedFilter::joined_columns)
            + measures.iter().flatten().filter(|m| m.is_joined()).count();
        let width_units = dims.iter().map(|d| d.col().width_units()).sum::<f64>()
            + filter.as_ref().map_or(0.0, PlannedFilter::width_units)
            + measures
                .iter()
                .flatten()
                .map(PlannedColumn::width_units)
                .sum::<f64>();
        let fact_arity = match dataset {
            Dataset::Denormalized(t) => t.num_columns(),
            Dataset::Star(s) => s.fact().num_columns(),
        };
        Ok(CompiledPlan {
            num_rows: dataset.fact_rows(),
            dataset: dataset.clone(),
            query: query.clone(),
            filter,
            dims,
            measures,
            acc_mode,
            joined_columns,
            width_units,
            fact_arity,
        })
    }

    fn compile_dim(dataset: &Dataset, def: &BinDef) -> Result<PlannedDim, CoreError> {
        Ok(match def {
            BinDef::Nominal { dimension } => {
                let col = PlannedColumn::resolve(dataset, dimension)?;
                let dict_len = match col.column().typed() {
                    ColumnSlice::Codes(_, dict) => dict.len(),
                    _ => {
                        return Err(CoreError::Storage(format!(
                            "nominal binning on non-nominal column {dimension}"
                        )))
                    }
                };
                PlannedDim::Nominal { col, dict_len }
            }
            BinDef::Width {
                dimension,
                width,
                anchor,
            } => {
                if !(width.is_finite() && *width > 0.0) {
                    return Err(CoreError::Storage(format!(
                        "non-positive bin width {width} on {dimension}"
                    )));
                }
                let col = PlannedColumn::resolve(dataset, dimension)?;
                let dense = Self::dense_width(&col, *width, *anchor);
                PlannedDim::Width {
                    col,
                    width: *width,
                    anchor: *anchor,
                    dense,
                }
            }
            BinDef::Count { dimension, .. } => {
                return Err(CoreError::Storage(format!(
                    "unresolved count binning on {dimension} (driver resolves these)"
                )))
            }
        })
    }

    /// Lowers a fixed-width bucketing to dense arithmetic slots when the
    /// column's min/max statistics bound its reachable buckets to at most
    /// [`DENSE_BIN_CAP`]. Columns without usable stats (empty, all-null, or
    /// non-finite values) stay on the hashed path.
    fn dense_width(col: &PlannedColumn, width: f64, anchor: f64) -> Option<DenseWidth> {
        let (min, max) = col.column().numeric_min_max()?;
        let lo = ((min - anchor) / width).floor();
        let hi = ((max - anchor) / width).floor();
        if !(lo.is_finite() && hi.is_finite()) {
            return None;
        }
        // Reject oversized spans in f64 *before* any integer cast: the
        // bucket indices themselves can exceed every integer range for
        // pathological value/width combinations. `hi - lo` is exact for
        // spans under the cap (both are integer-valued and close).
        let span = hi - lo;
        if !(0.0..DENSE_BIN_CAP as f64).contains(&span) {
            return None;
        }
        // The slot kernel and bucket decode need `lo` to round-trip
        // through i64 exactly; outside that range stay on the hashed path.
        if lo < i64::MIN as f64 || hi >= i64::MAX as f64 {
            return None;
        }
        Some(DenseWidth {
            lo: lo as i64,
            len: span as usize + 1,
        })
    }

    /// Dense accumulation applies when every dimension has a bounded bin
    /// space — a nominal dictionary, or a bucketed dimension whose column
    /// statistics bound its reachable buckets — and the product of those
    /// spaces stays under [`DENSE_BIN_CAP`]. Anything else (unbounded or
    /// statistics-less buckets, oversized products) takes the hashed path.
    fn pick_acc_mode(dims: &[PlannedDim]) -> AccMode {
        let mut space = 1usize;
        for dim in dims {
            let Some(len) = dim.dense_len() else {
                return AccMode::Sparse;
            };
            space = match space.checked_mul(len) {
                Some(s) if s <= DENSE_BIN_CAP => s,
                _ => return AccMode::Sparse,
            };
        }
        AccMode::Dense(space)
    }

    /// The dataset this plan scans.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The query this plan executes.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of fact rows to scan.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Accumulation mode selected for the binning.
    pub fn acc_mode(&self) -> AccMode {
        self.acc_mode
    }

    /// How many referenced columns are join-accessed (cost-model input).
    pub fn joined_columns(&self) -> usize {
        self.joined_columns
    }

    /// Total scan width of the referenced columns in 4-byte units.
    pub fn width_units(&self) -> f64 {
        self.width_units
    }

    /// Number of columns of the fact (or single) table.
    pub fn fact_arity(&self) -> usize {
        self.fact_arity
    }

    /// Per-row work-unit cost: 1 for the scan plus 1 per join-accessed
    /// column (the price of the FK indirection / hash probe).
    pub fn row_cost(&self) -> u64 {
        1 + self.joined_columns as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
    use idebench_core::VizSpec;
    use idebench_storage::{DataType, DimensionSpec, StarSchema, TableBuilder, Value};

    fn denorm() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        b.push_row(&["AA".into(), 5.0.into()]).unwrap();
        b.push_row(&["DL".into(), 15.0.into()]).unwrap();
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn star() -> Dataset {
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        f.push_row(&[5.0.into(), 1i64.into()]).unwrap();
        f.push_row(&[15.0.into(), 0i64.into()]).unwrap();
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        d.push_row(&[Value::Str("AA".into())]).unwrap();
        d.push_row(&[Value::Str("DL".into())]).unwrap();
        Dataset::Star(Arc::new(
            StarSchema::new(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
            )
            .unwrap(),
        ))
    }

    fn nominal_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn direct_and_joined_column_access() {
        let c = PlannedColumn::resolve(&denorm(), "dep_delay").unwrap();
        assert!(!c.is_joined());
        assert_eq!(c.bind().numeric(1), Some(15.0));

        let j = PlannedColumn::resolve(&star(), "carrier").unwrap();
        assert!(j.is_joined());
        // Row 0 has carrier_key = 1 → "DL" (code 1 in the dim dictionary).
        assert_eq!(j.bind().code(0), Some(1));
        assert_eq!(j.bind().code(1), Some(0));
    }

    #[test]
    fn unknown_column_errors() {
        assert!(PlannedColumn::resolve(&star(), "ghost").is_err());
        assert!(PlannedColumn::resolve(&denorm(), "ghost").is_err());
    }

    #[test]
    fn plan_costs_joins_and_width() {
        let plan = CompiledPlan::compile(&star(), &nominal_query()).unwrap();
        assert_eq!(plan.joined_columns(), 1);
        assert_eq!(plan.row_cost(), 2);
        assert_eq!(plan.num_rows(), 2);
        // carrier joined (1 + 2.5) + dep_delay (2).
        assert!((plan.width_units() - 5.5).abs() < 1e-12);

        let flat = CompiledPlan::compile(&denorm(), &nominal_query()).unwrap();
        assert_eq!(flat.row_cost(), 1);
        assert!((flat.width_units() - 3.0).abs() < 1e-12);
    }

    fn width_query(width: f64) -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width,
                anchor: 0.0,
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn nominal_binning_is_dense() {
        let plan = CompiledPlan::compile(&denorm(), &nominal_query()).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Dense(2));
    }

    #[test]
    fn bounded_buckets_are_dense_unbounded_sparse() {
        // dep_delay spans [5, 15]: width 10 reaches buckets {0, 1} → dense.
        let plan = CompiledPlan::compile(&denorm(), &width_query(10.0)).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Dense(2));

        // A width so fine the reachable bucket count blows past the cap
        // keeps the hashed store.
        let plan = CompiledPlan::compile(&denorm(), &width_query(1e-4)).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Sparse);
    }

    #[test]
    fn extreme_value_ranges_stay_sparse_without_overflow() {
        // Finite but astronomically spread values: bucket indices exceed
        // every integer range. Planning must fall back to the hashed store
        // instead of panicking on an integer-cast overflow.
        let mut b = TableBuilder::with_fields("flights", &[("x", DataType::Float)]);
        b.push_row(&[(-1e40).into()]).unwrap();
        b.push_row(&[1e40.into()]).unwrap();
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "x".into(),
                width: 1.0,
                anchor: 0.0,
            }],
            vec![AggregateSpec::count()],
        );
        let plan = CompiledPlan::compile(&ds, &Query::for_viz(&spec, None)).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Sparse);
    }

    #[test]
    fn dense_width_origin_offsets_negative_buckets() {
        // Values in [5, 15] with width 2 → buckets 2..=7, origin lo = 2.
        let q = width_query(2.0);
        let plan = CompiledPlan::compile(&denorm(), &q).unwrap();
        assert_eq!(plan.acc_mode(), AccMode::Dense(6));
        match &plan.dims[0] {
            PlannedDim::Width { dense, .. } => {
                assert_eq!(*dense, Some(DenseWidth { lo: 2, len: 6 }));
            }
            other => panic!("expected width dim, got {other:?}"),
        }
    }

    #[test]
    fn two_d_mixed_nominal_bucket_is_dense() {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![
                BinDef::Nominal {
                    dimension: "carrier".into(),
                },
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
            ],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(&spec, None);
        let plan = CompiledPlan::compile(&denorm(), &q).unwrap();
        // 2 carriers × 2 reachable buckets.
        assert_eq!(plan.acc_mode(), AccMode::Dense(4));
    }

    #[test]
    fn in_filter_compiles_to_membership_table() {
        let q = Query::for_viz(
            &VizSpec::new(
                "v",
                "flights",
                vec![BinDef::Nominal {
                    dimension: "carrier".into(),
                }],
                vec![AggregateSpec::count()],
            ),
            Some(FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["AA".into(), "ZZ".into()],
            })),
        );
        let plan = CompiledPlan::compile(&denorm(), &q).unwrap();
        match plan.filter.as_ref().unwrap() {
            PlannedFilter::In { member, .. } => {
                assert_eq!(member, &[true, false]); // AA yes, DL no, ZZ absent
            }
            other => panic!("expected In, got {other:?}"),
        }
    }

    #[test]
    fn invalid_definitions_rejected() {
        let bad_nominal = Query::for_viz(
            &VizSpec::new(
                "v",
                "flights",
                vec![BinDef::Nominal {
                    dimension: "dep_delay".into(),
                }],
                vec![AggregateSpec::count()],
            ),
            None,
        );
        assert!(CompiledPlan::compile(&denorm(), &bad_nominal).is_err());

        let bad_width = Query::for_viz(
            &VizSpec::new(
                "v",
                "flights",
                vec![BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 0.0,
                    anchor: 0.0,
                }],
                vec![AggregateSpec::count()],
            ),
            None,
        );
        assert!(CompiledPlan::compile(&denorm(), &bad_width).is_err());
    }

    #[test]
    fn compilation_counter_advances() {
        let before = plan_compilations();
        let _ = CompiledPlan::compile(&denorm(), &nominal_query()).unwrap();
        assert!(plan_compilations() > before);
    }
}
