//! Markov-chain workflow generation (paper §4.3).
//!
//! "The workflow generator models workflows as Markov Chains with
//! pre-defined (and customizable) probability distributions for each of the
//! workflow types to sample a sequence of interactions and filter/selection
//! criteria."
//!
//! Every emitted interaction is *valid by construction*: the generator
//! mirrors the driver's visualization-graph state, so created names are
//! unique, links are acyclic, and selections always fit the source viz's
//! binning. An invalid candidate action falls back to the next feasible
//! one, keeping workflow length exact.

use crate::profile::{DataProfile, DimensionProfile};
use crate::{Workflow, WorkflowType};
use idebench_core::spec::{
    AggFunc, AggregateSpec, BinDef, FilterExpr, Predicate, SelCoord, Selection,
};
use idebench_core::{Interaction, VizSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunable probabilities of the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Probability that a new viz bins two dimensions (2D plot).
    pub two_d_prob: f64,
    /// Aggregate mix as `(count-only, sum-only, avg-only, count+avg)`
    /// weights; the default reproduces the paper's XDB observation that
    /// roughly two thirds of workload queries are not online-eligible.
    pub agg_weights: [f64; 4],
    /// Maximum bins per brushed selection.
    pub max_selected_bins: usize,
    /// Maximum predicates per filter interaction.
    pub max_filter_predicates: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            two_d_prob: 0.2,
            agg_weights: [0.24, 0.04, 0.44, 0.28],
            max_selected_bins: 3,
            max_filter_predicates: 2,
        }
    }
}

/// Generates workflows of a given [`WorkflowType`].
#[derive(Debug, Clone)]
pub struct WorkflowGenerator {
    kind: WorkflowType,
    seed: u64,
    profile: DataProfile,
    config: GeneratorConfig,
}

/// Internal action alphabet of the Markov chain.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    Create,
    Filter,
    Select,
    Link,
    Discard,
}

/// The generator's mirror of one live viz.
#[derive(Debug, Clone)]
struct VizState {
    name: String,
    binning: Vec<BinDef>,
    /// Outgoing link targets (indexes into `vizs`).
    targets: Vec<usize>,
    /// Whether any link touches this viz.
    linked: bool,
}

impl WorkflowGenerator {
    /// A generator over the default flights profile.
    pub fn new(kind: WorkflowType, seed: u64) -> Self {
        Self::with_profile(
            kind,
            seed,
            DataProfile::flights(),
            GeneratorConfig::default(),
        )
    }

    /// A generator over a custom profile/config (paper §3.2
    /// "Customizability").
    pub fn with_profile(
        kind: WorkflowType,
        seed: u64,
        profile: DataProfile,
        config: GeneratorConfig,
    ) -> Self {
        assert!(
            !profile.dimensions.is_empty(),
            "profile needs at least one dimension"
        );
        WorkflowGenerator {
            kind,
            seed,
            profile,
            config,
        }
    }

    /// Generates one workflow with exactly `len` interactions.
    pub fn generate(&self, len: usize) -> Workflow {
        self.generate_named(len, format!("{}_{}", self.kind.label(), self.seed))
    }

    /// Generates a batch of `count` workflows (the paper runs 10 per type).
    pub fn generate_batch(&self, count: usize, len: usize) -> Vec<Workflow> {
        (0..count)
            .map(|i| {
                let gen = WorkflowGenerator {
                    kind: self.kind,
                    seed: self
                        .seed
                        .wrapping_add(i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    profile: self.profile.clone(),
                    config: self.config.clone(),
                };
                gen.generate_named(len, format!("{}_{}", self.kind.label(), i))
            })
            .collect()
    }

    /// Generates one workflow with exactly `len` interactions under an
    /// explicit name (multi-session harnesses name workflows per session,
    /// e.g. `"s3_mixed"`).
    pub fn generate_named(&self, len: usize, name: String) -> Workflow {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut state = GenState {
            vizs: Vec::new(),
            counter: 0,
            hub: None,
        };
        let mut interactions = Vec::with_capacity(len);
        for step in 0..len {
            let kind = self.step_kind(&mut rng);
            let action = if step == 0 {
                Action::Create
            } else {
                self.sample_action(kind, &state, &mut rng)
            };
            let interaction = self.emit(action, kind, &mut state, &mut rng);
            interactions.push(interaction);
        }
        Workflow::new(name, self.kind, interactions)
    }

    /// For mixed workflows each step borrows one concrete pattern's
    /// transition profile; concrete types always use their own.
    fn step_kind(&self, rng: &mut StdRng) -> WorkflowType {
        if self.kind == WorkflowType::Mixed {
            match rng.random_range(0..4u32) {
                0 => WorkflowType::Independent,
                1 => WorkflowType::SequentialLinking,
                2 => WorkflowType::OneToN,
                _ => WorkflowType::NToOne,
            }
        } else {
            self.kind
        }
    }

    /// Markov transition weights per pattern:
    /// `[create, filter, select, link, discard]`.
    fn weights(kind: WorkflowType) -> [f64; 5] {
        match kind {
            WorkflowType::Independent => [0.40, 0.53, 0.00, 0.00, 0.07],
            WorkflowType::SequentialLinking => [0.28, 0.15, 0.35, 0.22, 0.00],
            WorkflowType::OneToN => [0.32, 0.10, 0.33, 0.25, 0.00],
            WorkflowType::NToOne => [0.32, 0.10, 0.33, 0.25, 0.00],
            WorkflowType::Mixed => [0.35, 0.25, 0.20, 0.15, 0.05],
        }
    }

    fn sample_action(&self, kind: WorkflowType, state: &GenState, rng: &mut StdRng) -> Action {
        let w = Self::weights(kind);
        let order = [
            Action::Create,
            Action::Filter,
            Action::Select,
            Action::Link,
            Action::Discard,
        ];
        let total: f64 = w.iter().sum();
        let mut u = rng.random::<f64>() * total;
        let mut pick = Action::Create;
        for (i, action) in order.iter().enumerate() {
            if u < w[i] {
                pick = *action;
                break;
            }
            u -= w[i];
        }
        // Feasibility fallback chain.
        let feasible = |a: Action| self.feasible(a, kind, state);
        if feasible(pick) {
            return pick;
        }
        for a in [Action::Create, Action::Link, Action::Select, Action::Filter] {
            if feasible(a) {
                return a;
            }
        }
        Action::Create
    }

    fn feasible(&self, action: Action, kind: WorkflowType, state: &GenState) -> bool {
        match action {
            Action::Create => true,
            Action::Filter => !state.vizs.is_empty(),
            Action::Select => state.vizs.iter().any(|v| !v.targets.is_empty()),
            Action::Link => self.link_candidate(kind, state).is_some(),
            Action::Discard => state.vizs.iter().filter(|v| !v.linked).count() > 1,
        }
    }

    /// Picks the pattern-appropriate (source, target) pair for a new link.
    fn link_candidate(&self, kind: WorkflowType, state: &GenState) -> Option<(usize, usize)> {
        if state.vizs.len() < 2 {
            return None;
        }
        let hub = state.hub.unwrap_or(0);
        match kind {
            WorkflowType::Independent => None,
            WorkflowType::SequentialLinking => {
                // Chain: link the most recent unlinked viz onto the chain end.
                let end = state
                    .vizs
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.linked && v.targets.is_empty())
                    .map(|(i, _)| i)
                    .next_back()
                    .or(state.hub);
                let newcomer = state
                    .vizs
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| !v.linked && Some(*i) != end)
                    .map(|(i, _)| i)
                    .next_back()?;
                let end = end?;
                (end != newcomer).then_some((end, newcomer))
            }
            WorkflowType::OneToN => {
                // Hub fans out to an unlinked viz.
                let target = state
                    .vizs
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| !v.linked && *i != hub)
                    .map(|(i, _)| i)
                    .next_back()?;
                Some((hub, target))
            }
            WorkflowType::NToOne | WorkflowType::Mixed => {
                // A source feeds the hub (mixed reuses this shape; the
                // hub varies as vizs get created).
                let source = state
                    .vizs
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| !v.linked && *i != hub)
                    .map(|(i, _)| i)
                    .next_back()?;
                Some((source, hub))
            }
        }
    }

    fn emit(
        &self,
        action: Action,
        kind: WorkflowType,
        state: &mut GenState,
        rng: &mut StdRng,
    ) -> Interaction {
        match action {
            Action::Create => {
                let spec = self.sample_viz(state, rng);
                state.vizs.push(VizState {
                    name: spec.name.clone(),
                    binning: spec.binning.clone(),
                    targets: Vec::new(),
                    linked: false,
                });
                if state.hub.is_none() {
                    state.hub = Some(0);
                }
                Interaction::CreateViz { viz: spec }
            }
            Action::Filter => {
                let idx = rng.random_range(0..state.vizs.len());
                let filter = self.sample_filter(rng);
                Interaction::SetFilter {
                    viz: state.vizs[idx].name.clone(),
                    filter: Some(filter),
                }
            }
            Action::Select => {
                let candidates: Vec<usize> = state
                    .vizs
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.targets.is_empty())
                    .map(|(i, _)| i)
                    .collect();
                let idx = candidates[rng.random_range(0..candidates.len())];
                let selection = self.sample_selection(&state.vizs[idx].binning, rng);
                Interaction::Select {
                    viz: state.vizs[idx].name.clone(),
                    selection: Some(selection),
                }
            }
            Action::Link => {
                let (source, target) = self
                    .link_candidate(kind, state)
                    .expect("feasibility checked");
                state.vizs[source].targets.push(target);
                state.vizs[source].linked = true;
                state.vizs[target].linked = true;
                Interaction::Link {
                    source: state.vizs[source].name.clone(),
                    target: state.vizs[target].name.clone(),
                }
            }
            Action::Discard => {
                let candidates: Vec<usize> = state
                    .vizs
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.linked)
                    .map(|(i, _)| i)
                    .collect();
                let idx = candidates[rng.random_range(0..candidates.len())];
                let name = state.vizs[idx].name.clone();
                state.remove(idx);
                Interaction::Discard { viz: name }
            }
        }
    }

    fn sample_viz(&self, state: &mut GenState, rng: &mut StdRng) -> VizSpec {
        let name = format!("viz_{}", state.counter);
        state.counter += 1;

        let dims = if rng.random::<f64>() < self.config.two_d_prob {
            2
        } else {
            1
        };
        let mut binning = Vec::with_capacity(dims);
        let mut used: Vec<usize> = Vec::new();
        for _ in 0..dims {
            let di = loop {
                let di = rng.random_range(0..self.profile.dimensions.len());
                if !used.contains(&di) {
                    break di;
                }
            };
            used.push(di);
            binning.push(match &self.profile.dimensions[di] {
                DimensionProfile::Nominal { name, .. } => BinDef::Nominal {
                    dimension: name.clone(),
                },
                DimensionProfile::Quantitative {
                    name,
                    bin_width,
                    anchor,
                    ..
                } => BinDef::Width {
                    dimension: name.clone(),
                    width: *bin_width,
                    anchor: *anchor,
                },
            });
        }

        let measures = self.profile.measure_indexes();
        let measure_name = |rng: &mut StdRng| {
            let mi = measures[rng.random_range(0..measures.len())];
            self.profile.dimensions[mi].name().to_string()
        };
        let w = &self.config.agg_weights;
        let total: f64 = w.iter().sum();
        let u = rng.random::<f64>() * total;
        let aggregates = if u < w[0] {
            vec![AggregateSpec::count()]
        } else if u < w[0] + w[1] {
            vec![AggregateSpec::over(AggFunc::Sum, measure_name(rng))]
        } else if u < w[0] + w[1] + w[2] {
            vec![AggregateSpec::over(AggFunc::Avg, measure_name(rng))]
        } else {
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, measure_name(rng)),
            ]
        };

        VizSpec::new(name, self.profile.table.clone(), binning, aggregates)
    }

    fn sample_filter(&self, rng: &mut StdRng) -> FilterExpr {
        let n = rng.random_range(1..=self.config.max_filter_predicates);
        let mut preds = Vec::with_capacity(n);
        for _ in 0..n {
            let di = rng.random_range(0..self.profile.dimensions.len());
            preds.push(FilterExpr::Pred(match &self.profile.dimensions[di] {
                DimensionProfile::Nominal { name, categories } => {
                    let k = rng.random_range(1..=3usize.min(categories.len()));
                    let mut values = Vec::with_capacity(k);
                    for _ in 0..k {
                        let v = categories[rng.random_range(0..categories.len())].clone();
                        if !values.contains(&v) {
                            values.push(v);
                        }
                    }
                    Predicate::In {
                        column: name.clone(),
                        values,
                    }
                }
                DimensionProfile::Quantitative {
                    name,
                    bin_width,
                    min,
                    max,
                    ..
                } => {
                    let span = (max - min).max(*bin_width);
                    let width = bin_width * rng.random_range(1..=4) as f64;
                    let start = min + rng.random::<f64>() * (span - width).max(0.0);
                    Predicate::Range {
                        column: name.clone(),
                        min: start,
                        max: start + width,
                    }
                }
            }));
        }
        if preds.len() == 1 {
            preds.pop().expect("one predicate")
        } else {
            FilterExpr::And(preds)
        }
    }

    fn sample_selection(&self, binning: &[BinDef], rng: &mut StdRng) -> Selection {
        let nbins = rng.random_range(1..=self.config.max_selected_bins);
        let mut bins = Vec::with_capacity(nbins);
        for _ in 0..nbins {
            let mut coords = Vec::with_capacity(binning.len());
            for def in binning {
                coords.push(match def {
                    BinDef::Nominal { dimension } => {
                        let categories = self.categories_of(dimension);
                        SelCoord::Category(
                            categories[rng.random_range(0..categories.len())].clone(),
                        )
                    }
                    BinDef::Width {
                        dimension,
                        width,
                        anchor,
                    } => {
                        let (min, max) = self.range_of(dimension);
                        let lo = ((min - anchor) / width).floor() as i64;
                        let hi = ((max - anchor) / width).floor() as i64;
                        SelCoord::Bucket(rng.random_range(lo..=hi.max(lo)))
                    }
                    BinDef::Count { .. } => {
                        unreachable!("generator emits width binnings only")
                    }
                });
            }
            if !bins.contains(&coords) {
                bins.push(coords);
            }
        }
        Selection { bins }
    }

    fn categories_of(&self, dimension: &str) -> &[String] {
        for d in &self.profile.dimensions {
            if let DimensionProfile::Nominal { name, categories } = d {
                if name == dimension {
                    return categories;
                }
            }
        }
        panic!("unknown nominal dimension {dimension}");
    }

    fn range_of(&self, dimension: &str) -> (f64, f64) {
        for d in &self.profile.dimensions {
            if let DimensionProfile::Quantitative { name, min, max, .. } = d {
                if name == dimension {
                    return (*min, *max);
                }
            }
        }
        panic!("unknown quantitative dimension {dimension}");
    }
}

#[derive(Debug)]
struct GenState {
    vizs: Vec<VizState>,
    counter: usize,
    hub: Option<usize>,
}

impl GenState {
    fn remove(&mut self, idx: usize) {
        self.vizs.remove(idx);
        for v in &mut self.vizs {
            v.targets.retain(|&t| t != idx);
            for t in &mut v.targets {
                if *t > idx {
                    *t -= 1;
                }
            }
        }
        if let Some(h) = self.hub {
            if h == idx {
                self.hub = if self.vizs.is_empty() { None } else { Some(0) };
            } else if h > idx {
                self.hub = Some(h - 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::VizGraph;

    /// Replays a workflow through the driver's graph; panics on invalid
    /// interactions. Returns the number of triggered queries.
    fn replay(wf: &Workflow) -> usize {
        let mut graph = VizGraph::new();
        let mut queries = 0;
        for interaction in &wf.interactions {
            let affected = graph
                .apply(interaction)
                .unwrap_or_else(|e| panic!("{}: invalid interaction: {e}", wf.name));
            for name in &affected {
                graph.query_for(name).expect("query composes");
                queries += 1;
            }
        }
        queries
    }

    #[test]
    fn all_types_generate_valid_workflows() {
        for kind in WorkflowType::ALL {
            for seed in 0..8u64 {
                let wf = WorkflowGenerator::new(kind, seed).generate(20);
                assert_eq!(wf.interactions.len(), 20, "{kind:?}");
                let queries = replay(&wf);
                assert!(queries > 0, "{kind:?} produced no queries");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkflowGenerator::new(WorkflowType::Mixed, 7).generate(15);
        let b = WorkflowGenerator::new(WorkflowType::Mixed, 7).generate(15);
        assert_eq!(a, b);
        let c = WorkflowGenerator::new(WorkflowType::Mixed, 8).generate(15);
        assert_ne!(a, c);
    }

    #[test]
    fn independent_workflows_have_no_links() {
        for seed in 0..10u64 {
            let wf = WorkflowGenerator::new(WorkflowType::Independent, seed).generate(25);
            assert!(!wf
                .interactions
                .iter()
                .any(|i| matches!(i, Interaction::Link { .. })));
        }
    }

    #[test]
    fn linking_types_produce_links_and_selects() {
        for kind in [
            WorkflowType::SequentialLinking,
            WorkflowType::OneToN,
            WorkflowType::NToOne,
        ] {
            let mut links = 0;
            let mut selects = 0;
            for seed in 0..10u64 {
                let wf = WorkflowGenerator::new(kind, seed).generate(25);
                links += wf
                    .interactions
                    .iter()
                    .filter(|i| matches!(i, Interaction::Link { .. }))
                    .count();
                selects += wf
                    .interactions
                    .iter()
                    .filter(|i| matches!(i, Interaction::Select { .. }))
                    .count();
            }
            assert!(links > 5, "{kind:?}: too few links ({links})");
            assert!(selects > 5, "{kind:?}: too few selections ({selects})");
        }
    }

    #[test]
    fn one_to_n_links_fan_out_from_hub() {
        let wf = WorkflowGenerator::new(WorkflowType::OneToN, 3).generate(25);
        let sources: Vec<&str> = wf
            .interactions
            .iter()
            .filter_map(|i| match i {
                Interaction::Link { source, .. } => Some(source.as_str()),
                _ => None,
            })
            .collect();
        assert!(!sources.is_empty());
        assert!(
            sources.iter().all(|&s| s == sources[0]),
            "1:N links must share a source: {sources:?}"
        );
    }

    #[test]
    fn n_to_one_links_converge_on_hub() {
        let wf = WorkflowGenerator::new(WorkflowType::NToOne, 3).generate(25);
        let targets: Vec<&str> = wf
            .interactions
            .iter()
            .filter_map(|i| match i {
                Interaction::Link { target, .. } => Some(target.as_str()),
                _ => None,
            })
            .collect();
        assert!(!targets.is_empty());
        assert!(
            targets.iter().all(|&t| t == targets[0]),
            "N:1 links must share a target: {targets:?}"
        );
    }

    #[test]
    fn batch_generates_distinct_workflows() {
        let batch = WorkflowGenerator::new(WorkflowType::Mixed, 42).generate_batch(10, 18);
        assert_eq!(batch.len(), 10);
        for wf in &batch {
            assert_eq!(wf.interactions.len(), 18);
            replay(wf);
        }
        assert_ne!(batch[0].interactions, batch[1].interactions);
        assert_eq!(batch[3].name, "mixed_3");
    }

    #[test]
    fn agg_mix_matches_configured_weights() {
        // Count how many created vizs are online-eligible for XDB
        // (single COUNT or SUM): should be roughly 35% by default.
        let mut eligible = 0usize;
        let mut total = 0usize;
        for seed in 0..40u64 {
            let wf = WorkflowGenerator::new(WorkflowType::Mixed, seed).generate(20);
            for i in &wf.interactions {
                if let Interaction::CreateViz { viz } = i {
                    total += 1;
                    let single = viz.aggregates.len() == 1;
                    let kind_ok = matches!(viz.aggregates[0].func, AggFunc::Count | AggFunc::Sum);
                    if single && kind_ok {
                        eligible += 1;
                    }
                }
            }
        }
        let frac = eligible as f64 / total as f64;
        assert!(
            (0.25..=0.45).contains(&frac),
            "online-eligible fraction {frac:.2} outside expectation"
        );
    }

    #[test]
    fn selections_fit_source_binning() {
        for seed in 0..10u64 {
            let wf = WorkflowGenerator::new(WorkflowType::OneToN, seed).generate(25);
            // Track binnings by viz name.
            let mut binnings: std::collections::HashMap<String, Vec<BinDef>> = Default::default();
            for i in &wf.interactions {
                match i {
                    Interaction::CreateViz { viz } => {
                        binnings.insert(viz.name.clone(), viz.binning.clone());
                    }
                    Interaction::Select {
                        viz,
                        selection: Some(sel),
                    } => {
                        let binning = &binnings[viz];
                        for bin in &sel.bins {
                            assert_eq!(bin.len(), binning.len());
                            for (coord, def) in bin.iter().zip(binning) {
                                match (coord, def) {
                                    (SelCoord::Category(_), BinDef::Nominal { .. }) => {}
                                    (SelCoord::Bucket(_), BinDef::Width { .. }) => {}
                                    other => panic!("selection/binning mismatch: {other:?}"),
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn custom_profile_is_respected() {
        let profile = DataProfile {
            table: "patients".into(),
            dimensions: vec![
                DimensionProfile::Nominal {
                    name: "ward".into(),
                    categories: vec!["ICU".into(), "ER".into()],
                },
                DimensionProfile::Quantitative {
                    name: "age".into(),
                    bin_width: 10.0,
                    anchor: 0.0,
                    min: 0.0,
                    max: 100.0,
                    measure: true,
                },
            ],
        };
        let gen = WorkflowGenerator::with_profile(
            WorkflowType::Independent,
            1,
            profile,
            GeneratorConfig::default(),
        );
        let wf = gen.generate(12);
        for i in &wf.interactions {
            if let Interaction::CreateViz { viz } = i {
                assert_eq!(viz.source, "patients");
                for b in &viz.binning {
                    assert!(["ward", "age"].contains(&b.dimension()));
                }
            }
        }
    }
}
