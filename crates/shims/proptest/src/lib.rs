//! In-repo shim for the `proptest` crate (see `crates/shims/`): the
//! `proptest!` macro, `prop_assert*` macros, `any::<T>()`, range and
//! regex-lite string strategies, tuple/collection combinators, and
//! `prop_map` — enough to run this workspace's property tests.
//!
//! Cases are generated from a deterministic per-test seed (override with
//! `PROPTEST_SEED`); there is no shrinking — failures report the case index
//! and seed so a run can be reproduced exactly.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Fails the case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

// ------------------------------------------------------------------- RNG

/// The deterministic generator driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for the given seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// -------------------------------------------------------------- strategy

/// A recipe producing random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T` (`any::<T>()`).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mix of magnitudes, finite only (mirrors common proptest usage).
        let exp = rng.below(61) as i32 - 30;
        (rng.unit_f64() * 2.0 - 1.0) * 10f64.powi(exp)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xd800) as u32).unwrap_or('a')
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        *self.start() + rng.unit_f64() * (*self.end() - *self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// ------------------------------------------------- regex-lite string strategy

/// `&str` strategies: a small regex subset — literals, `[a-z0-9_]` classes,
/// and `{m,n}` / `{n}` / `?` / `+` / `*` quantifiers (unbounded capped at 8).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a char class or a literal character.
        let class: Vec<(char, char)> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern}"));
            let mut ranges = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    ranges.push((chars[j], chars[j + 2]));
                    j += 3;
                } else {
                    ranges.push((chars[j], chars[j]));
                    j += 1;
                }
            }
            i = close + 1;
            ranges
        } else {
            let c = if chars[i] == '\\' {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![(c, c)]
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("quantifier min"),
                    n.trim().parse::<usize>().expect("quantifier max"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            let (lo, hi) = class[rng.below(class.len() as u64) as usize];
            let offset = rng.below((hi as u32 - lo as u32 + 1) as u64) as u32;
            out.push(char::from_u32(lo as u32 + offset).expect("class char"));
        }
    }
    out
}

// -------------------------------------------------------------- collections

/// Size bounds for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max_inclusive - self.min + 1) as u64) as usize
    }
}

/// The `prop::` namespace, as re-exported by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{SizeRange, Strategy, TestRng};

        /// A `Vec` of values from `element`, sized within `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `BTreeMap` with keys from `key`, values from `value`, sized
        /// within `size` (best effort under key collisions).
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V> {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        /// See [`btree_map`].
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = std::collections::BTreeMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.pick(rng);
                let mut map = std::collections::BTreeMap::new();
                for _ in 0..target * 3 {
                    if map.len() >= target {
                        break;
                    }
                    map.insert(self.key.generate(rng), self.value.generate(rng));
                }
                map
            }
        }
    }
}

// ------------------------------------------------------------------ runner

/// Drives one property: runs `cases` generated inputs through `f`, panicking
/// with the case index and seed on the first failure.
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut f: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x1de_bec4);
    for case in 0..config.cases {
        // Stable per-case seed so any failure is reproducible in isolation.
        let mut hash = base_seed ^ 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let seed = hash.wrapping_add(u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut rng = TestRng::new(seed);
        if let Err(e) = f(&mut rng) {
            panic!(
                "proptest `{test_name}` failed at case {case}/{} (PROPTEST_SEED={base_seed}): {e}",
                config.cases
            );
        }
    }
}

/// The items property tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Defines property tests: each function's arguments are drawn from the
/// given strategies for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__rng| {
                $crate::__proptest_bind! { __rng; $($params)* }
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __result
            });
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy` params.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $strat:expr) => {
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; mut $name:ident in $strat:expr, $($rest:tt)*) => {
        let mut $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind! { $rng; $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::run_cases;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0i64..=3, f in -2.0f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0..=3).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn collections_and_tuples(v in prop::collection::vec(any::<bool>(), 1..20),
                                  m in prop::collection::btree_map(0i64..50, 0.0f64..1.0, 1..10),
                                  t in (any::<u32>(), "[a-z]{1,6}")) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(!m.is_empty() && m.len() < 10);
            prop_assert!(!t.1.is_empty() && t.1.len() <= 6);
            prop_assert!(t.1.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn prop_map_transforms(mut doubled in (1u32..100).prop_map(|x| x * 2)) {
            doubled += 0; // exercise `mut` binding
            prop_assert!(doubled % 2 == 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(any::<u64>(), 3..10);
        let a = Strategy::generate(&strat, &mut TestRng::new(9));
        let b = Strategy::generate(&strat, &mut TestRng::new(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        run_cases(ProptestConfig::with_cases(5), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
