//! The benchmark driver (paper §4.4).
//!
//! Two execution paths share the driver's accounting, bit for bit:
//!
//! - the **service path** ([`WorkflowSession::step_service`],
//!   [`BenchmarkDriver::run_workflow_service`]) — sessions submit
//!   [`QueryOptions`]-tagged queries into one shared [`EngineService`] and
//!   drive the returned tickets; this is what every harness and experiment
//!   binary uses;
//! - the **legacy adapter path** ([`WorkflowSession::step_interaction`],
//!   [`BenchmarkDriver::run_workflow`]) — the paper's original
//!   one-adapter-per-driver shape, kept both as the migration reference
//!   (the service path is pinned bit-identical to it) and for driving a
//!   bare [`SystemAdapter`] without a service wrapper.
//!
//! The driver simulates a workflow against a [`SystemAdapter`]: it applies
//! each interaction to the visualization graph, fans the interaction out
//! into (possibly multiple concurrent) queries, enforces the time
//! requirement on every query, grants think-time to the adapter between
//! interactions, and records one [`QueryMeasurement`] per query.
//!
//! Concurrency model: queries triggered by the same interaction run in
//! parallel *lanes*, each with the full time-requirement budget — matching
//! the paper's 20-core testbed where a handful of concurrent queries do not
//! contend (its Exp 4 found no significant concurrency effect). Under
//! virtual execution the interaction's elapsed time is the slowest lane.
//!
//! Orthogonally to the lane model, each engine may parallelize a *single*
//! query's scan over [`Settings::effective_workers`] worker threads
//! (intra-query morsel dispatch). Fan-out engages per budget grant and only
//! when a grant carries at least one dispatch chunk of rows — so one-shot
//! scans (ground truth, wall-mode deadlines, large quanta) use the full
//! pool, while fine-grained virtual-time stepping at the default
//! `step_quantum` processes its small spans sequentially rather than paying
//! a thread round-trip per step. Either way it is a wall-clock concern
//! only: the virtual work-unit accounting the driver enforces is identical
//! for every worker count, as are query results bit for bit, so `workers`
//! never affects a report — only how fast it is produced.

use crate::adapter::{PrepStats, QueryHandle, SystemAdapter};
use crate::error::CoreError;
use crate::graph::VizGraph;
use crate::interaction::Interaction;
use crate::query::Query;
use crate::result::AggResult;
use crate::service::{EngineService, QueryOptions, QueryTicket, SessionId};
use crate::settings::{ExecutionMode, Settings};
use crate::spec::BinDef;
use idebench_storage::Dataset;
use rustc_hash::FxHashMap;
use std::time::Instant;

/// Provides exact results for metric evaluation.
///
/// Implemented by the `idebench-query` crate on top of the exact executor;
/// kept as a trait here so the benchmark core stays engine-agnostic.
pub trait GroundTruthProvider {
    /// The exact, complete result for `query`.
    fn ground_truth(&mut self, query: &Query) -> AggResult;
}

/// Everything a workflow expects to expose to the driver.
///
/// The `idebench-workflow` crate's `Workflow` implements this; tests can run
/// plain interaction slices through [`BenchmarkDriver::run_interactions`].
pub trait RunnableWorkflow {
    /// Workflow name (report column `workflow`).
    fn workflow_name(&self) -> &str;
    /// Workflow type label (e.g. `"mixed"`, `"1n_linking"`).
    fn workflow_kind(&self) -> &str;
    /// The interaction sequence.
    fn interactions(&self) -> &[Interaction];
}

/// Measurement for a single executed query (one detailed-report row).
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// Sequential query id within the workflow run.
    pub query_id: usize,
    /// Index of the interaction that triggered the query.
    pub interaction_id: usize,
    /// The visualization the query refreshes.
    pub viz_name: String,
    /// The executed query (composed filter included).
    pub query: Query,
    /// Start timestamp, ms since workflow start (virtual or wall).
    pub start_ms: f64,
    /// End timestamp (completion or cancellation at the TR), ms.
    pub end_ms: f64,
    /// Whether the time requirement was violated (no fetchable result at TR).
    pub tr_violated: bool,
    /// The snapshot taken at the TR (or at completion), if any.
    pub result: Option<AggResult>,
    /// How many queries the triggering interaction issued concurrently.
    pub concurrent: usize,
}

/// The outcome of running one workflow against one system.
#[derive(Debug, Clone)]
pub struct WorkflowOutcome {
    /// System (adapter) name.
    pub system: String,
    /// Workflow name.
    pub workflow_name: String,
    /// Workflow type label.
    pub workflow_kind: String,
    /// Settings the run used.
    pub settings: Settings,
    /// Data-preparation cost reported by the adapter.
    pub prep: PrepStats,
    /// One measurement per executed query, in execution order.
    pub query_results: Vec<QueryMeasurement>,
    /// Total virtual/wall ms the workflow took (queries + think time).
    pub total_ms: f64,
}

/// The IDEBench benchmark driver.
#[derive(Debug, Clone)]
pub struct BenchmarkDriver {
    settings: Settings,
}

impl BenchmarkDriver {
    /// Creates a driver with the given settings.
    pub fn new(settings: Settings) -> Self {
        BenchmarkDriver { settings }
    }

    /// The driver's settings.
    pub fn settings(&self) -> &Settings {
        &self.settings
    }

    /// Prepares the adapter and runs a full workflow.
    pub fn run_workflow(
        &self,
        adapter: &mut dyn SystemAdapter,
        dataset: &Dataset,
        workflow: &impl RunnableWorkflow,
    ) -> Result<WorkflowOutcome, CoreError> {
        self.run_interactions(
            adapter,
            dataset,
            workflow.workflow_name(),
            workflow.workflow_kind(),
            workflow.interactions(),
        )
    }

    /// Runs a full workflow as session 0 of a shared
    /// [`EngineService`] — the service-path twin of
    /// [`BenchmarkDriver::run_workflow`], bit-identical to it for every
    /// in-repo engine (pinned by the `service_semantics` differential
    /// proptest).
    pub fn run_workflow_service(
        &self,
        service: &dyn EngineService,
        dataset: &Dataset,
        workflow: &impl RunnableWorkflow,
    ) -> Result<WorkflowOutcome, CoreError> {
        self.run_interactions_service(
            service,
            dataset,
            workflow.workflow_name(),
            workflow.workflow_kind(),
            workflow.interactions(),
        )
    }

    /// Runs a raw interaction sequence as session 0 of a shared service.
    pub fn run_interactions_service(
        &self,
        service: &dyn EngineService,
        dataset: &Dataset,
        workflow_name: &str,
        workflow_kind: &str,
        interactions: &[Interaction],
    ) -> Result<WorkflowOutcome, CoreError> {
        let mut session = WorkflowSession::new(self.settings.clone());
        let prep = service.open_session(session.session_id(), dataset, &self.settings)?;
        for interaction in interactions {
            session.step_service(service, dataset, interaction)?;
        }
        service.close_session(session.session_id());
        Ok(session.into_outcome(service.name(), workflow_name, workflow_kind, prep))
    }

    /// Prepares the adapter and runs a raw interaction sequence.
    pub fn run_interactions(
        &self,
        adapter: &mut dyn SystemAdapter,
        dataset: &Dataset,
        workflow_name: &str,
        workflow_kind: &str,
        interactions: &[Interaction],
    ) -> Result<WorkflowOutcome, CoreError> {
        let prep = adapter.prepare(dataset, &self.settings)?;
        adapter.workflow_start();
        let mut session = WorkflowSession::new(self.settings.clone());
        for interaction in interactions {
            session.step_interaction(adapter, dataset, interaction)?;
        }
        adapter.workflow_end();
        Ok(session.into_outcome(adapter.name(), workflow_name, workflow_kind, prep))
    }
}

/// Resumable execution state of one workflow run — one simulated analyst.
///
/// [`BenchmarkDriver::run_interactions`] drives a session straight through;
/// multi-session harnesses (the `idebench-fleet` crate) keep several
/// sessions alive at once and interleave [`WorkflowSession::step_service`]
/// calls on a shared virtual clock, all submitting into one shared
/// [`EngineService`]. The session owns everything one analyst's run
/// accumulates — viz graph, binning-range cache, measurements, virtual
/// clock — and *nothing else*: engine state lives behind the service, keyed
/// by the session's [`SessionId`].
#[derive(Debug)]
pub struct WorkflowSession {
    settings: Settings,
    session_id: SessionId,
    graph: VizGraph,
    ranges: ColumnRanges,
    measurements: Vec<QueryMeasurement>,
    clock_ms: f64,
    query_id: usize,
    interactions_run: usize,
}

impl WorkflowSession {
    /// Creates an empty session at virtual time 0 (session id 0 — the
    /// single-analyst default).
    pub fn new(settings: Settings) -> Self {
        WorkflowSession::for_session(settings, 0)
    }

    /// Creates an empty session with an explicit service session id.
    pub fn for_session(settings: Settings, session_id: SessionId) -> Self {
        WorkflowSession {
            settings,
            session_id,
            graph: VizGraph::new(),
            ranges: ColumnRanges::default(),
            measurements: Vec::new(),
            clock_ms: 0.0,
            query_id: 0,
            interactions_run: 0,
        }
    }

    /// The session's settings.
    pub fn settings(&self) -> &Settings {
        &self.settings
    }

    /// The id this session submits under on a shared service.
    pub fn session_id(&self) -> SessionId {
        self.session_id
    }

    /// Virtual (or wall) ms elapsed since the session started.
    pub fn clock_ms(&self) -> f64 {
        self.clock_ms
    }

    /// Number of interactions the session has executed.
    pub fn interactions_run(&self) -> usize {
        self.interactions_run
    }

    /// Measurements recorded so far, in execution order.
    pub fn measurements(&self) -> &[QueryMeasurement] {
        &self.measurements
    }

    /// Executes the session's next interaction: applies it to the viz
    /// graph, drives every triggered query to completion or the TR budget,
    /// and advances the session clock past the interaction's think time.
    /// Returns the ms the interaction consumed (queries + think time).
    pub fn step_interaction(
        &mut self,
        adapter: &mut dyn SystemAdapter,
        dataset: &Dataset,
        interaction: &Interaction,
    ) -> Result<f64, CoreError> {
        let started_ms = self.clock_ms;
        let interaction_id = self.interactions_run;
        let affected = self.graph.apply(interaction)?;

        // Adapter notifications for non-query interactions. Queries are
        // resolved (count-binnings → widths) before they reach the
        // adapter so speculative fingerprints match later real queries.
        match interaction {
            Interaction::Link { source, target } => {
                let mut sq = self.graph.query_for(source)?;
                let mut tq = self.graph.query_for(target)?;
                resolve_count_binnings(&mut sq, dataset, &mut self.ranges)?;
                resolve_count_binnings(&mut tq, dataset, &mut self.ranges)?;
                adapter.on_link(&sq, &tq);
            }
            Interaction::Discard { viz } => adapter.on_discard(viz),
            _ => {}
        }

        // Build and submit one query per affected viz (concurrent lanes).
        let concurrent = affected.len();
        let mut lanes: Vec<(String, Query, Box<dyn QueryHandle>)> = Vec::with_capacity(concurrent);
        for name in &affected {
            let mut query = self.graph.query_for(name)?;
            resolve_count_binnings(&mut query, dataset, &mut self.ranges)?;
            let handle = adapter.submit(&query);
            lanes.push((name.clone(), query, handle));
        }

        // Drive each lane to completion or the TR budget. With a
        // nonzero contention penalty, k concurrent lanes each run at
        // 1/(1 + penalty·(k−1)) of full speed (same wall TR, less work).
        let slowdown =
            1.0 + self.settings.concurrency_penalty * concurrent.saturating_sub(1) as f64;
        let mut interaction_elapsed_ms = 0.0f64;
        for (viz_name, query, mut handle) in lanes {
            let (elapsed_ms, done) = self.drive_to_budget(handle.as_mut(), slowdown);
            let snapshot = handle.snapshot();
            let tr_violated = snapshot.is_none();
            debug_assert!(
                !(done && tr_violated),
                "a completed query must have a fetchable result"
            );
            interaction_elapsed_ms = interaction_elapsed_ms.max(elapsed_ms);
            self.measurements.push(QueryMeasurement {
                query_id: self.query_id,
                interaction_id,
                viz_name,
                query,
                start_ms: self.clock_ms,
                end_ms: self.clock_ms + elapsed_ms,
                tr_violated,
                result: snapshot,
                concurrent,
            });
            self.query_id += 1;
            // Dropping the handle cancels any remaining work.
        }

        self.clock_ms += interaction_elapsed_ms;

        // Think time: the user stares at the dashboard; the adapter may
        // speculate (paper §5.4 / Exp 3).
        if let Some(budget) = self.settings.think_budget_units() {
            adapter.on_think(budget);
        }
        self.clock_ms += self.settings.think_time_ms as f64;

        self.interactions_run += 1;
        Ok(self.clock_ms - started_ms)
    }

    /// Executes the session's next interaction against a shared
    /// [`EngineService`] — the service-path twin of
    /// [`WorkflowSession::step_interaction`], and the only path
    /// multi-session harnesses use: the session owns no engine, it submits
    /// tickets under its [`SessionId`] with the time requirement as the
    /// work-unit deadline and drives them through the service's scheduler.
    ///
    /// Accounting is bit-identical to the adapter path: lanes are
    /// submitted in affected-viz order and share one effective deadline,
    /// so the scheduler's `(deadline, session, ticket)` order funds them
    /// exactly as the legacy per-lane budget loop did.
    pub fn step_service(
        &mut self,
        service: &dyn EngineService,
        dataset: &Dataset,
        interaction: &Interaction,
    ) -> Result<f64, CoreError> {
        let started_ms = self.clock_ms;
        let interaction_id = self.interactions_run;
        let affected = self.graph.apply(interaction)?;

        // Service notifications for non-query interactions (queries are
        // resolved before they reach the engine, as in the adapter path).
        match interaction {
            Interaction::Link { source, target } => {
                let mut sq = self.graph.query_for(source)?;
                let mut tq = self.graph.query_for(target)?;
                resolve_count_binnings(&mut sq, dataset, &mut self.ranges)?;
                resolve_count_binnings(&mut tq, dataset, &mut self.ranges)?;
                service.on_link(self.session_id, &sq, &tq);
            }
            Interaction::Discard { viz } => service.on_discard(self.session_id, viz),
            _ => {}
        }

        // Submit one ticket per affected viz (concurrent lanes, each with
        // the full per-lane deadline budget).
        let concurrent = affected.len();
        let slowdown =
            1.0 + self.settings.concurrency_penalty * concurrent.saturating_sub(1) as f64;
        let deadline_units = match self.settings.tr_budget_units() {
            Some(budget) => (budget as f64 / slowdown).floor() as u64,
            None => u64::MAX, // wall mode: the driver enforces the deadline
        };
        let mut lanes: Vec<(String, Query, QueryTicket)> = Vec::with_capacity(concurrent);
        for name in &affected {
            let mut query = self.graph.query_for(name)?;
            resolve_count_binnings(&mut query, dataset, &mut self.ranges)?;
            let opts = QueryOptions::for_session(self.session_id)
                .with_deadline_units(deadline_units)
                .with_step_quantum(self.settings.step_quantum);
            let ticket = service.submit(&query, opts);
            lanes.push((name.clone(), query, ticket));
        }

        let mut interaction_elapsed_ms = 0.0f64;
        for (viz_name, query, ticket) in lanes {
            let (elapsed_ms, done) = self.drive_ticket(&ticket, slowdown);
            let snapshot = ticket.snapshot();
            let tr_violated = snapshot.is_none();
            debug_assert!(
                !(done && tr_violated),
                "a completed query must have a fetchable result"
            );
            interaction_elapsed_ms = interaction_elapsed_ms.max(elapsed_ms);
            self.measurements.push(QueryMeasurement {
                query_id: self.query_id,
                interaction_id,
                viz_name,
                query,
                start_ms: self.clock_ms,
                end_ms: self.clock_ms + elapsed_ms,
                tr_violated,
                result: snapshot,
                concurrent,
            });
            self.query_id += 1;
            // Dropping the ticket revokes any remaining work.
        }

        self.clock_ms += interaction_elapsed_ms;

        if let Some(budget) = self.settings.think_budget_units() {
            service.on_think(self.session_id, budget);
        }
        self.clock_ms += self.settings.think_time_ms as f64;

        self.interactions_run += 1;
        Ok(self.clock_ms - started_ms)
    }

    /// Drives one ticket to settlement within the time requirement.
    ///
    /// Virtual mode: the deadline is already encoded in the ticket's
    /// work-unit budget, so this just pumps the scheduler until the ticket
    /// settles. Wall mode: pumps until done or the wall deadline, then
    /// deadline-cancels. Returns `(elapsed_ms, done)` with `elapsed_ms`
    /// capped at the TR, mirroring `drive_to_budget`.
    fn drive_ticket(&self, ticket: &QueryTicket, slowdown: f64) -> (f64, bool) {
        match self.settings.execution {
            ExecutionMode::Virtual { .. } => {
                let status = ticket.drive();
                (
                    self.settings.units_to_ms(status.spent()) * slowdown,
                    status.is_done(),
                )
            }
            ExecutionMode::Wall => {
                let start = Instant::now();
                let deadline_ms = self.settings.time_requirement_ms as f64;
                loop {
                    let status = ticket.pump();
                    if status.is_settled() {
                        break;
                    }
                    if start.elapsed().as_secs_f64() * 1e3 >= deadline_ms {
                        ticket.expire();
                        break;
                    }
                }
                let elapsed = (start.elapsed().as_secs_f64() * 1e3).min(deadline_ms);
                (elapsed, ticket.status().is_done())
            }
        }
    }

    /// Finishes the session, packaging its measurements into a
    /// [`WorkflowOutcome`] (the caller supplies what the session does not
    /// track: adapter identity, workflow labels, preparation stats).
    pub fn into_outcome(
        self,
        system: &str,
        workflow_name: &str,
        workflow_kind: &str,
        prep: PrepStats,
    ) -> WorkflowOutcome {
        WorkflowOutcome {
            system: system.to_string(),
            workflow_name: workflow_name.to_string(),
            workflow_kind: workflow_kind.to_string(),
            settings: self.settings,
            prep,
            query_results: self.measurements,
            total_ms: self.clock_ms,
        }
    }

    /// Steps one query until done or the TR budget is exhausted.
    ///
    /// `slowdown ≥ 1` scales how much wall time each work unit costs
    /// (contention); the TR stays fixed, so the *work* budget shrinks.
    /// Returns `(elapsed_ms, done)`, where `elapsed_ms` is capped at the TR.
    fn drive_to_budget(&self, handle: &mut dyn QueryHandle, slowdown: f64) -> (f64, bool) {
        match self.settings.execution {
            ExecutionMode::Virtual { .. } => {
                let budget = (self
                    .settings
                    .tr_budget_units()
                    .expect("virtual mode has a unit budget") as f64
                    / slowdown)
                    .floor() as u64;
                let mut spent = 0u64;
                let mut done = false;
                while spent < budget {
                    let grant = self.settings.step_quantum.min(budget - spent);
                    let status = handle.step(grant);
                    // An engine must not overdraw its grant.
                    debug_assert!(status.units() <= grant, "engine overdrew step grant");
                    spent += status.units();
                    if status.is_done() {
                        done = true;
                        break;
                    }
                    if status.units() == 0 {
                        // Engine yields without progress: treat as stalled at
                        // the budget to avoid an infinite loop.
                        spent = budget;
                        break;
                    }
                }
                (self.settings.units_to_ms(spent) * slowdown, done)
            }
            ExecutionMode::Wall => {
                let start = Instant::now();
                let deadline_ms = self.settings.time_requirement_ms as f64;
                let mut done = false;
                loop {
                    let status = handle.step(self.settings.step_quantum);
                    if status.is_done() {
                        done = true;
                        break;
                    }
                    if start.elapsed().as_secs_f64() * 1e3 >= deadline_ms {
                        break;
                    }
                }
                let elapsed = (start.elapsed().as_secs_f64() * 1e3).min(deadline_ms);
                (elapsed, done)
            }
        }
    }
}

/// Cache of per-column `(min, max)` used to resolve [`BinDef::Count`]
/// binnings into concrete widths (paper §2.2: count-based binning "requires
/// a computation of the current minimum and maximum value").
///
/// Public so harnesses can replay workloads outside the driver (e.g. to
/// pre-compute ground truth) with identical binning resolution.
#[derive(Debug, Default)]
pub struct ColumnRanges {
    ranges: FxHashMap<String, (f64, f64)>,
}

impl ColumnRanges {
    /// The cached min/max of a column, backed by the column's own lazily
    /// cached statistics (`Column::numeric_min_max` — the same bounds the
    /// query planner uses for dense bucketed binning, shared across every
    /// session scanning the same dataset).
    pub fn min_max(&mut self, dataset: &Dataset, column: &str) -> Result<(f64, f64), CoreError> {
        if let Some(&r) = self.ranges.get(column) {
            return Ok(r);
        }
        let stats = match dataset {
            Dataset::Denormalized(t) => t.column(column)?.numeric_min_max(),
            Dataset::Star(s) => match s.fact().column(column) {
                Ok(c) => c.numeric_min_max(),
                Err(_) => {
                    let (_, dim) = s
                        .dimension_of_column(column)
                        .ok_or_else(|| CoreError::Storage(format!("unknown column {column}")))?;
                    dim.column(column)?.numeric_min_max()
                }
            },
        };
        let (min, max) = stats.ok_or_else(|| {
            CoreError::Storage(format!(
                "column {column} has no finite values to derive a bin range from"
            ))
        })?;
        self.ranges.insert(column.to_string(), (min, max));
        Ok((min, max))
    }
}

/// Rewrites every `Count` binning of `query` into an equivalent `Width`
/// binning over the column's observed `[min, max]`.
pub fn resolve_count_binnings(
    query: &mut Query,
    dataset: &Dataset,
    ranges: &mut ColumnRanges,
) -> Result<(), CoreError> {
    for idx in 0..query.binning().len() {
        if let BinDef::Count { dimension, bins } = query.binning()[idx].clone() {
            let (min, max) = ranges.min_max(dataset, &dimension)?;
            let nbins = bins.max(1) as f64;
            // Widen slightly so max falls inside the last bin rather than
            // spilling into bin `bins`.
            let width = ((max - min) / nbins).max(f64::MIN_POSITIVE) * (1.0 + 1e-12);
            // Through the invalidating setter: the rewrite must also drop
            // any canonical-key memo already read off the unresolved query.
            query.set_bin(
                idx,
                BinDef::Width {
                    dimension,
                    width,
                    anchor: min,
                },
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::StepStatus;
    use crate::result::{BinCoord, BinKey, BinStats};
    use crate::spec::{AggregateSpec, VizSpec};
    use idebench_storage::{DataType, TableBuilder};
    use std::sync::Arc;

    /// A toy adapter whose queries cost `cost_units` and return one bin.
    struct ToyAdapter {
        cost_units: u64,
        progressive: bool,
        prepared: bool,
        think_calls: Vec<u64>,
        discards: Vec<String>,
        links: usize,
    }

    impl ToyAdapter {
        fn new(cost_units: u64, progressive: bool) -> Self {
            ToyAdapter {
                cost_units,
                progressive,
                prepared: false,
                think_calls: Vec::new(),
                discards: Vec::new(),
                links: 0,
            }
        }
    }

    struct ToyHandle {
        remaining: u64,
        progressive: bool,
        done: bool,
    }

    impl QueryHandle for ToyHandle {
        fn step(&mut self, granted: u64) -> StepStatus {
            let used = granted.min(self.remaining);
            self.remaining -= used;
            if self.remaining == 0 {
                self.done = true;
                StepStatus::Done { units: used }
            } else {
                StepStatus::Running { units: used }
            }
        }

        fn snapshot(&self) -> Option<AggResult> {
            if self.done || self.progressive {
                let mut r = AggResult::empty_exact();
                r.insert(BinKey::d1(BinCoord::Cat(0)), BinStats::exact(vec![1.0]));
                Some(r)
            } else {
                None
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    impl SystemAdapter for ToyAdapter {
        fn name(&self) -> &str {
            "toy"
        }

        fn prepare(
            &mut self,
            _dataset: &Dataset,
            _settings: &Settings,
        ) -> Result<PrepStats, CoreError> {
            self.prepared = true;
            Ok(PrepStats {
                load_units: 7,
                ..Default::default()
            })
        }

        fn submit(&mut self, _query: &Query) -> Box<dyn QueryHandle> {
            Box::new(ToyHandle {
                remaining: self.cost_units,
                progressive: self.progressive,
                done: false,
            })
        }

        fn on_think(&mut self, budget_units: u64) {
            self.think_calls.push(budget_units);
        }

        fn on_discard(&mut self, viz_name: &str) {
            self.discards.push(viz_name.to_string());
        }

        fn on_link(&mut self, _s: &Query, _t: &Query) {
            self.links += 1;
        }
    }

    fn dataset() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..10 {
            b.push_row(&["AA".into(), (i as f64).into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn viz(name: &str) -> VizSpec {
        VizSpec::new(
            name,
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        )
    }

    fn settings() -> Settings {
        // TR = 1 virtual second at 1000 units/s → budget 1000 units.
        Settings::default()
            .with_time_requirement_ms(1_000)
            .with_think_time_ms(500)
            .with_execution(ExecutionMode::Virtual { work_rate: 1_000.0 })
    }

    #[test]
    fn fast_blocking_query_completes_within_tr() {
        let mut adapter = ToyAdapter::new(400, false);
        let driver = BenchmarkDriver::new(settings());
        let out = driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[Interaction::CreateViz { viz: viz("a") }],
            )
            .unwrap();
        assert_eq!(out.query_results.len(), 1);
        let m = &out.query_results[0];
        assert!(!m.tr_violated);
        assert!(m.result.is_some());
        assert!((m.end_ms - m.start_ms - 400.0).abs() < 1e-9);
        assert_eq!(out.prep.load_units, 7);
    }

    #[test]
    fn slow_blocking_query_violates_tr() {
        let mut adapter = ToyAdapter::new(5_000, false);
        let driver = BenchmarkDriver::new(settings());
        let out = driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[Interaction::CreateViz { viz: viz("a") }],
            )
            .unwrap();
        let m = &out.query_results[0];
        assert!(m.tr_violated);
        assert!(m.result.is_none());
        // Cancelled exactly at the TR.
        assert!((m.end_ms - m.start_ms - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn slow_progressive_query_still_delivers() {
        let mut adapter = ToyAdapter::new(5_000, true);
        let driver = BenchmarkDriver::new(settings());
        let out = driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[Interaction::CreateViz { viz: viz("a") }],
            )
            .unwrap();
        let m = &out.query_results[0];
        assert!(!m.tr_violated);
        assert!(m.result.is_some());
    }

    #[test]
    fn link_interaction_fans_out_concurrent_queries() {
        let mut adapter = ToyAdapter::new(100, false);
        let driver = BenchmarkDriver::new(settings());
        let interactions = vec![
            Interaction::CreateViz { viz: viz("src") },
            Interaction::CreateViz { viz: viz("t1") },
            Interaction::CreateViz { viz: viz("t2") },
            Interaction::Link {
                source: "src".into(),
                target: "t1".into(),
            },
            Interaction::Link {
                source: "src".into(),
                target: "t2".into(),
            },
            Interaction::SetFilter {
                viz: "src".into(),
                filter: None,
            },
        ];
        let out = driver
            .run_interactions(&mut adapter, &dataset(), "wf", "test", &interactions)
            .unwrap();
        // Last interaction refreshes src + t1 + t2 concurrently.
        let last: Vec<_> = out
            .query_results
            .iter()
            .filter(|m| m.interaction_id == 5)
            .collect();
        assert_eq!(last.len(), 3);
        assert!(last.iter().all(|m| m.concurrent == 3));
        assert_eq!(adapter.links, 2);
    }

    #[test]
    fn think_time_budget_granted_each_interaction() {
        let mut adapter = ToyAdapter::new(10, false);
        let driver = BenchmarkDriver::new(settings());
        driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[
                    Interaction::CreateViz { viz: viz("a") },
                    Interaction::CreateViz { viz: viz("b") },
                ],
            )
            .unwrap();
        // 500 ms think at 1000 units/s = 500 units, twice.
        assert_eq!(adapter.think_calls, vec![500, 500]);
    }

    #[test]
    fn clock_advances_with_queries_and_think_time() {
        let mut adapter = ToyAdapter::new(200, false);
        let driver = BenchmarkDriver::new(settings());
        let out = driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[
                    Interaction::CreateViz { viz: viz("a") },
                    Interaction::CreateViz { viz: viz("b") },
                ],
            )
            .unwrap();
        // Each interaction: 200 ms query + 500 ms think.
        assert!((out.total_ms - 2.0 * (200.0 + 500.0)).abs() < 1e-9);
        let second = &out.query_results[1];
        assert!((second.start_ms - 700.0).abs() < 1e-9);
    }

    #[test]
    fn discard_notifies_adapter_and_triggers_no_query() {
        let mut adapter = ToyAdapter::new(10, false);
        let driver = BenchmarkDriver::new(settings());
        let out = driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[
                    Interaction::CreateViz { viz: viz("a") },
                    Interaction::Discard { viz: "a".into() },
                ],
            )
            .unwrap();
        assert_eq!(out.query_results.len(), 1);
        assert_eq!(adapter.discards, vec!["a"]);
    }

    #[test]
    fn count_binning_resolved_against_data_range() {
        let mut adapter = ToyAdapter::new(10, false);
        let driver = BenchmarkDriver::new(settings());
        let spec = VizSpec::new(
            "q",
            "flights",
            vec![BinDef::Count {
                dimension: "dep_delay".into(),
                bins: 3,
            }],
            vec![AggregateSpec::count()],
        );
        let out = driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[Interaction::CreateViz { viz: spec }],
            )
            .unwrap();
        let q = &out.query_results[0].query;
        match &q.binning()[0] {
            BinDef::Width { width, anchor, .. } => {
                // data is 0..9 → min 0, max 9, 3 bins ⇒ width 3.
                assert!((anchor - 0.0).abs() < 1e-9);
                assert!((width - 3.0).abs() < 1e-6);
            }
            other => panic!("expected Width, got {other:?}"),
        }
    }

    #[test]
    fn service_path_matches_adapter_path_bit_for_bit() {
        let interactions = vec![
            Interaction::CreateViz { viz: viz("src") },
            Interaction::CreateViz { viz: viz("t1") },
            Interaction::Link {
                source: "src".into(),
                target: "t1".into(),
            },
            Interaction::SetFilter {
                viz: "src".into(),
                filter: None,
            },
            Interaction::Discard { viz: "t1".into() },
        ];
        let driver = BenchmarkDriver::new(settings());
        let ds = dataset();
        for cost in [100u64, 5_000] {
            let mut adapter = ToyAdapter::new(cost, false);
            let legacy = driver
                .run_interactions(&mut adapter, &ds, "wf", "test", &interactions)
                .unwrap();
            let service = crate::service::ServiceCore::shared_adapter(ToyAdapter::new(cost, false));
            let via_service = driver
                .run_interactions_service(&service, &ds, "wf", "test", &interactions)
                .unwrap();
            assert_eq!(legacy.total_ms, via_service.total_ms);
            assert_eq!(legacy.prep, via_service.prep);
            assert_eq!(legacy.query_results.len(), via_service.query_results.len());
            for (a, b) in legacy.query_results.iter().zip(&via_service.query_results) {
                assert_eq!(a.start_ms, b.start_ms);
                assert_eq!(a.end_ms, b.end_ms);
                assert_eq!(a.tr_violated, b.tr_violated);
                assert_eq!(a.result, b.result);
                assert_eq!(a.concurrent, b.concurrent);
            }
        }
    }

    #[test]
    fn service_path_forwards_think_and_discard_hooks() {
        // The shared-adapter bridge lets us observe hook traffic through a
        // raw pointer-free route: run, then inspect via a second run — here
        // we simply assert the run completes and the clock matches the
        // adapter path's arithmetic (hook forwarding is covered by the
        // bit-identity test above; this pins the think-time budget math).
        let driver = BenchmarkDriver::new(settings());
        let service = crate::service::ServiceCore::shared_adapter(ToyAdapter::new(200, false));
        let out = driver
            .run_interactions_service(
                &service,
                &dataset(),
                "wf",
                "test",
                &[
                    Interaction::CreateViz { viz: viz("a") },
                    Interaction::CreateViz { viz: viz("b") },
                ],
            )
            .unwrap();
        assert!((out.total_ms - 2.0 * (200.0 + 500.0)).abs() < 1e-9);
        assert_eq!(out.system, "toy");
    }

    #[test]
    fn unknown_viz_interaction_is_an_error() {
        let mut adapter = ToyAdapter::new(10, false);
        let driver = BenchmarkDriver::new(settings());
        let err = driver
            .run_interactions(
                &mut adapter,
                &dataset(),
                "wf",
                "test",
                &[Interaction::Discard {
                    viz: "ghost".into(),
                }],
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownViz(_)));
    }
}
