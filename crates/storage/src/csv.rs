//! Minimal CSV reader/writer for IDEBench tables.
//!
//! The paper's data-preparation experiment (§5.2) loads data from CSV files
//! into each system; this module provides the equivalent serialization. The
//! dialect is deliberately simple — comma-separated, no quoting — which is
//! sufficient because the flights dataset contains no embedded commas.

use crate::error::StorageError;
use crate::schema::{DataType, Field, Schema};
use crate::table::{Table, TableBuilder, Value};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Writes a table as a CSV document with one header line of `name:type`.
pub fn write_csv<W: Write>(table: &Table, out: W) -> Result<(), StorageError> {
    let mut w = BufWriter::new(out);
    let header: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| format!("{}:{}", f.name, f.dtype.name()))
        .collect();
    writeln!(w, "{}", header.join(","))?;
    let mut line = String::new();
    for row in 0..table.num_rows() {
        line.clear();
        for col in 0..table.num_columns() {
            if col > 0 {
                line.push(',');
            }
            match table.value_at(col, row) {
                Value::Float(x) => {
                    // Round-trippable float formatting.
                    line.push_str(&format!("{x}"));
                }
                Value::Int(x) => line.push_str(&format!("{x}")),
                Value::Str(s) => line.push_str(&s),
                Value::Null => {}
            }
        }
        writeln!(w, "{line}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a table from CSV produced by [`write_csv`] (header carries types).
pub fn read_csv<R: Read>(name: &str, input: R) -> Result<Table, StorageError> {
    let mut reader = BufReader::new(input);
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(StorageError::Csv {
            line: 1,
            message: "empty input".into(),
        });
    }
    let fields = header
        .trim_end()
        .split(',')
        .enumerate()
        .map(|(i, spec)| {
            let (name, ty) = spec.split_once(':').ok_or(StorageError::Csv {
                line: 1,
                message: format!("header field {i} missing ':type' suffix"),
            })?;
            let dtype = match ty {
                "float" => DataType::Float,
                "int" => DataType::Int,
                "nominal" => DataType::Nominal,
                other => {
                    return Err(StorageError::Csv {
                        line: 1,
                        message: format!("unknown type {other:?}"),
                    })
                }
            };
            Ok(Field::new(name, dtype))
        })
        .collect::<Result<Vec<_>, StorageError>>()?;
    let schema = Schema::new(fields);
    let ncols = schema.len();
    let dtypes: Vec<DataType> = schema.fields().iter().map(|f| f.dtype).collect();
    let mut builder = TableBuilder::new(name, schema);

    let mut line = String::new();
    let mut row: Vec<Value> = Vec::with_capacity(ncols);
    let mut lineno = 1usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim_end_matches(['\n', '\r']);
        if trimmed.is_empty() {
            continue;
        }
        row.clear();
        for (i, cell) in trimmed.split(',').enumerate() {
            if i >= ncols {
                return Err(StorageError::Csv {
                    line: lineno,
                    message: format!("too many fields (expected {ncols})"),
                });
            }
            let v = if cell.is_empty() {
                Value::Null
            } else {
                match dtypes[i] {
                    DataType::Float => {
                        Value::Float(cell.parse::<f64>().map_err(|e| StorageError::Csv {
                            line: lineno,
                            message: format!("bad float {cell:?}: {e}"),
                        })?)
                    }
                    DataType::Int => {
                        Value::Int(cell.parse::<i64>().map_err(|e| StorageError::Csv {
                            line: lineno,
                            message: format!("bad int {cell:?}: {e}"),
                        })?)
                    }
                    DataType::Nominal => Value::Str(cell.to_string()),
                }
            };
            row.push(v);
        }
        if row.len() != ncols {
            return Err(StorageError::Csv {
                line: lineno,
                message: format!("expected {ncols} fields, got {}", row.len()),
            });
        }
        builder.push_row(&row)?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
                ("distance", DataType::Int),
            ],
        );
        b.push_row(&["AA".into(), 5.25.into(), 300i64.into()])
            .unwrap();
        b.push_row(&["DL".into(), Value::Null, 900i64.into()])
            .unwrap();
        b.finish()
    }

    #[test]
    fn csv_roundtrip_preserves_table() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv("flights", buf.as_slice()).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.schema(), t.schema());
        assert_eq!(back.value_at(0, 0), Value::Str("AA".into()));
        assert_eq!(back.value_at(1, 0), Value::Float(5.25));
        assert_eq!(back.value_at(1, 1), Value::Null);
        assert_eq!(back.value_at(2, 1), Value::Int(900));
    }

    #[test]
    fn header_is_typed() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("carrier:nominal,dep_delay:float,distance:int\n"));
    }

    #[test]
    fn bad_float_reports_line() {
        let input = "x:float\n1.5\nnope\n";
        let err = read_csv("t", input.as_bytes()).unwrap_err();
        match err {
            StorageError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(read_csv("t", "".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let input = "x:int\n1\n\n2\n";
        let t = read_csv("t", input.as_bytes()).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn wrong_arity_rejected() {
        let input = "x:int,y:int\n1,2\n3\n";
        assert!(read_csv("t", input.as_bytes()).is_err());
        let input2 = "x:int\n1,2\n";
        assert!(read_csv("t", input2.as_bytes()).is_err());
    }
}
