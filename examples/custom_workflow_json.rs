//! Author a workflow as JSON (the paper's Figure-4 format), load it, view
//! it, translate its queries to SQL, and run it.
//!
//! ```sh
//! cargo run --release --example custom_workflow_json
//! ```

use idebench::prelude::*;
use idebench_query::{to_sql, CachedGroundTruth};
use std::sync::Arc;

const WORKFLOW_JSON: &str = r#"{
  "name": "figure4",
  "kind": "1n_linking",
  "interactions": [
    {
      "interaction": "create_viz",
      "viz": {
        "name": "viz_delays",
        "source": "flights",
        "binning": [
          { "type": "width", "dimension": "dep_delay", "width": 10.0, "anchor": 0.0 }
        ],
        "aggregates": [ { "type": "count" } ]
      }
    },
    {
      "interaction": "create_viz",
      "viz": {
        "name": "viz_carriers",
        "source": "flights",
        "binning": [ { "type": "nominal", "dimension": "carrier" } ],
        "aggregates": [ { "type": "avg", "dimension": "arr_delay" } ]
      }
    },
    { "interaction": "link", "source": "viz_carriers", "target": "viz_delays" },
    {
      "interaction": "select",
      "viz": "viz_carriers",
      "selection": { "bins": [ [ "C01" ] ] }
    }
  ]
}"#;

fn main() {
    let workflow = Workflow::from_json(WORKFLOW_JSON).expect("valid workflow JSON");
    println!("{}", workflow.render_text());

    // Show the Figure-4 style SQL translation of every triggered query.
    let table = idebench::datagen::flights::generate(100_000, 5);
    let dataset = Dataset::Denormalized(Arc::new(table));
    let mut graph = idebench::core::VizGraph::new();
    println!("SQL translation of triggered queries:");
    for interaction in &workflow.interactions {
        let affected = graph.apply(interaction).expect("valid interaction");
        for viz in &affected {
            let query = graph.query_for(viz).expect("query composes");
            println!("  [{}] {}", interaction.kind(), to_sql(&query, None));
        }
    }

    // And actually run it against the exact engine.
    let settings = Settings::default().with_time_requirement_ms(5_000);
    let driver = BenchmarkDriver::new(settings);
    let mut adapter = idebench::engine_exact::ExactAdapter::with_defaults();
    let outcome = driver
        .run_workflow(&mut adapter, &dataset, &workflow)
        .expect("workflow runs");
    let mut gt = CachedGroundTruth::new(dataset.clone());
    let report = DetailedReport::from_outcome(&outcome, &mut gt);
    println!("\n{}", SummaryReport::from_detailed(&report).render_text());
}
