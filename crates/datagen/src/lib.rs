//! The IDEBench data generator (paper §4.2).
//!
//! Three pieces:
//!
//! - [`flights`]: a synthetic seed generator for the paper's default
//!   dataset — U.S. domestic flights (Figure 2). The original benchmark
//!   downloads real BTS data; this reproduction synthesizes a seed with the
//!   same schema and the distribution features that matter to AQP engines:
//!   skewed categorical marginals (Zipf airports/carriers), heavy-tailed
//!   delays, bimodal departure times, and strong cross-attribute
//!   correlations (dep/arr delay, distance/air time).
//! - [`copula`]: the scaling procedure quoted from the paper: sample the
//!   seed, compute the covariance matrix Σ of normal scores, Cholesky-factor
//!   Σ = AᵀA, draw X ~ N(0, I), correlate X̃ = AX, map through Φ to uniforms
//!   and through each attribute's empirical inverse CDF to values.
//! - [`mod@normalize`]: vertical partitioning of a de-normalized table into a
//!   star schema given dimension specifications (paper: "transformation of
//!   data into a more normalized form based on a specification").
//!
//! Supporting numerics live in [`stats`] and [`matrix`].

pub mod copula;
pub mod flights;
pub mod matrix;
pub mod normalize;
pub mod orders;
pub mod stats;

pub use copula::CopulaScaler;
pub use flights::{generate, generate_seed, FLIGHTS_TABLE};
pub use normalize::{normalize, normalize_flights};
