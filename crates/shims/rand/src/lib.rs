//! In-repo shim for the `rand` crate (see `crates/shims/`), exposing the
//! rand-0.9-style surface this workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::random` / `Rng::random_range`, `rngs::StdRng`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed on every platform, which is all the benchmark requires (its
//! virtual-time experiments derive reproducibility from seeds, not from
//! matching upstream rand's stream).

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a deterministic generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the domain;
    /// `bool`: fair coin).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics when the range is empty.
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: IntoBounds<T>,
        Self: Sized,
    {
        let (lo, hi_inclusive) = range.into_bounds();
        T::sample_between(self, lo, hi_inclusive)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    #[inline]
    fn sample<R: RngCore>(rng: &mut R) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}

/// Types samplable by [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]` (both inclusive).
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform `u64` in `[0, span)` without modulo bias (Lemire multiply-shift
/// with rejection).
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the multiply-shift exact.
    let zone = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sampling range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain 64-bit range: every pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "empty sampling range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Range forms accepted by [`Rng::random_range`], normalized to inclusive
/// `(lo, hi)` bounds.
pub trait IntoBounds<T> {
    /// The inclusive bounds of the range.
    fn into_bounds(self) -> (T, T);
}

impl IntoBounds<f64> for std::ops::Range<f64> {
    #[inline]
    fn into_bounds(self) -> (f64, f64) {
        assert!(self.start < self.end, "empty sampling range");
        (self.start, self.end)
    }
}

impl IntoBounds<f64> for std::ops::RangeInclusive<f64> {
    #[inline]
    fn into_bounds(self) -> (f64, f64) {
        (*self.start(), *self.end())
    }
}

macro_rules! impl_into_bounds_int {
    ($($t:ty),*) => {$(
        impl IntoBounds<$t> for std::ops::Range<$t> {
            #[inline]
            fn into_bounds(self) -> ($t, $t) {
                assert!(self.start < self.end, "empty sampling range");
                (self.start, self.end - 1)
            }
        }
        impl IntoBounds<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn into_bounds(self) -> ($t, $t) {
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_into_bounds_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn random_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = rng.random_range(3..7u32);
            assert!((3..7).contains(&v));
            let w = rng.random_range(1..=4usize);
            assert!((1..=4).contains(&w));
            let x = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle moved something");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
