//! Quickstart: generate data, generate a workload, benchmark an engine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use idebench::prelude::*;
use idebench_query::CachedGroundTruth;
use std::sync::Arc;

fn main() {
    // 1. A small flights dataset (the paper's default data, §4.2).
    let table = idebench::datagen::flights::generate(200_000, 42);
    println!(
        "dataset: {} rows x {} columns",
        table.num_rows(),
        table.num_columns()
    );
    let dataset = Dataset::Denormalized(Arc::new(table));

    // 2. One mixed workflow of 12 interactions (§4.3).
    let workflow = WorkflowGenerator::new(WorkflowType::Mixed, 7).generate(12);
    println!("\n{}", workflow.render_text());

    // 3. Benchmark the progressive engine under a 500 ms time requirement.
    let settings = Settings::default()
        .with_time_requirement_ms(500)
        .with_think_time_ms(1_000);
    let driver = BenchmarkDriver::new(settings);
    let mut adapter = idebench::engine_progressive::ProgressiveAdapter::with_defaults();
    let outcome = driver
        .run_workflow(&mut adapter, &dataset, &workflow)
        .expect("workflow runs");

    // 4. Evaluate against exact ground truth and print the reports (§4.7/4.8).
    let mut gt = CachedGroundTruth::new(dataset.clone());
    let detailed = DetailedReport::from_outcome(&outcome, &mut gt);
    let summary = SummaryReport::from_detailed(&detailed);
    println!("{}", summary.render_text());
    println!(
        "first rows of the detailed report:\n{}",
        detailed
            .to_csv()
            .lines()
            .take(6)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
