//! The IDEA-class **progressive** engine (paper §2.3, refs 12 and 16).
//!
//! Behavioural contract, mirroring the paper's observations in §5.2:
//!
//! - **Online aggregation**: queries process the data in a pre-shuffled
//!   order, so any scan prefix is a uniform random sample. A snapshot can be
//!   polled at *any* time and returns scale-up estimates with confidence
//!   intervals; estimates converge to exact when the scan completes.
//! - **Result reuse** (paper ref 16): runs are cached by query fingerprint. A
//!   re-issued query (common in IDE workloads: linked vizs refresh
//!   repeatedly) resumes from its previous progress instead of starting
//!   over, so its first snapshot is already well-converged.
//! - **Warm-up**: the first query after a restart pays a one-time overhead —
//!   the reason the paper saw IDEA violate 1% of queries at TR=0.5 s.
//! - **Speculative execution** (Exp 3 extension): when two vizs are linked,
//!   the engine pre-executes the target query for every possible single-bin
//!   selection of the source viz, spending the *think-time* budget granted
//!   by the driver. A later actual selection then hits a pre-warmed run.
//! - **Star schemas**: the paper's IDEA rejected normalized data (§5.3
//!   excludes it from Exp 2); this reproduction goes further — the query
//!   core's join-devirtualization layer (shared fact-ordered
//!   materializations on [`idebench_storage::StarSchema`], per-plan join
//!   caches otherwise) lets progressive scans run star schemas at
//!   near-de-normalized speed, while the virtual cost model still charges
//!   every logical join, so normalized runs remain measurably costlier.

use idebench_core::{
    AggResult, BinCoord, BinDef, BinKey, CoreError, FilterExpr, Predicate, PrepStats, Query,
    QueryHandle, Settings, StepStatus, SystemAdapter,
};
use idebench_query::{ChunkedRun, CompiledPlan, SnapshotMode};
use idebench_storage::Dataset;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Cost-model and behaviour knobs for the progressive engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressiveConfig {
    /// Base per-row cost (online aggregation bookkeeping included).
    pub cost_base: f64,
    /// Additional cost per 4-byte unit of referenced column width.
    pub cost_per_width_unit: f64,
    /// Extra cost per filter-matching row (estimator updates).
    pub match_cost: f64,
    /// Load cost per row (IDEA "loads a fixed amount of tuples into main
    /// memory" at startup — 3 min for 500M in the paper, ~6× cheaper than
    /// MonetDB's CSV ingest).
    pub load_units_per_row: f64,
    /// One-time overhead paid by the first query after a restart, in
    /// (virtual) seconds; converted to work units at prepare time.
    pub first_query_warmup_s: f64,
    /// Whether re-issued queries resume cached progress.
    pub enable_reuse: bool,
    /// Whether linked vizs trigger speculative per-bin pre-execution.
    pub enable_speculation: bool,
    /// Cap on concurrently maintained speculative runs.
    pub max_speculative_runs: usize,
}

impl Default for ProgressiveConfig {
    fn default() -> Self {
        // Online aggregation pays for shuffled (cache-hostile) access and
        // per-tuple estimator maintenance, so its per-row cost exceeds the
        // exact engine's sequential scans — it wins on *snapshot
        // availability*, not raw throughput.
        ProgressiveConfig {
            cost_base: 0.60,
            cost_per_width_unit: 0.15,
            match_cost: 0.60,
            load_units_per_row: 0.15,
            first_query_warmup_s: 0.7,
            enable_reuse: true,
            enable_speculation: false,
            max_speculative_runs: 128,
        }
    }
}

impl ProgressiveConfig {
    /// Per-row work-unit cost for a compiled plan.
    pub fn row_cost(&self, plan: &CompiledPlan) -> f64 {
        self.cost_base + self.cost_per_width_unit * plan.width_units()
    }
}

type SharedRun = Arc<Mutex<ChunkedRun>>;

/// The progressive adapter ("progressive" in reports).
pub struct ProgressiveAdapter {
    config: ProgressiveConfig,
    dataset: Option<Dataset>,
    prep: PrepStats,
    shuffle: Option<Arc<Vec<u32>>>,
    z: f64,
    /// Fingerprint → shared run (reuse + speculation store).
    cache: FxHashMap<u64, SharedRun>,
    /// Which vizs currently reference a fingerprint (for memory release).
    owners: FxHashMap<u64, Vec<String>>,
    /// Speculative fingerprints pending think-time work, round-robin.
    speculative: VecDeque<u64>,
    first_query_issued: bool,
    warmup_units: u64,
    /// Scan worker-pool size, taken from the settings at prepare time.
    workers: usize,
}

impl ProgressiveAdapter {
    /// Creates the adapter with a custom configuration.
    pub fn new(config: ProgressiveConfig) -> Self {
        ProgressiveAdapter {
            config,
            dataset: None,
            prep: PrepStats::default(),
            shuffle: None,
            z: 1.96,
            cache: FxHashMap::default(),
            owners: FxHashMap::default(),
            speculative: VecDeque::new(),
            first_query_issued: false,
            warmup_units: 0,
            workers: 1,
        }
    }

    /// Creates the adapter with default calibration.
    pub fn with_defaults() -> Self {
        Self::new(ProgressiveConfig::default())
    }

    /// Creates the adapter with speculation enabled (Exp 3 configuration).
    pub fn with_speculation() -> Self {
        Self::new(ProgressiveConfig {
            enable_speculation: true,
            ..ProgressiveConfig::default()
        })
    }

    /// Hosts the progressive engine as a shared
    /// [`idebench_core::EngineService`]. Unlike the stateless engines, the
    /// progressive engine keeps *per-analyst* state (the reuse store,
    /// speculation rotation, first-query warm-up), so the service holds
    /// one engine instance per session — created lazily behind the
    /// service; sessions themselves own nothing.
    pub fn service(config: ProgressiveConfig) -> idebench_core::ServiceCore {
        idebench_core::ServiceCore::per_session_adapters("progressive", move |_| {
            Box::new(ProgressiveAdapter::new(config.clone()))
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &ProgressiveConfig {
        &self.config
    }

    /// Number of cached (reusable) runs, for tests and diagnostics.
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }

    /// Number of speculative runs awaiting think-time work.
    pub fn pending_speculative(&self) -> usize {
        self.speculative.len()
    }

    fn get_or_create_run(&mut self, query: &Query) -> Result<SharedRun, CoreError> {
        let fp = query.fingerprint();
        if self.config.enable_reuse {
            if let Some(run) = self.cache.get(&fp) {
                return Ok(Arc::clone(run));
            }
        }
        let dataset = self
            .dataset
            .as_ref()
            .expect("prepare() must run before submit()")
            .clone();
        // One compilation serves both the cost model and the entire scan.
        let plan = CompiledPlan::compile(&dataset, query)?;
        let cost = self.config.row_cost(&plan);
        let population = plan.num_rows() as u64;
        let mut run = ChunkedRun::from_plan(
            plan,
            self.shuffle.clone(),
            SnapshotMode::Estimate {
                z: self.z,
                population,
            },
        );
        run.set_row_cost(cost);
        run.set_match_cost(self.config.match_cost);
        run.set_workers(self.workers);
        let shared = Arc::new(Mutex::new(run));
        if self.config.enable_reuse || self.config.enable_speculation {
            self.cache.insert(fp, Arc::clone(&shared));
        }
        Ok(shared)
    }
}

impl SystemAdapter for ProgressiveAdapter {
    fn name(&self) -> &str {
        "progressive"
    }

    fn prepare(&mut self, dataset: &Dataset, settings: &Settings) -> Result<PrepStats, CoreError> {
        self.workers = settings.effective_workers();
        if let Some(existing) = &self.dataset {
            if existing.ptr_eq(dataset) {
                self.z = settings.z_value();
                self.warmup_units = settings.seconds_to_units(self.config.first_query_warmup_s);
                return Ok(self.prep);
            }
        }
        let rows = dataset.fact_rows();
        // Column min/max stats power the planner's dense bucketed binning;
        // warming them here keeps the O(rows) scan out of submit().
        dataset.warm_numeric_stats();
        let mut order: Vec<u32> = (0..rows as u32).collect();
        let mut rng = StdRng::seed_from_u64(settings.seed ^ 0x9e37_79b9);
        order.shuffle(&mut rng);
        self.shuffle = Some(Arc::new(order));
        self.z = settings.z_value();
        self.warmup_units = settings.seconds_to_units(self.config.first_query_warmup_s);
        self.prep = PrepStats {
            load_units: (rows as f64 * self.config.load_units_per_row).round() as u64,
            preprocess_units: 0,
            warmup_units: 0,
        };
        self.dataset = Some(dataset.clone());
        self.cache.clear();
        self.owners.clear();
        self.speculative.clear();
        self.first_query_issued = false;
        Ok(self.prep)
    }

    fn submit(&mut self, query: &Query) -> Box<dyn QueryHandle> {
        let run = self
            .get_or_create_run(query)
            .expect("driver-validated query binds against the dataset");
        let fp = query.fingerprint();
        self.owners
            .entry(fp)
            .or_default()
            .push(query.viz_name().to_string());
        // A query that was being speculated on is now real: stop granting it
        // think-time (the driver drives it directly).
        self.speculative.retain(|&f| f != fp);
        let warmup = if self.first_query_issued {
            0
        } else {
            self.first_query_issued = true;
            self.warmup_units
        };
        Box::new(ProgressiveHandle {
            run,
            warmup_remaining: warmup,
        })
    }

    fn on_link(&mut self, source_query: &Query, target_query: &Query) {
        if !self.config.enable_speculation {
            return;
        }
        let Some(dataset) = self.dataset.clone() else {
            return;
        };
        // The source's current (possibly partial) result tells us which bins
        // a user could select next.
        let Some(source_run) = self.cache.get(&source_query.fingerprint()) else {
            return;
        };
        let Some(snapshot) = source_run.lock().snapshot() else {
            return;
        };
        let mut keys: Vec<BinKey> = snapshot.bins.keys().cloned().collect();
        keys.sort();
        for key in keys {
            if self.speculative.len() + 1 > self.config.max_speculative_runs {
                break;
            }
            let Some(selection_filter) = bin_filter(&dataset, source_query.binning(), &key) else {
                continue;
            };
            let mut spec_query = target_query.clone();
            spec_query.compose_filter(selection_filter);
            let fp = spec_query.fingerprint();
            if self.cache.contains_key(&fp) {
                continue;
            }
            if self.get_or_create_run(&spec_query).is_ok() {
                self.speculative.push_back(fp);
            }
        }
    }

    fn on_think(&mut self, budget_units: u64) {
        if self.speculative.is_empty() {
            return;
        }
        let mut remaining = budget_units;
        let quantum = 16_384u64;
        // Round-robin the pending speculative runs until the budget is gone.
        while remaining > 0 {
            let Some(fp) = self.speculative.pop_front() else {
                break;
            };
            let Some(run) = self.cache.get(&fp) else {
                continue;
            };
            let grant = quantum.min(remaining);
            let mut guard = run.lock();
            let used = guard.advance(grant);
            let done = guard.is_done();
            drop(guard);
            remaining -= used.min(remaining);
            if !done && used > 0 {
                self.speculative.push_back(fp);
            }
            if used == 0 && done {
                continue; // completed run: drop from the rotation
            }
            if used == 0 && !done {
                // Cannot make progress with this grant size; avoid spinning.
                self.speculative.push_back(fp);
                break;
            }
        }
    }

    fn on_discard(&mut self, viz_name: &str) {
        let mut dead = Vec::new();
        for (fp, owners) in self.owners.iter_mut() {
            owners.retain(|o| o != viz_name);
            if owners.is_empty() {
                dead.push(*fp);
            }
        }
        for fp in dead {
            self.owners.remove(&fp);
            self.cache.remove(&fp);
            self.speculative.retain(|&f| f != fp);
        }
    }

    fn workflow_start(&mut self) {
        // A fresh workflow on a warm engine keeps its caches (the paper's
        // IDEA restarts only between *benchmark* runs, handled by prepare).
    }
}

/// Translates a result-bin key back into the filter a user's selection of
/// that bin would impose on linked vizs.
fn bin_filter(dataset: &Dataset, binning: &[BinDef], key: &BinKey) -> Option<FilterExpr> {
    if binning.len() != key.coords().len() {
        return None;
    }
    let mut conds = Vec::with_capacity(binning.len());
    for (def, coord) in binning.iter().zip(key.coords()) {
        let pred = match (def, coord) {
            (BinDef::Nominal { dimension }, BinCoord::Cat(code)) => {
                let col = idebench_query::ResolvedColumn::new(dataset, dimension).ok()?;
                let (_, dict) = col.column().as_nominal()?;
                Predicate::In {
                    column: dimension.clone(),
                    values: vec![dict.value(*code)?.to_string()],
                }
            }
            (
                BinDef::Width {
                    dimension,
                    width,
                    anchor,
                },
                BinCoord::Bucket(idx),
            ) => Predicate::Range {
                column: dimension.clone(),
                min: anchor + *idx as f64 * width,
                max: anchor + (*idx + 1) as f64 * width,
            },
            _ => return None,
        };
        conds.push(FilterExpr::Pred(pred));
    }
    Some(if conds.len() == 1 {
        conds.pop().expect("one condition")
    } else {
        FilterExpr::And(conds)
    })
}

struct ProgressiveHandle {
    run: SharedRun,
    warmup_remaining: u64,
}

impl QueryHandle for ProgressiveHandle {
    fn step(&mut self, granted: u64) -> StepStatus {
        let mut used = 0u64;
        if self.warmup_remaining > 0 {
            let pay = self.warmup_remaining.min(granted);
            self.warmup_remaining -= pay;
            used += pay;
        }
        let mut run = self.run.lock();
        if granted > used {
            used += run.advance(granted - used);
        }
        if run.is_done() {
            StepStatus::Done { units: used }
        } else {
            StepStatus::Running { units: used }
        }
    }

    fn snapshot(&self) -> Option<AggResult> {
        if self.warmup_remaining > 0 {
            return None;
        }
        self.run.lock().snapshot()
    }

    fn is_done(&self) -> bool {
        self.warmup_remaining == 0 && self.run.lock().is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggFunc, AggregateSpec};
    use idebench_core::VizSpec;
    use idebench_query::execute_exact;
    use idebench_storage::{DataType, TableBuilder};

    fn dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = match i % 5 {
                0 | 1 => "AA",
                2 | 3 => "DL",
                _ => "UA",
            };
            b.push_row(&[c.into(), ((i % 97) as f64).into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn count_query(name: &str) -> Query {
        let spec = VizSpec::new(
            name,
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    fn avg_query() -> Query {
        let spec = VizSpec::new(
            "v2",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        Query::for_viz(&spec, None)
    }

    fn warmless() -> ProgressiveConfig {
        ProgressiveConfig {
            first_query_warmup_s: 0.0,
            ..ProgressiveConfig::default()
        }
    }

    fn settings() -> Settings {
        Settings::default()
    }

    #[test]
    fn snapshot_available_after_first_chunk() {
        let ds = dataset(10_000);
        let mut adapter = ProgressiveAdapter::new(warmless());
        adapter.prepare(&ds, &settings()).unwrap();
        let mut h = adapter.submit(&count_query("v"));
        assert!(h.snapshot().is_none());
        h.step(2_000);
        let snap = h.snapshot().unwrap();
        assert!(!snap.exact);
        assert!(snap.processed_fraction > 0.0 && snap.processed_fraction < 1.0);
    }

    #[test]
    fn estimates_converge_to_exact() {
        let ds = dataset(5_000);
        let q = count_query("v");
        let mut adapter = ProgressiveAdapter::new(warmless());
        adapter.prepare(&ds, &settings()).unwrap();
        let mut h = adapter.submit(&q);
        let mut last_err = f64::INFINITY;
        let gt = execute_exact(&ds, &q).unwrap();
        let total_true: f64 = gt.bins.values().map(|b| b.values[0]).sum();
        for _ in 0..6 {
            h.step(400);
            let snap = h.snapshot().unwrap();
            let total_est: f64 = snap.bins.values().map(|b| b.values[0]).sum();
            let err = (total_est - total_true).abs();
            // Totals are estimated from a uniform prefix; error trends down.
            last_err = err;
        }
        while !h.is_done() {
            h.step(100_000);
        }
        let final_snap = h.snapshot().unwrap();
        assert!(final_snap.exact);
        assert_eq!(final_snap, gt);
        assert!(last_err.is_finite());
    }

    #[test]
    fn warmup_delays_first_query_only() {
        let ds = dataset(1_000);
        // 0.0005 s at the default 1M units/s rate = 500 warm-up units.
        let mut adapter = ProgressiveAdapter::new(ProgressiveConfig {
            first_query_warmup_s: 0.0005,
            ..ProgressiveConfig::default()
        });
        adapter.prepare(&ds, &settings()).unwrap();
        let mut h1 = adapter.submit(&count_query("v"));
        h1.step(400);
        assert!(h1.snapshot().is_none(), "still in warm-up");
        h1.step(400);
        assert!(h1.snapshot().is_some());
        // Second query pays no warm-up.
        let mut h2 = adapter.submit(&avg_query());
        h2.step(200);
        assert!(h2.snapshot().is_some());
    }

    #[test]
    fn reuse_resumes_previous_progress() {
        let ds = dataset(50_000);
        let q = count_query("v");
        let mut adapter = ProgressiveAdapter::new(warmless());
        adapter.prepare(&ds, &settings()).unwrap();
        let mut h1 = adapter.submit(&q);
        h1.step(20_000);
        let f1 = h1.snapshot().unwrap().processed_fraction;
        drop(h1);
        // Same query re-issued: picks up where it left off.
        let h2 = adapter.submit(&q);
        let f2 = h2.snapshot().unwrap().processed_fraction;
        assert!(f2 >= f1);
        assert!(f2 > 0.0);
        assert_eq!(adapter.cached_runs(), 1);
    }

    #[test]
    fn reuse_disabled_starts_fresh() {
        let ds = dataset(50_000);
        let q = count_query("v");
        let mut adapter = ProgressiveAdapter::new(ProgressiveConfig {
            enable_reuse: false,
            first_query_warmup_s: 0.0,
            ..ProgressiveConfig::default()
        });
        adapter.prepare(&ds, &settings()).unwrap();
        let mut h1 = adapter.submit(&q);
        h1.step(20_000);
        drop(h1);
        let h2 = adapter.submit(&q);
        assert!(h2.snapshot().is_none(), "fresh run has no progress");
    }

    #[test]
    fn star_schema_runs_to_the_exact_result() {
        use idebench_storage::{DimensionSpec, StarSchema, Value};
        // 300 fact rows over a 3-carrier dimension.
        let mut f = TableBuilder::with_fields(
            "flights",
            &[("dep_delay", DataType::Float), ("k", DataType::Int)],
        );
        for i in 0..300 {
            f.push_row(&[((i % 83) as f64).into(), ((i % 3) as i64).into()])
                .unwrap();
        }
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        for c in ["AA", "DL", "UA"] {
            d.push_row(&[Value::Str(c.into())]).unwrap();
        }
        let star = Dataset::Star(Arc::new(
            StarSchema::new(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "k", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
            )
            .unwrap(),
        ));
        let mut adapter = ProgressiveAdapter::with_defaults();
        adapter.prepare(&star, &settings()).unwrap();
        let mut h = adapter.submit(&count_query("v"));
        while !h.step(1_000_000).is_done() {}
        let snap = h.snapshot().unwrap();
        assert!(snap.exact, "completed full-population scan is exact");
        assert_eq!(
            snap,
            idebench_query::execute_exact(&star, &count_query("v")).unwrap()
        );
        // The join was devirtualized through the schema's shared cache.
        let stats = star.as_star().unwrap().join_cache_stats();
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn speculation_pre_executes_bin_selections() {
        let ds = dataset(100_000);
        let mut adapter = ProgressiveAdapter::with_speculation();
        adapter.prepare(&ds, &settings()).unwrap();

        // Run the source query a bit so its bins are known.
        let src = count_query("src");
        let mut h = adapter.submit(&src);
        h.step(1_000_000);
        drop(h);

        let target = avg_query();
        adapter.on_link(&src, &target);
        // Source has 3 carriers → 3 speculative runs.
        assert_eq!(adapter.pending_speculative(), 3);

        // Think time advances the speculative runs.
        adapter.on_think(60_000);

        // An actual selection on AA now matches a pre-warmed run.
        let mut selected = target.clone();
        selected.set_filter(Some(FilterExpr::Pred(Predicate::In {
            column: "carrier".into(),
            values: vec!["AA".into()],
        })));
        let h = adapter.submit(&selected);
        let snap = h.snapshot().expect("speculative progress is visible");
        assert!(snap.processed_fraction > 0.0);
        // Submitting removed it from the speculative rotation.
        assert_eq!(adapter.pending_speculative(), 2);
    }

    #[test]
    fn speculation_disabled_ignores_links() {
        let ds = dataset(10_000);
        let mut adapter = ProgressiveAdapter::new(warmless());
        adapter.prepare(&ds, &settings()).unwrap();
        let src = count_query("src");
        let mut h = adapter.submit(&src);
        h.step(50_000);
        drop(h);
        adapter.on_link(&src, &avg_query());
        assert_eq!(adapter.pending_speculative(), 0);
    }

    #[test]
    fn discard_releases_cached_runs() {
        let ds = dataset(10_000);
        let mut adapter = ProgressiveAdapter::new(warmless());
        adapter.prepare(&ds, &settings()).unwrap();
        let q = count_query("doomed");
        let _ = adapter.submit(&q);
        assert_eq!(adapter.cached_runs(), 1);
        adapter.on_discard("doomed");
        assert_eq!(adapter.cached_runs(), 0);
        // Discarding an unknown viz is a no-op.
        adapter.on_discard("ghost");
    }

    #[test]
    fn service_isolates_per_session_reuse_state() {
        use idebench_core::{EngineService, QueryOptions};
        let ds = dataset(50_000);
        let svc = ProgressiveAdapter::service(warmless());
        svc.open_session(0, &ds, &settings()).unwrap();
        svc.open_session(1, &ds, &settings()).unwrap();
        let q = count_query("v");
        // Session 0 makes partial progress, then re-submits: the reuse
        // store resumes its own progress.
        let t = svc.submit(&q, QueryOptions::for_session(0).with_step_quantum(20_000));
        t.pump();
        drop(t);
        let t = svc.submit(&q, QueryOptions::for_session(0));
        let resumed = t.snapshot().expect("resumed run has progress");
        assert!(resumed.processed_fraction > 0.0);
        drop(t);
        // Session 1's identical query starts fresh — reuse state is
        // per-analyst, never shared across sessions.
        let t = svc.submit(&q, QueryOptions::for_session(1));
        assert!(t.snapshot().is_none(), "no cross-session progress bleed");
    }

    #[test]
    fn bin_filter_roundtrip() {
        let ds = dataset(100);
        let binning = vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }];
        let f = bin_filter(&ds, &binning, &BinKey::d1(BinCoord::Cat(0))).unwrap();
        match f {
            FilterExpr::Pred(Predicate::In { column, values }) => {
                assert_eq!(column, "carrier");
                assert_eq!(values, vec!["AA".to_string()]);
            }
            other => panic!("unexpected filter {other:?}"),
        }
        // Quantitative bucket → range.
        let binning = vec![BinDef::Width {
            dimension: "dep_delay".into(),
            width: 10.0,
            anchor: 0.0,
        }];
        let f = bin_filter(&ds, &binning, &BinKey::d1(BinCoord::Bucket(3))).unwrap();
        match f {
            FilterExpr::Pred(Predicate::Range { min, max, .. }) => {
                assert_eq!(min, 30.0);
                assert_eq!(max, 40.0);
            }
            other => panic!("unexpected filter {other:?}"),
        }
        // Mismatched coordinate kind → None.
        assert!(bin_filter(&ds, &binning, &BinKey::d1(BinCoord::Cat(1))).is_none());
    }
}
