//! Columnar storage substrate for IDEBench.
//!
//! This crate provides the in-memory column store that all IDEBench query
//! engines operate on: typed columns (64-bit floats, 64-bit integers, and
//! dictionary-encoded nominal strings), immutable [`Table`]s with a
//! [`Schema`], star-schema datasets ([`StarSchema`], [`Dataset`]), selection
//! vectors ([`SelVec`]) used by vectorized predicate evaluation, and a plain
//! CSV reader/writer used by the data-preparation experiments.
//!
//! Design notes:
//! - Columns are append-only during construction (via [`TableBuilder`]) and
//!   immutable afterwards; engines share tables via `Arc`.
//! - Nominal (categorical) values are dictionary-encoded as dense `u32`
//!   codes, which makes group-by and filtering on categories cheap.
//! - Nulls are tracked with an optional validity bitmap; fully-valid columns
//!   carry no bitmap at all.

pub mod column;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod schema;
pub mod selection;
pub mod star;
pub mod table;

pub use column::{Column, ColumnData, ColumnSlice};
pub use csv::{read_csv, write_csv};
pub use dictionary::Dictionary;
pub use error::StorageError;
pub use schema::{DataType, Field, Schema};
pub use selection::SelVec;
pub use star::{Dataset, DimensionSpec, JoinCacheStats, StarSchema, DEFAULT_JOIN_CACHE_BYTES};
pub use table::{Table, TableBuilder, Value};
