//! Workflow viewer (the paper's "interactive viewer", terminal edition):
//! render a workflow JSON file — or a freshly generated one — as text,
//! optionally with the SQL each interaction would trigger.
//!
//! ```sh
//! cargo run -p idebench-bench --bin view_workflow -- --file wf.json --sql
//! cargo run -p idebench-bench --bin view_workflow -- --generate mixed --seed 7
//! ```

use idebench_core::VizGraph;
use idebench_query::to_sql;
use idebench_workflow::{Workflow, WorkflowGenerator, WorkflowType};
use std::path::PathBuf;

fn main() {
    let mut file: Option<PathBuf> = None;
    let mut generate: Option<String> = None;
    let mut seed = 7u64;
    let mut len = 18usize;
    let mut show_sql = false;
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--file" => file = iter.next().map(PathBuf::from),
            "--generate" => generate = iter.next(),
            "--seed" => seed = iter.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--len" => len = iter.next().and_then(|v| v.parse().ok()).unwrap_or(len),
            "--sql" => show_sql = true,
            _ => {
                eprintln!(
                    "usage: view_workflow (--file WF.json | --generate TYPE) \
                     [--seed N] [--len N] [--sql]"
                );
                std::process::exit(2);
            }
        }
    }

    let workflow: Workflow = match (file, generate) {
        (Some(path), _) => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            });
            Workflow::from_json(&text).unwrap_or_else(|e| {
                eprintln!("error: {}: {e}", path.display());
                std::process::exit(2);
            })
        }
        (None, Some(kind_name)) => {
            let kind = WorkflowType::ALL
                .into_iter()
                .find(|k| k.label() == kind_name)
                .unwrap_or_else(|| {
                    eprintln!(
                        "unknown type {kind_name}; one of: {}",
                        WorkflowType::ALL.map(|k| k.label()).join(", ")
                    );
                    std::process::exit(2);
                });
            WorkflowGenerator::new(kind, seed).generate(len)
        }
        (None, None) => {
            eprintln!("nothing to view; pass --file or --generate (see --help)");
            std::process::exit(2);
        }
    };

    print!("{}", workflow.render_text());
    if show_sql {
        println!("\ntriggered queries:");
        let mut graph = VizGraph::new();
        for (i, interaction) in workflow.interactions.iter().enumerate() {
            match graph.apply(interaction) {
                Ok(affected) => {
                    for viz in affected {
                        let q = graph.query_for(&viz).expect("query composes");
                        println!("  {i:>3}. [{viz}] {}", to_sql(&q, None));
                    }
                }
                Err(e) => println!("  {i:>3}. invalid interaction: {e}"),
            }
        }
    }
}
