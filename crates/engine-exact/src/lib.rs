//! The MonetDB-class analytical engine: **blocking, exact** execution.
//!
//! This engine represents the paper's "Analytical Database Systems" category
//! (§2.3): a vectorized column store that always computes exact results and
//! only returns them on completion. Consequences for the benchmark metrics
//! (§5.2): a query either finishes within the time requirement — delivering
//! a perfect result — or is cancelled with *nothing*, so TR violations and
//! missing bins track each other and both grow with data size.
//!
//! Star schemas are supported: dimension attributes are accessed through
//! foreign keys (the equivalent of MonetDB's radix hash join probes), paid
//! for in the per-row cost model.

use idebench_core::{
    CoreError, PrepStats, Query, QueryHandle, Settings, StepStatus, SystemAdapter,
};
use idebench_query::{ChunkedRun, CompiledPlan, SnapshotMode};
use idebench_storage::Dataset;

/// Cost-model and preparation constants for the exact engine.
///
/// Work units are "tuples touched" currency (see DESIGN.md): the default
/// virtual rate of 1M units/s makes a plain 1-unit/row scan of the M-scale
/// dataset (5M rows) take 5 virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactConfig {
    /// Base per-row scan cost.
    pub cost_base: f64,
    /// Additional cost per 4-byte unit of referenced column width.
    pub cost_per_width_unit: f64,
    /// Tuple-reconstruction overhead per column of the scanned table —
    /// the term that makes the (narrower) normalized fact table slightly
    /// cheaper to scan, as the paper observed in Exp 2.
    pub cost_per_fact_column: f64,
    /// Extra cost per filter-matching row (group-by hash update and
    /// aggregate maintenance run only for qualifying tuples). This makes
    /// filter selectivity the dominant cost factor, reproducing Exp 4, and
    /// spreads query latencies so TR violations fall roughly linearly with
    /// the TR, as in Figure 5's MonetDB row.
    pub match_cost: f64,
    /// Load cost per row (CSV ingest; §5.2 reports 19 min for 500M rows).
    pub load_units_per_row: f64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        // Calibration: a parallel columnar scan is cheap (the filter-column
        // read of the M dataset ≈ 0.3 virtual s) while grouped aggregation
        // of qualifying tuples dominates (an unfiltered group-by of M ≈ 7
        // virtual s) — mirroring a multi-core MonetDB where scans run at
        // memory bandwidth but per-tuple aggregation does not parallelize
        // away.
        ExactConfig {
            cost_base: 0.02,
            cost_per_width_unit: 0.015,
            cost_per_fact_column: 0.006,
            match_cost: 1.3,
            load_units_per_row: 1.0,
        }
    }
}

impl ExactConfig {
    /// Per-row work-unit cost for a compiled plan.
    pub fn row_cost(&self, plan: &CompiledPlan) -> f64 {
        self.cost_base
            + self.cost_per_width_unit * plan.width_units()
            + self.cost_per_fact_column * plan.fact_arity() as f64
    }
}

/// The blocking exact adapter ("exact" in reports).
pub struct ExactAdapter {
    config: ExactConfig,
    dataset: Option<Dataset>,
    prep: PrepStats,
    /// Scan worker-pool size, taken from the settings at prepare time.
    workers: usize,
}

impl ExactAdapter {
    /// Creates the adapter with a custom cost model.
    pub fn new(config: ExactConfig) -> Self {
        ExactAdapter {
            config,
            dataset: None,
            prep: PrepStats::default(),
            workers: 1,
        }
    }

    /// Creates the adapter with default calibration.
    pub fn with_defaults() -> Self {
        Self::new(ExactConfig::default())
    }

    /// The active cost model.
    pub fn config(&self) -> &ExactConfig {
        &self.config
    }

    /// Hosts this adapter as a shared [`idebench_core::EngineService`]:
    /// one engine instance serves every session (submission is stateless
    /// across sessions, so dataset ingestion and column statistics are
    /// shared fleet-wide instead of duplicated per analyst).
    pub fn into_service(self) -> idebench_core::ServiceCore {
        idebench_core::ServiceCore::shared_adapter(self)
    }

    fn dataset(&self) -> &Dataset {
        self.dataset
            .as_ref()
            .expect("prepare() must run before submit()")
    }
}

impl SystemAdapter for ExactAdapter {
    fn name(&self) -> &str {
        "exact"
    }

    fn prepare(&mut self, dataset: &Dataset, settings: &Settings) -> Result<PrepStats, CoreError> {
        self.workers = settings.effective_workers();
        if let Some(existing) = &self.dataset {
            if same_dataset(existing, dataset) {
                return Ok(self.prep);
            }
        }
        let rows = total_rows(dataset) as f64;
        // Column min/max stats power the planner's dense bucketed binning;
        // warming them here keeps the O(rows) scan out of submit().
        dataset.warm_numeric_stats();
        self.prep = PrepStats {
            load_units: (rows * self.config.load_units_per_row).round() as u64,
            preprocess_units: 0,
            warmup_units: 0,
        };
        self.dataset = Some(dataset.clone());
        Ok(self.prep)
    }

    fn submit(&mut self, query: &Query) -> Box<dyn QueryHandle> {
        let dataset = self.dataset().clone();
        // One compilation serves both the cost model and the entire scan.
        let plan = CompiledPlan::compile(&dataset, query)
            .expect("driver-validated query binds against the dataset");
        let cost = self.config.row_cost(&plan);
        let mut run = ChunkedRun::from_plan(plan, None, SnapshotMode::Exact);
        run.set_row_cost(cost);
        run.set_match_cost(self.config.match_cost);
        run.set_workers(self.workers);
        Box::new(ExactHandle { run })
    }
}

/// Identity check used by all adapters' idempotent `prepare` (thin alias
/// of [`Dataset::ptr_eq`], kept for API compatibility).
pub fn same_dataset(a: &Dataset, b: &Dataset) -> bool {
    a.ptr_eq(b)
}

/// Total physical rows of a dataset (fact + dimensions), the unit of load
/// cost.
pub fn total_rows(dataset: &Dataset) -> usize {
    match dataset {
        Dataset::Denormalized(t) => t.num_rows(),
        Dataset::Star(s) => s.total_rows(),
    }
}

struct ExactHandle {
    run: ChunkedRun,
}

impl QueryHandle for ExactHandle {
    fn step(&mut self, granted: u64) -> StepStatus {
        let units = self.run.advance(granted);
        if self.run.is_done() {
            StepStatus::Done { units }
        } else {
            StepStatus::Running { units }
        }
    }

    fn snapshot(&self) -> Option<idebench_core::AggResult> {
        self.run.snapshot()
    }

    fn is_done(&self) -> bool {
        self.run.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
    use idebench_core::VizSpec;
    use idebench_query::execute_exact;
    use idebench_storage::{DataType, DimensionSpec, StarSchema, TableBuilder, Value};
    use std::sync::Arc;

    fn dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = if i % 4 == 0 { "AA" } else { "DL" };
            b.push_row(&[c.into(), (i as f64 % 60.0).into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        Query::for_viz(&spec, None)
    }

    fn star_like() -> Dataset {
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        for i in 0..100i64 {
            f.push_row(&[(i as f64).into(), (i % 2).into()]).unwrap();
        }
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        d.push_row(&[Value::Str("AA".into())]).unwrap();
        d.push_row(&[Value::Str("DL".into())]).unwrap();
        Dataset::Star(Arc::new(
            StarSchema::new(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
            )
            .unwrap(),
        ))
    }

    #[test]
    fn blocking_result_matches_ground_truth() {
        let ds = dataset(1_000);
        let mut adapter = ExactAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut handle = adapter.submit(&query());
        assert!(handle.snapshot().is_none());
        loop {
            if handle.step(10_000).is_done() {
                break;
            }
        }
        let snap = handle.snapshot().unwrap();
        assert!(snap.exact);
        assert_eq!(snap, execute_exact(&ds, &query()).unwrap());
    }

    #[test]
    fn no_partial_results_before_completion() {
        let ds = dataset(10_000);
        let mut adapter = ExactAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut handle = adapter.submit(&query());
        handle.step(100);
        assert!(!handle.is_done());
        assert!(handle.snapshot().is_none());
    }

    #[test]
    fn prepare_is_idempotent_per_dataset() {
        let ds = dataset(100);
        let mut adapter = ExactAdapter::with_defaults();
        let p1 = adapter.prepare(&ds, &Settings::default()).unwrap();
        let p2 = adapter.prepare(&ds, &Settings::default()).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.load_units, 100);

        let other = dataset(50);
        let p3 = adapter.prepare(&other, &Settings::default()).unwrap();
        assert_eq!(p3.load_units, 50);
    }

    #[test]
    fn cost_model_scales_with_width_and_arity() {
        let ds = dataset(10);
        let q = query();
        let plan = CompiledPlan::compile(&ds, &q).unwrap();
        let cfg = ExactConfig::default();
        // width: carrier (1) + dep_delay (2) = 3; arity 2.
        let expect = 0.02 + 0.015 * 3.0 + 0.006 * 2.0;
        assert!((cfg.row_cost(&plan) - expect).abs() < 1e-12);
    }

    #[test]
    fn normalized_scan_cheaper_when_fact_is_narrower() {
        // The Exp-2 effect: same query, narrower fact table → lower cost,
        // as long as the query doesn't touch dimension attributes.
        let cfg = ExactConfig::default();
        let denorm = dataset(100);
        let star = star_like();
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            }],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(&spec, None);
        let denorm_cost = cfg.row_cost(&CompiledPlan::compile(&denorm, &q).unwrap());
        let star_cost = cfg.row_cost(&CompiledPlan::compile(&star, &q).unwrap());
        // Both tables have 2 columns here, so costs tie; with the real
        // flights schema (13 cols denorm vs 11 normalized) the normalized
        // fact is cheaper. Assert the model is monotone in arity instead.
        assert_eq!(denorm_cost, star_cost);
        let mut wide_cfg = cfg;
        wide_cfg.cost_per_fact_column = 0.1;
        assert!(wide_cfg.row_cost(&CompiledPlan::compile(&denorm, &q).unwrap()) > denorm_cost);
    }

    #[test]
    fn step_consumes_proportional_units() {
        let ds = dataset(1_000);
        let mut adapter = ExactAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let mut handle = adapter.submit(&query());
        let status = handle.step(59);
        // Every granted unit is consumed (all rows match, so scan + match
        // cost both apply); the final row may leave a sub-unit remainder.
        assert!(status.units() >= 57 && status.units() <= 59);
        assert!(!status.is_done());
    }

    #[test]
    fn multi_worker_scan_matches_single_worker_ground_truth() {
        let ds = dataset(40_000);
        let mut adapter = ExactAdapter::with_defaults();
        adapter
            .prepare(&ds, &Settings::default().with_workers(4))
            .unwrap();
        let mut handle = adapter.submit(&query());
        while !handle.step(1_000_000).is_done() {}
        // Parallel dispatch never changes a result, bit for bit.
        assert_eq!(
            handle.snapshot().unwrap(),
            execute_exact(&ds, &query()).unwrap()
        );
    }

    #[test]
    fn shared_service_answers_identically_across_sessions() {
        use idebench_core::{EngineService, QueryOptions, TicketStatus};
        let ds = dataset(1_000);
        let svc = ExactAdapter::with_defaults().into_service();
        let p0 = svc.open_session(0, &ds, &Settings::default()).unwrap();
        let p1 = svc.open_session(1, &ds, &Settings::default()).unwrap();
        assert_eq!(p0, p1, "shared instance ingests the dataset once");
        let expected = execute_exact(&ds, &query()).unwrap();
        for session in [0u64, 1] {
            let t = svc.submit(
                &query(),
                QueryOptions::for_session(session).with_step_quantum(100_000),
            );
            assert!(matches!(t.drive(), TicketStatus::Done { .. }));
            assert_eq!(t.snapshot().unwrap(), expected);
        }
    }

    #[test]
    fn star_schema_supported_and_correct() {
        let ds = star_like();
        let mut adapter = ExactAdapter::with_defaults();
        adapter.prepare(&ds, &Settings::default()).unwrap();
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(&spec, None);
        let mut handle = adapter.submit(&q);
        while !handle.step(100_000).is_done() {}
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap, execute_exact(&ds, &q).unwrap());
        assert_eq!(snap.bins.len(), 2);
    }
}
