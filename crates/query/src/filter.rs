//! Compiled filter evaluation.

use crate::resolve::ResolvedColumn;
use idebench_core::{CoreError, FilterExpr, Predicate};
use idebench_storage::{Dataset, SelVec, Table};
use rustc_hash::FxHashSet;

/// A filter tree bound to physical columns, evaluable per row.
pub enum CompiledFilter<'a> {
    /// Quantitative half-open range test.
    Range {
        /// Bound column.
        col: ResolvedColumn<'a>,
        /// Inclusive lower bound.
        min: f64,
        /// Exclusive upper bound.
        max: f64,
    },
    /// Nominal membership test over dictionary codes.
    In {
        /// Bound column.
        col: ResolvedColumn<'a>,
        /// Accepted codes. Categories absent from the dictionary simply
        /// never match (the filter referenced a value not in the data).
        codes: FxHashSet<u32>,
    },
    /// All children must match (empty = TRUE).
    And(Vec<CompiledFilter<'a>>),
    /// Any child must match (empty = FALSE).
    Or(Vec<CompiledFilter<'a>>),
}

impl<'a> CompiledFilter<'a> {
    /// Compiles an expression against a dataset.
    pub fn compile(dataset: &'a Dataset, expr: &FilterExpr) -> Result<Self, CoreError> {
        Self::compile_with(expr, &mut |name| ResolvedColumn::new(dataset, name))
    }

    /// Compiles an expression against a bare table (sample tables).
    pub fn compile_on_table(table: &'a Table, expr: &FilterExpr) -> Result<Self, CoreError> {
        Self::compile_with(expr, &mut |name| ResolvedColumn::on_table(table, name))
    }

    fn compile_with(
        expr: &FilterExpr,
        resolve: &mut dyn FnMut(&str) -> Result<ResolvedColumn<'a>, CoreError>,
    ) -> Result<Self, CoreError> {
        Ok(match expr {
            FilterExpr::Pred(Predicate::Range { column, min, max }) => CompiledFilter::Range {
                col: resolve(column)?,
                min: *min,
                max: *max,
            },
            FilterExpr::Pred(Predicate::In { column, values }) => {
                let col = resolve(column)?;
                let codes = match col.column().as_nominal() {
                    Some((_, dict)) => values.iter().filter_map(|v| dict.code(v)).collect(),
                    None => {
                        return Err(CoreError::Storage(format!(
                            "IN filter on non-nominal column {column}"
                        )))
                    }
                };
                CompiledFilter::In { col, codes }
            }
            FilterExpr::And(children) => CompiledFilter::And(
                children
                    .iter()
                    .map(|c| Self::compile_with(c, resolve))
                    .collect::<Result<_, _>>()?,
            ),
            FilterExpr::Or(children) => CompiledFilter::Or(
                children
                    .iter()
                    .map(|c| Self::compile_with(c, resolve))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    /// Whether the (fact) row matches. Null values never match a predicate,
    /// mirroring SQL three-valued logic collapsing to FALSE in WHERE.
    #[inline]
    pub fn matches(&self, row: usize) -> bool {
        match self {
            CompiledFilter::Range { col, min, max } => match col.numeric_at(row) {
                Some(v) => v >= *min && v < *max,
                None => false,
            },
            CompiledFilter::In { col, codes } => match col.code_at(row) {
                Some(c) => codes.contains(&c),
                None => false,
            },
            CompiledFilter::And(children) => children.iter().all(|c| c.matches(row)),
            CompiledFilter::Or(children) => children.iter().any(|c| c.matches(row)),
        }
    }

    /// Vectorized evaluation into a selection vector over `num_rows`.
    ///
    /// Lowers the tree onto the morsel batch kernels (IN-sets become dense
    /// membership tables) and installs match masks word-by-word via
    /// [`SelVec::set_word`] — no per-row dispatch.
    pub fn eval_selvec(&self, num_rows: usize) -> SelVec {
        use crate::batch::{eval_filter, Natural, MORSEL};

        // Arena of membership tables (one per IN node, preorder), then a
        // bound tree referencing them.
        let mut members: Vec<Vec<bool>> = Vec::new();
        self.collect_members(&mut members);
        let mut next = 0usize;
        let bound = self.lower(&members, &mut next);

        let mut sel = SelVec::none(num_rows);
        let mut mask = [0u64; MORSEL / 64];
        let mut base = 0usize;
        while base < num_rows {
            let n = MORSEL.min(num_rows - base);
            eval_filter(&bound, &[], Natural { base, len: n }, &mut mask);
            for (w, &bits) in mask.iter().enumerate().take(n.div_ceil(64)) {
                sel.set_word(base / 64 + w, bits);
            }
            base += n;
        }
        sel
    }

    /// Builds the dense membership table of every `In` node, in preorder.
    fn collect_members(&self, out: &mut Vec<Vec<bool>>) {
        match self {
            CompiledFilter::Range { .. } => {}
            CompiledFilter::In { col, codes } => {
                let dict_len = col.column().as_nominal().map_or(0, |(_, dict)| dict.len());
                let mut member = vec![false; dict_len];
                for &code in codes {
                    if let Some(slot) = member.get_mut(code as usize) {
                        *slot = true;
                    }
                }
                out.push(member);
            }
            CompiledFilter::And(children) | CompiledFilter::Or(children) => {
                for c in children {
                    c.collect_members(out);
                }
            }
        }
    }

    /// Lowers to the batch-kernel tree, consuming `members` in preorder.
    fn lower<'m>(
        &'m self,
        members: &'m [Vec<bool>],
        next: &mut usize,
    ) -> crate::batch::BoundFilter<'m> {
        use crate::batch::BoundFilter;
        match self {
            CompiledFilter::Range { col, min, max } => BoundFilter::Range {
                col: col.view(),
                min: *min,
                max: *max,
            },
            CompiledFilter::In { col, .. } => {
                let member = &members[*next];
                *next += 1;
                BoundFilter::In {
                    col: col.view(),
                    member,
                }
            }
            CompiledFilter::And(children) => {
                BoundFilter::And(children.iter().map(|c| c.lower(members, next)).collect())
            }
            CompiledFilter::Or(children) => {
                BoundFilter::Or(children.iter().map(|c| c.lower(members, next)).collect())
            }
        }
    }

    /// Number of join-accessed columns in the tree (cost model input).
    pub fn joined_columns(&self) -> usize {
        match self {
            CompiledFilter::Range { col, .. } => usize::from(col.is_joined()),
            CompiledFilter::In { col, .. } => usize::from(col.is_joined()),
            CompiledFilter::And(children) | CompiledFilter::Or(children) => {
                children.iter().map(CompiledFilter::joined_columns).sum()
            }
        }
    }

    /// Total scan width of the filtered columns in 4-byte units.
    pub fn width_units(&self) -> f64 {
        match self {
            CompiledFilter::Range { col, .. } | CompiledFilter::In { col, .. } => col.width_units(),
            CompiledFilter::And(children) | CompiledFilter::Or(children) => {
                children.iter().map(CompiledFilter::width_units).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_storage::{DataType, TableBuilder, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for (c, d) in [("AA", 5.0), ("DL", 15.0), ("AA", 25.0), ("UA", -3.0)] {
            b.push_row(&[c.into(), d.into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn range(min: f64, max: f64) -> FilterExpr {
        FilterExpr::Pred(Predicate::Range {
            column: "dep_delay".into(),
            min,
            max,
        })
    }

    fn isin(values: &[&str]) -> FilterExpr {
        FilterExpr::Pred(Predicate::In {
            column: "carrier".into(),
            values: values.iter().map(|s| s.to_string()).collect(),
        })
    }

    #[test]
    fn range_is_half_open() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &range(5.0, 15.0)).unwrap();
        assert!(f.matches(0)); // 5.0 included
        assert!(!f.matches(1)); // 15.0 excluded
        assert!(!f.matches(3)); // -3.0 below
    }

    #[test]
    fn in_matches_codes() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["AA", "UA"])).unwrap();
        assert!(f.matches(0));
        assert!(!f.matches(1));
        assert!(f.matches(3));
    }

    #[test]
    fn unknown_category_never_matches() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["ZZ"])).unwrap();
        assert!((0..4).all(|r| !f.matches(r)));
    }

    #[test]
    fn and_or_combinators() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["AA"]).and(range(0.0, 10.0))).unwrap();
        assert!(f.matches(0)); // AA, 5.0
        assert!(!f.matches(2)); // AA, 25.0

        let or = FilterExpr::Or(vec![isin(&["DL"]), range(20.0, 30.0)]);
        let f2 = CompiledFilter::compile(&ds, &or).unwrap();
        assert!(f2.matches(1));
        assert!(f2.matches(2));
        assert!(!f2.matches(0));
    }

    #[test]
    fn eval_selvec_counts() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["AA"])).unwrap();
        let sel = f.eval_selvec(4);
        assert_eq!(sel.count(), 2);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    /// `eval_selvec` lowers the tree onto the batch kernels while
    /// `matches` interprets it per row; this differential keeps the two
    /// lowerings semantically locked together (nulls, nested And/Or,
    /// unknown categories, morsel-boundary tails).
    #[test]
    fn eval_selvec_agrees_with_per_row_matches() {
        let mut b = TableBuilder::with_fields(
            "t",
            &[("carrier", DataType::Nominal), ("x", DataType::Float)],
        );
        // Cross a morsel boundary (> 1024 rows) and include nulls.
        let n = 2_500usize;
        for i in 0..n {
            let c = ["AA", "DL", "UA"][i % 3];
            let x = if i % 7 == 0 {
                Value::Null
            } else {
                Value::Float((i % 113) as f64 - 40.0)
            };
            b.push_row(&[c.into(), x]).unwrap();
        }
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let exprs = [
            FilterExpr::Pred(Predicate::Range {
                column: "x".into(),
                min: -10.0,
                max: 35.0,
            }),
            isin(&["AA", "ZZ"]),
            isin(&["DL"]).and(FilterExpr::Pred(Predicate::Range {
                column: "x".into(),
                min: 0.0,
                max: 20.0,
            })),
            FilterExpr::Or(vec![
                isin(&["UA"]),
                FilterExpr::And(vec![]), // TRUE
            ]),
            FilterExpr::Or(vec![]), // FALSE
        ];
        for expr in &exprs {
            let f = CompiledFilter::compile(&ds, expr).unwrap();
            let sel = f.eval_selvec(n);
            for row in 0..n {
                assert_eq!(sel.contains(row), f.matches(row), "row {row} of {expr:?}");
            }
        }
    }

    #[test]
    fn in_on_float_column_rejected() {
        let ds = dataset();
        let bad = FilterExpr::Pred(Predicate::In {
            column: "dep_delay".into(),
            values: vec!["5".into()],
        });
        assert!(CompiledFilter::compile(&ds, &bad).is_err());
    }

    #[test]
    fn null_rows_never_match() {
        let mut b = TableBuilder::with_fields("t", &[("x", DataType::Float)]);
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[0.5.into()]).unwrap();
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let f = CompiledFilter::compile(
            &ds,
            &FilterExpr::Pred(Predicate::Range {
                column: "x".into(),
                min: f64::NEG_INFINITY,
                max: f64::INFINITY,
            }),
        )
        .unwrap();
        assert!(!f.matches(0));
        assert!(f.matches(1));
    }

    #[test]
    fn empty_and_or_semantics() {
        let ds = dataset();
        let t = CompiledFilter::compile(&ds, &FilterExpr::And(vec![])).unwrap();
        assert!(t.matches(0));
        let f = CompiledFilter::compile(&ds, &FilterExpr::Or(vec![])).unwrap();
        assert!(!f.matches(0));
    }
}
