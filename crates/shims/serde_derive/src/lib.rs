//! In-repo shim for `serde_derive` (see `crates/shims/`).
//!
//! Generates impls of the serde shim's `Serialize` (`to_json`) and
//! `Deserialize` (`from_json`) traits. The item token stream is parsed
//! directly (no `syn`/`quote` in this offline workspace) and the generated
//! impl is emitted as source text.
//!
//! Supported shapes: structs with named fields, newtype/tuple structs, and
//! enums with unit/newtype/tuple/struct variants. Supported attributes:
//!
//! - container: `rename_all = "lowercase" | "snake_case"`, `tag = "..."`,
//!   `content = "..."`, `untagged`
//! - variant: `rename = "..."`
//! - field: `rename = "..."`, `default`, `default = "path"`,
//!   `skip_serializing_if = "path"`, `flatten`, `with = "module"`
//!
//! `with` modules expose `to_json(&T) -> serde::Value` and
//! `from_json(&serde::Value) -> Result<T, serde::DeError>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod generate;
mod parse;

/// Derives the serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_item(input);
    generate::serialize_impl(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse::parse_item(input);
    generate::deserialize_impl(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

/// The parsed shape of a `#[derive(...)]` item.
pub(crate) struct Item {
    pub name: String,
    pub attrs: ContainerAttrs,
    pub kind: ItemKind,
}

pub(crate) enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

pub(crate) enum Fields {
    Named(Vec<Field>),
    /// Tuple fields: just the type texts.
    Tuple(Vec<String>),
    Unit,
}

pub(crate) struct Field {
    pub name: String,
    pub ty: String,
    pub attrs: FieldAttrs,
}

pub(crate) struct Variant {
    pub name: String,
    pub rename: Option<String>,
    pub fields: Fields,
}

#[derive(Default)]
pub(crate) struct ContainerAttrs {
    pub rename_all: Option<String>,
    pub tag: Option<String>,
    pub content: Option<String>,
    pub untagged: bool,
}

#[derive(Default)]
pub(crate) struct FieldAttrs {
    pub rename: Option<String>,
    pub default: Option<DefaultAttr>,
    pub skip_serializing_if: Option<String>,
    pub flatten: bool,
    pub with: Option<String>,
}

pub(crate) enum DefaultAttr {
    Std,
    Path(String),
}

/// Applies `rename_all` to an identifier.
pub(crate) fn apply_rename_all(rule: &str, name: &str) -> String {
    match rule {
        "lowercase" => name.to_lowercase(),
        "snake_case" => {
            let mut out = String::with_capacity(name.len() + 4);
            for (i, ch) in name.chars().enumerate() {
                if ch.is_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.extend(ch.to_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        other => panic!("serde shim: unsupported rename_all rule {other:?}"),
    }
}

/// True when a captured type text is an `Option<...>`.
pub(crate) fn is_option_type(ty: &str) -> bool {
    let t = ty.trim_start_matches(':').trim_start();
    t == "Option"
        || t.starts_with("Option<")
        || t.starts_with("Option <")
        || t.starts_with("std :: option :: Option")
        || t.starts_with("core :: option :: Option")
}

/// Splits a delimiter-free token run on top-level commas, tracking angle
/// brackets so `Map<K, V>` stays whole. Groups hide their own commas.
pub(crate) fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                current.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(t.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Renders a token run back to source text.
pub(crate) fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in tokens {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.to_string());
    }
    s
}

/// Strips leading visibility (`pub`, `pub(crate)`, …) from a token run.
pub(crate) fn strip_visibility(tokens: &[TokenTree]) -> &[TokenTree] {
    match tokens {
        [TokenTree::Ident(id), TokenTree::Group(g), rest @ ..]
            if id.to_string() == "pub" && g.delimiter() == Delimiter::Parenthesis =>
        {
            rest
        }
        [TokenTree::Ident(id), rest @ ..] if id.to_string() == "pub" => rest,
        other => other,
    }
}
