//! The fleet harness: concurrent multi-session benchmarking over a shared
//! engine substrate.
//!
//! IDEBench's driver simulates *one* analyst stepping through one workflow
//! (paper §4.4). Deployed exploration backends serve many analysts at once
//! against one shared dataset — the dimension the paper leaves open. This
//! crate adds that dimension: a [`FleetHarness`] spawns N simulated analyst
//! sessions (each an independent Markov-generated workflow from
//! `idebench-workflow`, seeded per session via
//! [`idebench_core::Settings::for_session`]), and drives them all into
//! **one shared `Arc<dyn EngineService>`** — sessions own no engine state
//! at all; they submit deadline-tagged tickets under their session id and
//! the service's central scheduler multiplexes the grants
//! ([`idebench_core::service`]). Three shared layers coordinate the fleet:
//!
//! - the **shared engine service** itself (scheduler + engine state:
//!   shared dataset ingestion for stateless engines, per-session state
//!   behind the service for engines that need it);
//! - the **persistent scan worker pool** (`idebench_query::ScanPool`):
//!   every session's query scans fan their morsel chunks over one
//!   process-wide pool, so intra-query parallelism and inter-session
//!   concurrency compose without oversubscription; and
//! - the **cross-session semantic result cache** ([`SemanticCache`]):
//!   canonical query semantics → exact result, layered over the engine
//!   service as [`CachedEngineService`], with per-session hit/miss
//!   accounting. Visibility is *causal on the virtual timeline* — a lookup
//!   only hits results whose producing query completed at an earlier
//!   virtual time, so simultaneous analysts miss each other's in-flight
//!   queries exactly as in a real deployment.
//!
//! # Load models
//!
//! Sessions arrive under a configurable [`LoadModel`]: **closed-loop**
//! (all N analysts present from t = 0, pacing themselves with the
//! settings' think time) or **open-loop** (session arrivals follow a
//! seeded Poisson process on the virtual clock).
//!
//! # Determinism
//!
//! A fleet run is bit-for-bit reproducible given its seed. Session
//! interleaving lives on the **virtual clock**: the harness is a discrete-
//! event simulation that always executes the runnable session with the
//! smallest virtual timestamp (ties break by session id), so the order in
//! which sessions observe the shared cache — and therefore every hit/miss
//! count and latency — is a pure function of the configuration. Wall-clock
//! parallelism (the shared scan pool inside each query, the parallel
//! ground-truth evaluation in [`report::FleetReport::evaluate`]) never
//! touches the virtual timeline, extending the repo's bit-identity
//! guarantee from single scans to whole fleets: same seed, same merged
//! report, for any worker count and any physical interleaving.

pub mod cache;
pub mod report;

pub use cache::{CacheStats, CachedEngineService, SemanticCache};
pub use report::{FleetReport, SessionSummary};

use idebench_core::service::{EngineService, ServiceCore, SessionId};
use idebench_core::WorkflowSession;
use idebench_core::{
    CoreError, ExecutionMode, PrepStats, Settings, SystemAdapter, WorkflowOutcome,
};
use idebench_storage::Dataset;
use idebench_workflow::{Workflow, WorkflowGenerator, WorkflowType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How sessions arrive at the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "model", rename_all = "lowercase")]
pub enum LoadModel {
    /// Closed loop: all sessions are present from virtual time 0 and pace
    /// themselves with the settings' think time — a fixed population of
    /// analysts staring at their dashboards.
    Closed,
    /// Open loop: sessions arrive by a Poisson process at
    /// `arrival_rate_per_s` (virtual seconds), independent of how fast the
    /// system serves them — service-style load.
    Open {
        /// Mean session arrivals per virtual second (> 0).
        arrival_rate_per_s: f64,
    },
}

/// Configuration of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Base benchmark settings; each session runs under
    /// `settings.for_session(i)`.
    pub settings: Settings,
    /// Number of simulated analyst sessions.
    pub sessions: usize,
    /// Arrival model.
    pub load: LoadModel,
    /// Workflow pattern every session's generator follows.
    pub workflow_kind: WorkflowType,
    /// Interactions per session workflow.
    pub workflow_len: usize,
    /// When set, every session replays the *same* generated workflow
    /// (identical generator seed; names still differ per session) — the
    /// shared-dashboard scenario that maximizes cross-session cache
    /// traffic. Pair it with staggered arrivals ([`LoadModel::Open`]):
    /// analysts opening the dashboard at the exact same instant cannot
    /// causally share results, later arrivals reuse everything. Default:
    /// independent per-session workflows.
    #[serde(default)]
    pub shared_workflow: bool,
}

impl FleetConfig {
    /// A closed-loop mixed-workflow configuration of `sessions` sessions.
    pub fn new(settings: Settings, sessions: usize) -> FleetConfig {
        FleetConfig {
            settings,
            sessions,
            load: LoadModel::Closed,
            workflow_kind: WorkflowType::Mixed,
            workflow_len: 12,
            shared_workflow: false,
        }
    }

    /// Builder-style setter for the load model.
    pub fn with_load(mut self, load: LoadModel) -> FleetConfig {
        self.load = load;
        self
    }

    /// Builder-style setter for the workflow pattern and length.
    pub fn with_workflow(mut self, kind: WorkflowType, len: usize) -> FleetConfig {
        self.workflow_kind = kind;
        self.workflow_len = len;
        self
    }

    /// Builder-style setter for the shared-dashboard mode.
    pub fn with_shared_workflow(mut self, shared: bool) -> FleetConfig {
        self.shared_workflow = shared;
        self
    }
}

/// One session's slice of a fleet run.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Session id (0-based).
    pub session: usize,
    /// Virtual arrival time, ms since fleet start.
    pub arrival_ms: f64,
    /// Interactions the session actually executed.
    pub interactions: usize,
    /// The session's ordinary single-workflow outcome.
    pub outcome: WorkflowOutcome,
    /// The session's traffic against the shared semantic cache.
    pub cache: CacheStats,
}

/// Everything a fleet run produced (evaluate into a [`FleetReport`] for
/// metrics against ground truth).
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// The configuration that produced this outcome.
    pub config: FleetConfig,
    /// Per-session outcomes, in session-id order.
    pub sessions: Vec<SessionOutcome>,
    /// Virtual ms from fleet start until the last session finished.
    pub makespan_ms: f64,
    /// Distinct results held by the shared cache at the end of the run.
    pub cache_entries: usize,
    /// Fleet-wide cache traffic (sum over sessions).
    pub cache: CacheStats,
}

/// The multi-session harness (see module docs).
pub struct FleetHarness {
    config: FleetConfig,
}

/// One live session of the event loop. Note what is *not* here: no
/// adapter, no engine handle — engine state lives behind the shared
/// service, keyed by the session id.
struct LiveSession {
    arrival_ms: f64,
    workflow: Workflow,
    session: WorkflowSession,
    next_interaction: usize,
    prepared: bool,
    prep: PrepStats,
}

impl LiveSession {
    fn done(&self) -> bool {
        self.next_interaction >= self.workflow.interactions.len()
    }

    /// The virtual time of the session's next interaction.
    fn next_time(&self) -> f64 {
        self.arrival_ms + self.session.clock_ms()
    }
}

impl FleetHarness {
    /// Creates a harness for the given configuration.
    ///
    /// # Panics
    ///
    /// Requires virtual execution: under wall-clock execution session
    /// clocks would vary run-to-run, breaking the deterministic event
    /// order and the cache's virtual-time causality.
    pub fn new(config: FleetConfig) -> FleetHarness {
        assert!(
            matches!(config.settings.execution, ExecutionMode::Virtual { .. }),
            "fleet runs require ExecutionMode::Virtual — wall-clock time would \
             break deterministic event ordering and cache causality"
        );
        if let LoadModel::Open { arrival_rate_per_s } = config.load {
            assert!(
                arrival_rate_per_s > 0.0 && arrival_rate_per_s.is_finite(),
                "open-loop arrival rate must be positive"
            );
        }
        FleetHarness { config }
    }

    /// The harness configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The deterministic virtual arrival schedule (ms), one entry per
    /// session in session-id order. Closed-loop: all zeros. Open-loop:
    /// cumulative exponential inter-arrivals seeded from the base settings.
    pub fn arrivals(&self) -> Vec<f64> {
        match self.config.load {
            LoadModel::Closed => vec![0.0; self.config.sessions],
            LoadModel::Open { arrival_rate_per_s } => {
                // Distinct stream from workflow/session seeds.
                let mut rng =
                    StdRng::seed_from_u64(self.config.settings.seed ^ 0xA881_F1E7_0F1E_E7A1);
                let mut t = 0.0f64;
                let mut arrivals = Vec::with_capacity(self.config.sessions);
                for _ in 0..self.config.sessions {
                    arrivals.push(t);
                    let u: f64 = rng.random();
                    // Exponential inter-arrival, seconds → ms.
                    t += -(1.0 - u).ln() / arrival_rate_per_s * 1e3;
                }
                arrivals
            }
        }
    }

    /// The workflow session `i` will run (exposed for inspection; the run
    /// generates exactly these).
    pub fn workflow_for(&self, session: usize) -> Workflow {
        let seed = if self.config.shared_workflow {
            self.config.settings.seed
        } else {
            self.config.settings.for_session(session as u64).seed
        };
        WorkflowGenerator::new(self.config.workflow_kind, seed).generate_named(
            self.config.workflow_len,
            format!("s{session}_{}", self.config.workflow_kind.label()),
        )
    }

    /// Runs the fleet against **one shared engine service**: every session
    /// submits into `engine` under its own session id, interleaved on the
    /// shared virtual clock (see the module's determinism notes), all
    /// scans over the shared worker pool, results shared through the
    /// semantic cache layered over the service.
    pub fn run(
        &self,
        dataset: &Dataset,
        engine: Arc<dyn EngineService>,
    ) -> Result<FleetOutcome, CoreError> {
        let n = self.config.sessions;
        let cache = SemanticCache::new(n);
        let service = cache.wrap_service(engine);
        let arrivals = self.arrivals();

        let mut live: Vec<LiveSession> = (0..n)
            .map(|i| LiveSession {
                arrival_ms: arrivals[i],
                workflow: self.workflow_for(i),
                session: WorkflowSession::for_session(
                    self.config.settings.for_session(i as u64),
                    i as SessionId,
                ),
                next_interaction: 0,
                prepared: false,
                prep: PrepStats::default(),
            })
            .collect();

        // Discrete-event loop: always run the pending interaction with the
        // smallest virtual timestamp; ties break toward the lower session
        // id. This total order is what makes the shared cache's hit/miss
        // sequence — and hence the whole report — independent of worker
        // counts and physical thread interleaving.
        loop {
            let mut pick: Option<(usize, f64)> = None;
            for (i, s) in live.iter().enumerate() {
                if s.done() {
                    continue;
                }
                let t = s.next_time();
                if pick.is_none_or(|(_, best)| t < best) {
                    pick = Some((i, t));
                }
            }
            let Some((i, start_ms)) = pick else { break };
            let s = &mut live[i];
            if !s.prepared {
                s.prep = service.open_session(i as SessionId, dataset, s.session.settings())?;
                s.prepared = true;
            }
            // Cache-causality protocol: stamp the session's virtual "now"
            // (lookups only see results completed by then), run the
            // interaction, then publish whatever it completed as available
            // from the interaction's end — so simultaneous analysts miss
            // each other's in-flight queries exactly as a real deployment
            // would, and only genuinely earlier completions are shared.
            cache.begin_event(i, start_ms);
            let interaction = s.workflow.interactions[s.next_interaction].clone();
            s.session
                .step_service(service.as_ref(), dataset, &interaction)?;
            let queries_end_ms =
                s.arrival_ms + s.session.clock_ms() - s.session.settings().think_time_ms as f64;
            cache.commit_staged(i, queries_end_ms);
            s.next_interaction += 1;
            if s.done() {
                service.close_session(i as SessionId);
            }
        }

        let system = service.name().to_string();
        let mut sessions = Vec::with_capacity(n);
        let mut makespan_ms = 0.0f64;
        for (i, s) in live.into_iter().enumerate() {
            let interactions = s.session.interactions_run();
            let outcome =
                s.session
                    .into_outcome(&system, &s.workflow.name, s.workflow.kind.label(), s.prep);
            makespan_ms = makespan_ms.max(s.arrival_ms + outcome.total_ms);
            sessions.push(SessionOutcome {
                session: i,
                arrival_ms: s.arrival_ms,
                interactions,
                outcome,
                cache: cache.session_stats(i),
            });
        }
        Ok(FleetOutcome {
            config: self.config.clone(),
            sessions,
            makespan_ms,
            cache_entries: cache.len(),
            cache: cache.totals(),
        })
    }

    /// Compatibility path for [`SystemAdapter`]-world callers: bridges
    /// `make_adapter` (one instance per session, the pre-service fleet
    /// shape) behind a [`ServiceCore`] and calls [`FleetHarness::run`].
    /// Produces bit-identical outcomes to the pre-redesign harness —
    /// `make_adapter` is called exactly once per session, in session-id
    /// order, up front (as the old harness did).
    pub fn run_with(
        &self,
        dataset: &Dataset,
        mut make_adapter: impl FnMut(SessionId) -> Box<dyn SystemAdapter> + Send + 'static,
    ) -> Result<FleetOutcome, CoreError> {
        let mut prebuilt: rustc_hash::FxHashMap<SessionId, Box<dyn SystemAdapter>> =
            (0..self.config.sessions as SessionId)
                .map(|i| (i, make_adapter(i)))
                .collect();
        let name = prebuilt
            .get(&0)
            .map(|a| a.name().to_string())
            .unwrap_or_default();
        let service = ServiceCore::per_session_adapters(name, move |session| {
            prebuilt
                .remove(&session)
                .expect("one prebuilt adapter per fleet session")
        })
        .into_shared();
        self.run(dataset, service)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_engine_exact::ExactAdapter;

    fn dataset(n: usize) -> Dataset {
        Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(n, 42)))
    }

    fn config(sessions: usize) -> FleetConfig {
        FleetConfig::new(
            Settings::default()
                .with_time_requirement_ms(1_000)
                .with_think_time_ms(500)
                .with_seed(11),
            sessions,
        )
        .with_workflow(WorkflowType::Mixed, 8)
    }

    /// The canonical shared service of these tests: one exact engine
    /// instance serving every session.
    fn exact_service() -> Arc<dyn EngineService> {
        ServiceCore::shared_adapter(ExactAdapter::with_defaults()).into_shared()
    }

    #[test]
    fn closed_loop_fleet_runs_every_session() {
        let ds = dataset(5_000);
        let out = FleetHarness::new(config(3))
            .run(&ds, exact_service())
            .unwrap();
        assert_eq!(out.sessions.len(), 3);
        for (i, s) in out.sessions.iter().enumerate() {
            assert_eq!(s.session, i);
            assert_eq!(s.arrival_ms, 0.0);
            assert!(!s.outcome.query_results.is_empty());
            assert_eq!(s.outcome.workflow_name, format!("s{i}_mixed"));
        }
        let slowest = out
            .sessions
            .iter()
            .map(|s| s.outcome.total_ms)
            .fold(0.0f64, f64::max);
        assert_eq!(out.makespan_ms, slowest);
    }

    #[test]
    fn sessions_run_distinct_workflows_unless_shared() {
        let h = FleetHarness::new(config(2));
        assert_ne!(
            h.workflow_for(0).interactions,
            h.workflow_for(1).interactions
        );
        let shared = FleetHarness::new(config(2).with_shared_workflow(true));
        assert_eq!(
            shared.workflow_for(0).interactions,
            shared.workflow_for(1).interactions
        );
        // Session 0 always matches the single-analyst run of the base seed.
        assert_eq!(
            h.workflow_for(0).interactions,
            shared.workflow_for(0).interactions
        );
    }

    #[test]
    fn staggered_shared_dashboard_hits_the_cross_session_cache() {
        let ds = dataset(5_000);
        // Staggered arrivals: later analysts open the same dashboard after
        // earlier ones' queries have completed on the virtual timeline.
        let cfg = config(3)
            .with_shared_workflow(true)
            .with_load(LoadModel::Open {
                arrival_rate_per_s: 0.1,
            });
        let out = FleetHarness::new(cfg).run(&ds, exact_service()).unwrap();
        assert!(
            out.cache.hits > 0,
            "replayed workflows behind a stagger must share results: {:?}",
            out.cache
        );
        // A later session replays session 0's completed queries from the
        // cache; hits cost zero time, so its active span can only shrink.
        let s0 = &out.sessions[0];
        let s1 = &out.sessions[1];
        assert!(s1.cache.hits > 0);
        assert!(s1.outcome.total_ms <= s0.outcome.total_ms);
    }

    #[test]
    fn simultaneous_identical_sessions_cannot_causally_share() {
        // All analysts open the identical dashboard at t = 0: nobody's
        // results exist yet when the others look, so there are no
        // cross-session hits — their timelines stay identical, and every
        // session does its own work (as a real simultaneous stampede
        // would).
        let ds = dataset(5_000);
        let out = FleetHarness::new(config(2).with_shared_workflow(true))
            .run(&ds, exact_service())
            .unwrap();
        assert_eq!(
            out.sessions[0].cache, out.sessions[1].cache,
            "identical timelines, identical traffic"
        );
        assert_eq!(
            out.sessions[0].outcome.total_ms,
            out.sessions[1].outcome.total_ms
        );
    }

    #[test]
    fn open_loop_arrivals_are_seeded_and_monotone() {
        let cfg = config(5).with_load(LoadModel::Open {
            arrival_rate_per_s: 0.5,
        });
        let a = FleetHarness::new(cfg.clone()).arrivals();
        let b = FleetHarness::new(cfg).arrivals();
        assert_eq!(a, b, "arrival schedule is deterministic");
        assert_eq!(a[0], 0.0);
        assert!(
            a.windows(2).all(|w| w[0] < w[1]),
            "arrivals increase: {a:?}"
        );
        // Mean inter-arrival should be in the vicinity of 1/rate = 2 s.
        let mean_gap = a.last().unwrap() / (a.len() - 1) as f64;
        assert!(
            (200.0..20_000.0).contains(&mean_gap),
            "implausible mean inter-arrival {mean_gap} ms"
        );
    }

    #[test]
    fn open_loop_makespan_extends_past_last_arrival() {
        let ds = dataset(2_000);
        let cfg = config(3).with_load(LoadModel::Open {
            arrival_rate_per_s: 0.2,
        });
        let h = FleetHarness::new(cfg);
        let arrivals = h.arrivals();
        let out = h.run(&ds, exact_service()).unwrap();
        for (s, a) in out.sessions.iter().zip(&arrivals) {
            assert_eq!(s.arrival_ms, *a);
        }
        assert!(out.makespan_ms >= *arrivals.last().unwrap());
    }

    #[test]
    fn fleet_outcome_is_deterministic_across_worker_counts() {
        let ds = dataset(20_000);
        let mut reference: Option<Vec<(f64, f64, bool)>> = None;
        for workers in [1usize, 2, 8] {
            let mut cfg = config(2);
            cfg.settings = cfg.settings.with_workers(workers);
            let out = FleetHarness::new(cfg).run(&ds, exact_service()).unwrap();
            let shape: Vec<(f64, f64, bool)> = out
                .sessions
                .iter()
                .flat_map(|s| s.outcome.query_results.iter())
                .map(|m| (m.start_ms, m.end_ms, m.tr_violated))
                .collect();
            match &reference {
                None => reference = Some(shape),
                Some(r) => assert_eq!(&shape, r, "workers = {workers}"),
            }
        }
    }
}
