//! Morsel-driven batch kernels and accumulation.
//!
//! Execution processes fixed-size morsels (`MORSEL` rows). Per morsel:
//!
//! 1. the staged columns the *filter* reads are gathered into flat scratch
//!    buffers — joined columns gather their foreign-key column **once**
//!    per morsel and translate it through the plan's per-dimension join
//!    caches, nullable columns fold their validity bitmap into a morsel
//!    mask (see `crate::plan::StageSpec`);
//! 2. the filter tree is evaluated into a bitmask (`Mask`) by typed
//!    kernels — one `match` on column type per *morsel*, not per row;
//! 3. the remaining staged (binning / measure) columns are gathered — a
//!    morsel the filter fully rejects skips this phase entirely;
//! 4. bin slots (dense) or bin keys (sparse) are computed for all rows;
//! 5. matching rows are folded into the accumulator in bulk.
//!
//! Every kernel consumes a `ColView`: flat slices (direct or staged) in
//! all but the retained `Virtual` arm, so star-schema joins devirtualized
//! by the planner run the same code as de-normalized columns. The dense
//! path exploits that an all-nominal binning has a bin space bounded by
//! dictionary sizes: accumulators live in a flat array indexed by
//! `code0 + code1 * dict_len0`, replacing the per-row hash probe of the
//! scalar reference path.

use crate::aggregate::{BinAcc, GroupedAcc, MeasureAcc};
use crate::plan::{
    AccMode, ColView, CompiledPlan, PlannedDim, PlannedFilter, StagePhases, StageSpec,
};
use idebench_core::{AggFunc, BinCoord, BinKey};
use idebench_storage::{ColumnSlice, SelVec};
use rustc_hash::FxHashMap;

/// Rows per morsel. A multiple of 64 so morsel masks align with
/// [`idebench_storage::SelVec`] words.
pub const MORSEL: usize = 1024;
const WORDS: usize = MORSEL / 64;

/// A per-morsel bitmask (bit `i` = row `i` of the morsel).
pub(crate) type Mask = [u64; WORDS];

/// Zeroes mask bits at positions `n..`.
#[inline]
fn mask_tail(mask: &mut Mask, n: usize) {
    for (w, word) in mask.iter_mut().enumerate() {
        let lo = w * 64;
        if n <= lo {
            *word = 0;
        } else if n < lo + 64 {
            *word &= (1u64 << (n - lo)) - 1;
        }
    }
}

/// The rows of one morsel: a contiguous range or a gathered order slice.
pub(crate) trait RowSet: Copy {
    /// Number of rows (≤ [`MORSEL`]).
    fn len(&self) -> usize;
    /// The fact row at morsel position `i`.
    fn row(&self, i: usize) -> usize;
    /// Start row of a contiguous natural-order range, when this is one —
    /// kernels then swap gather loops for bounds-check-free slice walks.
    fn base(&self) -> Option<usize> {
        None
    }
}

/// Natural-order rows `base..base + len`.
#[derive(Clone, Copy)]
pub(crate) struct Natural {
    pub base: usize,
    pub len: usize,
}

impl RowSet for Natural {
    #[inline(always)]
    fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn row(&self, i: usize) -> usize {
        self.base + i
    }

    #[inline(always)]
    fn base(&self) -> Option<usize> {
        Some(self.base)
    }
}

/// Rows gathered through a shuffle/order slice.
#[derive(Clone, Copy)]
pub(crate) struct Gather<'a>(pub &'a [u32]);

impl RowSet for Gather<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn row(&self, i: usize) -> usize {
        self.0[i] as usize
    }
}

// -------------------------------------------------------------- binding

/// A [`CompiledPlan`] bound to borrowed column slices for one `advance`.
pub(crate) struct BoundPlan<'a> {
    filter: Option<BoundFilter<'a>>,
    dims: Vec<BoundDim<'a>>,
    measures: Vec<Option<ColView<'a>>>,
    /// Per-morsel staging instructions, parallel to the accumulator's
    /// stage buffers.
    stages: Vec<BoundStage<'a>>,
    /// Distinct FK columns gathered once per morsel, parallel to the
    /// accumulator's FK staging buffers.
    fks: Vec<&'a [i64]>,
    /// Filter-phase vs. post-filter-phase staging split.
    phases: &'a StagePhases,
}

pub(crate) enum BoundFilter<'a> {
    Range {
        col: ColView<'a>,
        min: f64,
        max: f64,
    },
    In {
        col: ColView<'a>,
        member: &'a [bool],
    },
    And(Vec<BoundFilter<'a>>),
    Or(Vec<BoundFilter<'a>>),
}

enum BoundDim<'a> {
    Nominal {
        col: ColView<'a>,
        /// Dictionary size bounding this dimension's bin space (stride).
        dict_len: u32,
    },
    Width {
        col: ColView<'a>,
        width: f64,
        anchor: f64,
        /// `(lo, len)` of the bounded bucket space when the dimension was
        /// lowered to dense arithmetic slots.
        dense: Option<(i64, u32)>,
    },
}

/// A [`StageSpec`] bound to borrowed slices for one `advance`.
enum BoundStage<'a> {
    Own {
        col: &'a idebench_storage::Column,
    },
    JoinCodes {
        fk_slot: usize,
        cache: &'a [u32],
    },
    JoinNum {
        fk_slot: usize,
        vals: &'a [f64],
        valid: Option<&'a SelVec>,
    },
}

impl PlannedFilter {
    pub(crate) fn bind(&self) -> BoundFilter<'_> {
        match self {
            PlannedFilter::Range { col, min, max } => BoundFilter::Range {
                col: col.view(),
                min: *min,
                max: *max,
            },
            PlannedFilter::In { col, member } => BoundFilter::In {
                col: col.view(),
                member,
            },
            PlannedFilter::And(children) => {
                BoundFilter::And(children.iter().map(PlannedFilter::bind).collect())
            }
            PlannedFilter::Or(children) => {
                BoundFilter::Or(children.iter().map(PlannedFilter::bind).collect())
            }
        }
    }
}

impl CompiledPlan {
    /// Binds the plan to borrowed slices (index lookups only; no name
    /// resolution or hashing — cheap enough to do per `advance`).
    pub(crate) fn bind(&self) -> BoundPlan<'_> {
        BoundPlan {
            filter: self.filter.as_ref().map(PlannedFilter::bind),
            dims: self
                .dims
                .iter()
                .map(|d| match d {
                    PlannedDim::Nominal { col, dict_len } => BoundDim::Nominal {
                        col: col.view(),
                        dict_len: (*dict_len).max(1) as u32,
                    },
                    PlannedDim::Width {
                        col,
                        width,
                        anchor,
                        dense,
                    } => BoundDim::Width {
                        col: col.view(),
                        width: *width,
                        anchor: *anchor,
                        dense: dense.map(|d| (d.lo, d.len as u32)),
                    },
                })
                .collect(),
            measures: self
                .measures
                .iter()
                .map(|m| m.as_ref().map(|c| c.view()))
                .collect(),
            stages: self
                .stages
                .iter()
                .map(|s| match s {
                    StageSpec::Own(col) => BoundStage::Own { col: col.get() },
                    StageSpec::JoinCodes { fk_slot, cache } => BoundStage::JoinCodes {
                        fk_slot: *fk_slot,
                        cache,
                    },
                    StageSpec::JoinNum {
                        fk_slot,
                        vals,
                        valid,
                    } => BoundStage::JoinNum {
                        fk_slot: *fk_slot,
                        vals,
                        valid: valid.as_ref(),
                    },
                })
                .collect(),
            fks: self
                .fk_cols
                .iter()
                .map(|(t, i)| {
                    t.column_at(*i)
                        .as_int()
                        .expect("fk column validated at compile time")
                })
                .collect(),
            phases: &self.phases,
        }
    }
}

// -------------------------------------------------------------- staging

/// Scratch buffer of one staged column for the current morsel: flat values
/// (codes or numerics, whichever the column is) plus a validity mask.
pub(crate) struct StageBuf {
    codes: Vec<u32>,
    nums: Vec<f64>,
    mask: Mask,
}

impl StageBuf {
    fn for_spec(spec: &StageSpec) -> StageBuf {
        StageBuf {
            codes: if spec.nominal() {
                vec![0; MORSEL]
            } else {
                Vec::new()
            },
            nums: if spec.nominal() {
                Vec::new()
            } else {
                vec![0.0; MORSEL]
            },
            mask: [0u64; WORDS],
        }
    }
}

/// Gathers the FK staging buffers named by `which` for one morsel — every
/// joined column translating through an FK reads it from here, so each
/// distinct FK column is gathered at most once per morsel.
fn stage_fks<R: RowSet>(
    bound: &BoundPlan<'_>,
    rows: R,
    fk_stage: &mut [Vec<u32>],
    which: &[usize],
) {
    let n = rows.len();
    for &slot in which {
        let fk = bound.fks[slot];
        let dst = &mut fk_stage[slot];
        match rows.base() {
            Some(base) => {
                for (d, &k) in dst.iter_mut().zip(&fk[base..base + n]) {
                    *d = k as u32;
                }
            }
            None => {
                for (i, d) in dst.iter_mut().enumerate().take(n) {
                    *d = fk[rows.row(i)] as u32;
                }
            }
        }
    }
}

/// Fills the stage buffers named by `which` for one morsel. Stage buffers
/// hold the staged value at each morsel *position* (null rows hold a
/// placeholder and have their mask bit cleared).
fn stage_cols<R: RowSet>(
    bound: &BoundPlan<'_>,
    rows: R,
    fk_stage: &[Vec<u32>],
    bufs: &mut [StageBuf],
    which: &[usize],
) {
    let n = rows.len();
    for &si in which {
        let (spec, buf) = (&bound.stages[si], &mut bufs[si]);
        buf.mask = [u64::MAX; WORDS];
        mask_tail(&mut buf.mask, n);
        match spec {
            BoundStage::Own { col } => {
                match col.typed() {
                    ColumnSlice::F64(d) => match rows.base() {
                        Some(base) => buf.nums[..n].copy_from_slice(&d[base..base + n]),
                        None => {
                            for (i, o) in buf.nums.iter_mut().enumerate().take(n) {
                                *o = d[rows.row(i)];
                            }
                        }
                    },
                    ColumnSlice::I64(d) => {
                        for (i, o) in buf.nums.iter_mut().enumerate().take(n) {
                            *o = d[rows.row(i)] as f64;
                        }
                    }
                    ColumnSlice::Codes(d, _) => match rows.base() {
                        Some(base) => buf.codes[..n].copy_from_slice(&d[base..base + n]),
                        None => {
                            for (i, o) in buf.codes.iter_mut().enumerate().take(n) {
                                *o = d[rows.row(i)];
                            }
                        }
                    },
                }
                if let Some(v) = col.validity() {
                    for i in 0..n {
                        if !v.contains(rows.row(i)) {
                            buf.mask[i / 64] &= !(1u64 << (i % 64));
                        }
                    }
                }
            }
            BoundStage::JoinCodes { fk_slot, cache } => {
                let fkb = &fk_stage[*fk_slot];
                for (i, (o, &r)) in buf.codes.iter_mut().zip(&fkb[..n]).enumerate() {
                    let c = cache[r as usize];
                    if c == crate::plan::NULL_CODE {
                        *o = 0;
                        buf.mask[i / 64] &= !(1u64 << (i % 64));
                    } else {
                        *o = c;
                    }
                }
            }
            BoundStage::JoinNum {
                fk_slot,
                vals,
                valid,
            } => {
                let fkb = &fk_stage[*fk_slot];
                for (o, &r) in buf.nums.iter_mut().zip(&fkb[..n]) {
                    *o = vals[r as usize];
                }
                if let Some(v) = valid {
                    for (i, &r) in fkb[..n].iter().enumerate() {
                        if !v.contains(r as usize) {
                            buf.mask[i / 64] &= !(1u64 << (i % 64));
                        }
                    }
                }
            }
        }
    }
}

// -------------------------------------------------------------- kernels

/// Clears every `out` bit whose staged-validity bit is unset.
#[inline]
fn and_mask(out: &mut Mask, mask: &Mask) {
    for w in 0..WORDS {
        out[w] &= mask[w];
    }
}

/// Evaluates a filter tree over one morsel into `out` (bit = row matches).
/// Null values never match, mirroring SQL WHERE semantics.
pub(crate) fn eval_filter<R: RowSet>(
    f: &BoundFilter<'_>,
    stages: &[StageBuf],
    rows: R,
    out: &mut Mask,
) {
    let n = rows.len();
    match f {
        BoundFilter::Range { col, min, max } => {
            range_mask(*col, stages, *min, *max, rows, out);
        }
        BoundFilter::In { col, member } => {
            in_mask(*col, stages, member, rows, out);
        }
        BoundFilter::And(children) => {
            *out = [u64::MAX; WORDS];
            mask_tail(out, n);
            let mut tmp = [0u64; WORDS];
            for child in children {
                eval_filter(child, stages, rows, &mut tmp);
                for w in 0..WORDS {
                    out[w] &= tmp[w];
                }
            }
        }
        BoundFilter::Or(children) => {
            *out = [0u64; WORDS];
            let mut tmp = [0u64; WORDS];
            for child in children {
                eval_filter(child, stages, rows, &mut tmp);
                for w in 0..WORDS {
                    out[w] |= tmp[w];
                }
            }
        }
    }
}

#[inline]
fn range_mask<R: RowSet>(
    col: ColView<'_>,
    stages: &[StageBuf],
    min: f64,
    max: f64,
    rows: R,
    out: &mut Mask,
) {
    let n = rows.len();
    *out = [0u64; WORDS];
    // One monomorphized flat comparison loop per arm (no per-row dispatch).
    macro_rules! cmp {
        ($get:expr) => {{
            let get = $get;
            for i in 0..n {
                let v: f64 = get(i);
                out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
            }
        }};
    }
    match col {
        ColView::F64(d) => cmp!(|i: usize| d[rows.row(i)]),
        ColView::I64(d) => cmp!(|i: usize| d[rows.row(i)] as f64),
        ColView::Codes(d) => cmp!(|i: usize| f64::from(d[rows.row(i)])),
        ColView::StagedNum(s) => {
            let b = &stages[s];
            cmp!(|i: usize| b.nums[i]);
            and_mask(out, &b.mask);
        }
        ColView::StagedCodes(s) => {
            let b = &stages[s];
            cmp!(|i: usize| f64::from(b.codes[i]));
            and_mask(out, &b.mask);
        }
        ColView::Virtual(c) => {
            for i in 0..n {
                if let Some(v) = c.numeric(rows.row(i)) {
                    out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
                }
            }
        }
    }
}

#[inline]
fn in_mask<R: RowSet>(
    col: ColView<'_>,
    stages: &[StageBuf],
    member: &[bool],
    rows: R,
    out: &mut Mask,
) {
    let n = rows.len();
    *out = [0u64; WORDS];
    match col {
        ColView::Codes(d) => {
            for i in 0..n {
                let hit = member
                    .get(d[rows.row(i)] as usize)
                    .copied()
                    .unwrap_or(false);
                out[i / 64] |= u64::from(hit) << (i % 64);
            }
        }
        ColView::StagedCodes(s) => {
            let b = &stages[s];
            for i in 0..n {
                let hit = member.get(b.codes[i] as usize).copied().unwrap_or(false);
                out[i / 64] |= u64::from(hit) << (i % 64);
            }
            and_mask(out, &b.mask);
        }
        ColView::Virtual(c) => {
            for i in 0..n {
                if let Some(code) = c.code(rows.row(i)) {
                    let hit = member.get(code as usize).copied().unwrap_or(false);
                    out[i / 64] |= u64::from(hit) << (i % 64);
                }
            }
        }
        // Numeric columns have no dictionary codes: nothing matches,
        // mirroring the per-row accessor returning `None`.
        ColView::F64(_) | ColView::I64(_) | ColView::StagedNum(_) => {}
    }
}

/// Computes dense bin slots for one morsel. Rows with a null binned value
/// get their `valid` bit cleared.
fn dense_slots<R: RowSet>(
    dims: &[BoundDim<'_>],
    stages: &[StageBuf],
    rows: R,
    slots: &mut [u32],
    valid: &mut Mask,
) {
    let n = rows.len();
    *valid = [u64::MAX; WORDS];
    mask_tail(valid, n);

    // Fused 2D fast path: two nominal dimensions whose codes are flat,
    // position-indexable slices (contiguous natural-order scan over direct
    // or staged codes) compute both coordinates in a single pass —
    // `slot = c0 + c1 · stride` — instead of one slots-array round-trip per
    // dimension. Devirtualized star joins land here, so a joined×joined
    // binning slots exactly like a de-normalized one.
    if let [BoundDim::Nominal {
        col: c0,
        dict_len: stride,
    }, BoundDim::Nominal { col: c1, .. }] = dims
    {
        // Flat position-indexed codes for the morsel, plus the staged
        // validity mask to fold into `valid`.
        fn flat<'x, R: RowSet>(
            col: &ColView<'x>,
            stages: &'x [StageBuf],
            rows: R,
            n: usize,
        ) -> Option<(&'x [u32], Option<&'x Mask>)> {
            match *col {
                ColView::Codes(d) => rows.base().map(|b| (&d[b..b + n], None)),
                ColView::StagedCodes(s) => {
                    let b = &stages[s];
                    Some((&b.codes[..n], Some(&b.mask)))
                }
                _ => None,
            }
        }
        if let (Some((s0, m0)), Some((s1, m1))) =
            (flat(c0, stages, rows, n), flat(c1, stages, rows, n))
        {
            let stride = (*stride).max(1);
            for (slot, (&a, &b)) in slots.iter_mut().zip(s0.iter().zip(s1)) {
                *slot = a + b * stride;
            }
            if let Some(m) = m0 {
                and_mask(valid, m);
            }
            if let Some(m) = m1 {
                and_mask(valid, m);
            }
            return;
        }
    }

    let mut stride = 1u32;
    for (di, dim) in dims.iter().enumerate() {
        // One monomorphized flat slotting loop per arm; staged-null rows
        // carry a placeholder 0 and are cleared from `valid` via the mask.
        macro_rules! slot_loop {
            ($get:expr) => {{
                let get = $get;
                if di == 0 {
                    for (i, slot) in slots.iter_mut().enumerate().take(n) {
                        *slot = get(i);
                    }
                } else {
                    for (i, slot) in slots.iter_mut().enumerate().take(n) {
                        *slot += get(i) * stride;
                    }
                }
            }};
        }
        // Contiguous natural-order fast path over a flat source slice.
        macro_rules! slot_span {
            ($src:expr, $of:expr) => {{
                let of = $of;
                if di == 0 {
                    for (slot, &v) in slots.iter_mut().zip($src) {
                        *slot = of(v);
                    }
                } else {
                    for (slot, &v) in slots.iter_mut().zip($src) {
                        *slot += of(v) * stride;
                    }
                }
            }};
        }
        match dim {
            BoundDim::Nominal { col, dict_len } => {
                let dict_len = *dict_len;
                match *col {
                    ColView::Codes(d) => match rows.base() {
                        Some(base) => slot_span!(&d[base..base + n], |c| c),
                        None => slot_loop!(|i: usize| d[rows.row(i)]),
                    },
                    ColView::StagedCodes(s) => {
                        let b = &stages[s];
                        and_mask(valid, &b.mask);
                        slot_span!(&b.codes[..n], |c| c);
                    }
                    ColView::Virtual(c) => {
                        for i in 0..n {
                            match c.code(rows.row(i)) {
                                Some(code) => {
                                    if di == 0 {
                                        slots[i] = code;
                                    } else {
                                        slots[i] += code * stride;
                                    }
                                }
                                None => valid[i / 64] &= !(1u64 << (i % 64)),
                            }
                        }
                    }
                    // Compilation rejects nominal binning over non-nominal
                    // columns, and staged/direct views preserve the type.
                    ColView::F64(_) | ColView::I64(_) | ColView::StagedNum(_) => {
                        unreachable!("nominal binning compiled over a non-nominal column")
                    }
                }
                stride *= dict_len.max(1);
            }
            BoundDim::Width {
                col,
                width,
                anchor,
                dense,
            } => {
                let (lo, len) = dense.expect("dense path requires bounded bucket space");
                // Arithmetic slotting: `floor((v−anchor)/width) − lo`,
                // clamped into the bounded space (a no-op when stats are
                // exact; it only guards slot-array bounds). The floor is
                // computed as truncate-and-adjust — identical to
                // `f64::floor` for every in-bounds value but free of the
                // libm call baseline x86-64 lowers `floor()` to, which
                // would otherwise dominate this loop. `lo` round-trips
                // through f64 exactly, so the slot decodes to the same
                // bucket index the hashed path computes, bit for bit.
                let lo_f = lo as f64;
                let top = (len - 1) as f64;
                let slot_of = move |v: f64| -> u32 {
                    let q = (v - anchor) / width;
                    let t = q as i64 as f64; // trunc(q), exact in-bounds
                    let fl = if t > q { t - 1.0 } else { t };
                    (fl - lo_f).clamp(0.0, top) as u32
                };
                match *col {
                    ColView::F64(d) => match rows.base() {
                        Some(base) => slot_span!(&d[base..base + n], slot_of),
                        None => slot_loop!(|i: usize| slot_of(d[rows.row(i)])),
                    },
                    ColView::I64(d) => slot_loop!(|i: usize| slot_of(d[rows.row(i)] as f64)),
                    ColView::Codes(d) => {
                        slot_loop!(|i: usize| slot_of(f64::from(d[rows.row(i)])))
                    }
                    ColView::StagedNum(s) => {
                        let b = &stages[s];
                        and_mask(valid, &b.mask);
                        slot_span!(&b.nums[..n], slot_of);
                    }
                    ColView::StagedCodes(s) => {
                        let b = &stages[s];
                        and_mask(valid, &b.mask);
                        slot_span!(&b.codes[..n], |c| slot_of(f64::from(c)));
                    }
                    ColView::Virtual(c) => {
                        for i in 0..n {
                            match c.numeric(rows.row(i)) {
                                Some(v) => {
                                    if di == 0 {
                                        slots[i] = slot_of(v);
                                    } else {
                                        slots[i] += slot_of(v) * stride;
                                    }
                                }
                                None => valid[i / 64] &= !(1u64 << (i % 64)),
                            }
                        }
                    }
                }
                stride *= len.max(1);
            }
        }
    }
}

/// Computes sparse bin keys (up to two coordinates) for one morsel. Rows
/// with a null binned value get their `valid` bit cleared.
fn sparse_keys<R: RowSet>(
    dims: &[BoundDim<'_>],
    stages: &[StageBuf],
    rows: R,
    k0: &mut [i64],
    k1: &mut [i64],
    valid: &mut Mask,
) {
    let n = rows.len();
    *valid = [u64::MAX; WORDS];
    mask_tail(valid, n);
    for (di, dim) in dims.iter().enumerate() {
        let out: &mut [i64] = if di == 0 { k0 } else { k1 };
        macro_rules! key_loop {
            ($get:expr) => {{
                let get = $get;
                for (i, o) in out.iter_mut().enumerate().take(n) {
                    *o = get(i);
                }
            }};
        }
        match dim {
            BoundDim::Nominal { col, .. } => match *col {
                ColView::Codes(d) => key_loop!(|i: usize| i64::from(d[rows.row(i)])),
                ColView::StagedCodes(s) => {
                    let b = &stages[s];
                    and_mask(valid, &b.mask);
                    key_loop!(|i: usize| i64::from(b.codes[i]));
                }
                ColView::Virtual(c) => {
                    for i in 0..n {
                        match c.code(rows.row(i)) {
                            Some(code) => out[i] = i64::from(code),
                            None => valid[i / 64] &= !(1u64 << (i % 64)),
                        }
                    }
                }
                ColView::F64(_) | ColView::I64(_) | ColView::StagedNum(_) => {
                    unreachable!("nominal binning compiled over a non-nominal column")
                }
            },
            BoundDim::Width {
                col, width, anchor, ..
            } => {
                let key_of = move |v: f64| ((v - anchor) / width).floor() as i64;
                match *col {
                    ColView::F64(d) => key_loop!(|i: usize| key_of(d[rows.row(i)])),
                    ColView::I64(d) => key_loop!(|i: usize| key_of(d[rows.row(i)] as f64)),
                    ColView::Codes(d) => {
                        key_loop!(|i: usize| key_of(f64::from(d[rows.row(i)])))
                    }
                    ColView::StagedNum(s) => {
                        let b = &stages[s];
                        and_mask(valid, &b.mask);
                        key_loop!(|i: usize| key_of(b.nums[i]));
                    }
                    ColView::StagedCodes(s) => {
                        let b = &stages[s];
                        and_mask(valid, &b.mask);
                        key_loop!(|i: usize| key_of(f64::from(b.codes[i])));
                    }
                    ColView::Virtual(c) => {
                        for i in 0..n {
                            match c.numeric(rows.row(i)) {
                                Some(v) => out[i] = key_of(v),
                                None => valid[i / 64] &= !(1u64 << (i % 64)),
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Per-row numeric value of a column view at morsel position `i` (`None`
/// when null) — the sparse store's row-at-a-time measure accessor.
#[inline(always)]
fn measure_value<R: RowSet>(
    col: &ColView<'_>,
    stages: &[StageBuf],
    rows: R,
    i: usize,
) -> Option<f64> {
    match *col {
        ColView::F64(d) => Some(d[rows.row(i)]),
        ColView::I64(d) => Some(d[rows.row(i)] as f64),
        ColView::Codes(d) => Some(f64::from(d[rows.row(i)])),
        ColView::StagedNum(s) => {
            let b = &stages[s];
            (b.mask[i / 64] >> (i % 64) & 1 == 1).then(|| b.nums[i])
        }
        ColView::StagedCodes(s) => {
            let b = &stages[s];
            (b.mask[i / 64] >> (i % 64) & 1 == 1).then(|| f64::from(b.codes[i]))
        }
        ColView::Virtual(c) => c.numeric(rows.row(i)),
    }
}

// ---------------------------------------------------------- accumulation

/// The coordinate kind of one sparse binning dimension.
#[derive(Debug, Clone, Copy)]
enum CoordKind {
    Cat,
    Bucket,
}

/// Slot-decode metadata of one dense binning dimension: its bounded size
/// and how a slot coordinate maps back to a [`BinCoord`].
#[derive(Debug, Clone, Copy)]
struct DenseDim {
    /// Size of this dimension's bin space (`slot = c0 + c1 · len0`).
    len: usize,
    /// `None` = nominal (coordinate is a dictionary code); `Some(lo)` =
    /// bucketed (coordinate `c` decodes to bucket `lo + c`).
    bucket_lo: Option<i64>,
}

enum Store {
    /// Flat-array accumulation over a bounded bin space (nominal
    /// dictionaries and/or statistics-bounded bucketings).
    Dense {
        /// Per-dimension slot decode metadata (1 or 2 entries).
        dims: Vec<DenseDim>,
        counts: Vec<u64>,
        /// `space * nmeasures` measure accumulators, slot-major.
        measures: Vec<MeasureAcc>,
        /// Slots with `counts > 0`, in first-touch order — snapshots only
        /// walk populated bins, not the whole space.
        touched: Vec<u32>,
    },
    /// Hashed accumulation for unbounded bucket spaces. The map stores
    /// indices into a dense `Vec<BinAcc>` so the common consecutive-rows-
    /// same-bucket case skips the probe via a last-key memo, and finish
    /// walks a contiguous vector.
    Sparse {
        kinds: Vec<CoordKind>,
        index: FxHashMap<(i64, i64), u32>,
        accs: Vec<((i64, i64), BinAcc)>,
    },
}

/// The vectorized accumulator driven by [`CompiledPlan`] morsel kernels.
///
/// Mirrors the statistics of [`GroupedAcc`] (which remains the scalar
/// reference and merge/finish representation); [`BatchAcc::to_grouped`]
/// materializes into it in O(populated bins).
pub(crate) struct BatchAcc {
    aggs: Vec<(AggFunc, bool)>,
    nmeasures: usize,
    store: Store,
    pub rows_seen: u64,
    pub rows_matched: u64,
    // Reusable per-morsel scratch.
    slots: Vec<u32>,
    k0: Vec<i64>,
    k1: Vec<i64>,
    /// Stage buffers, parallel to the plan's [`StageSpec`]s.
    stages: Vec<StageBuf>,
    /// Staged FK values, parallel to the plan's distinct FK columns.
    fk_stage: Vec<Vec<u32>>,
}

impl BatchAcc {
    pub fn for_plan(plan: &CompiledPlan) -> BatchAcc {
        let aggs: Vec<(AggFunc, bool)> = plan
            .query()
            .aggregates()
            .iter()
            .map(|a| (a.func, a.dimension.is_some()))
            .collect();
        let nmeasures = aggs.len();
        let store = match plan.acc_mode() {
            AccMode::Dense(space) => Store::Dense {
                dims: plan
                    .dims
                    .iter()
                    .map(|d| match d {
                        PlannedDim::Nominal { dict_len, .. } => DenseDim {
                            len: (*dict_len).max(1),
                            bucket_lo: None,
                        },
                        PlannedDim::Width { dense, .. } => {
                            let dense = dense.expect("dense mode requires bounded bucket space");
                            DenseDim {
                                len: dense.len,
                                bucket_lo: Some(dense.lo),
                            }
                        }
                    })
                    .collect(),
                counts: vec![0; space],
                measures: vec![MeasureAcc::new(); space * nmeasures],
                touched: Vec::new(),
            },
            AccMode::Sparse => Store::Sparse {
                kinds: plan
                    .dims
                    .iter()
                    .map(|d| match d {
                        PlannedDim::Nominal { .. } => CoordKind::Cat,
                        PlannedDim::Width { .. } => CoordKind::Bucket,
                    })
                    .collect(),
                index: FxHashMap::default(),
                accs: Vec::new(),
            },
        };
        BatchAcc {
            aggs,
            nmeasures,
            store,
            rows_seen: 0,
            rows_matched: 0,
            slots: vec![0; MORSEL],
            k0: vec![0; MORSEL],
            k1: vec![0; MORSEL],
            stages: plan.stages.iter().map(StageBuf::for_spec).collect(),
            fk_stage: plan.fk_cols.iter().map(|_| vec![0; MORSEL]).collect(),
        }
    }

    /// Processes one morsel: stage → filter → bin → accumulate. Returns the
    /// number of rows that passed the filter (cost-model input).
    pub fn process_morsel<R: RowSet>(&mut self, bound: &BoundPlan<'_>, rows: R) -> usize {
        let n = rows.len();
        debug_assert!(n <= MORSEL);
        self.rows_seen += n as u64;

        // 1. Stage the joined / nullable columns the *filter* reads.
        stage_fks(bound, rows, &mut self.fk_stage, &bound.phases.filter_fks);
        stage_cols(
            bound,
            rows,
            &self.fk_stage,
            &mut self.stages,
            &bound.phases.filter_stages,
        );

        // 2. Filter.
        let mut fmask: Mask = [u64::MAX; WORDS];
        mask_tail(&mut fmask, n);
        if let Some(filter) = &bound.filter {
            eval_filter(filter, &self.stages, rows, &mut fmask);
        }
        let matched: usize = fmask.iter().map(|w| w.count_ones() as usize).sum();
        self.rows_matched += matched as u64;
        if matched == 0 {
            // Binning and measure staging is deferred to here precisely so
            // a fully-filtered-out morsel never pays for it.
            return 0;
        }

        // 3. Stage the remaining (binning / measure) columns.
        stage_fks(bound, rows, &mut self.fk_stage, &bound.phases.post_fks);
        stage_cols(
            bound,
            rows,
            &self.fk_stage,
            &mut self.stages,
            &bound.phases.post_stages,
        );
        let stages = &self.stages;

        // 4. Bin keys, 5. accumulate matching rows.
        let mut valid: Mask = [0u64; WORDS];
        match &mut self.store {
            Store::Dense {
                counts,
                measures,
                touched,
                ..
            } => {
                dense_slots(&bound.dims, stages, rows, &mut self.slots, &mut valid);
                // Counts pass. Full words (the common unfiltered case) skip
                // the per-bit scan; iteration order is unchanged either way.
                for w in 0..WORDS {
                    let mut bits = fmask[w] & valid[w];
                    if bits == u64::MAX {
                        for &slot in &self.slots[w * 64..w * 64 + 64] {
                            let slot = slot as usize;
                            if counts[slot] == 0 {
                                touched.push(slot as u32);
                            }
                            counts[slot] += 1;
                        }
                    } else {
                        while bits != 0 {
                            let i = w * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let slot = self.slots[i] as usize;
                            if counts[slot] == 0 {
                                touched.push(slot as u32);
                            }
                            counts[slot] += 1;
                        }
                    }
                }
                // One pass per measure column, so the column-type dispatch
                // runs once per morsel instead of once per row. Per (bin,
                // measure) the update sequence stays exactly row order.
                let nmeasures = self.nmeasures;
                let slots = &self.slots;
                // A flat measure-update pass: walk the matching valid rows
                // (optionally AND-ing a staged mask) and fold `get(i)`
                // into the row's bin accumulator.
                macro_rules! measure_pass {
                    ($m:expr, $mask:expr, $get:expr) => {{
                        let get = $get;
                        for w in 0..WORDS {
                            let mut bits = fmask[w] & valid[w] & $mask[w];
                            if bits == u64::MAX {
                                // Full word: straight-line row loop, same
                                // update order as the bit scan below.
                                for i in w * 64..w * 64 + 64 {
                                    measures[slots[i] as usize * nmeasures + $m].update(get(i));
                                }
                            } else {
                                while bits != 0 {
                                    let i = w * 64 + bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    measures[slots[i] as usize * nmeasures + $m].update(get(i));
                                }
                            }
                        }
                    }};
                }
                let ones = [u64::MAX; WORDS];
                for (m, col) in bound.measures.iter().enumerate() {
                    let Some(col) = col else { continue };
                    match *col {
                        ColView::F64(d) => measure_pass!(m, ones, |i: usize| d[rows.row(i)]),
                        ColView::I64(d) => {
                            measure_pass!(m, ones, |i: usize| d[rows.row(i)] as f64)
                        }
                        ColView::Codes(d) => {
                            measure_pass!(m, ones, |i: usize| f64::from(d[rows.row(i)]))
                        }
                        ColView::StagedNum(s) => {
                            let b = &stages[s];
                            measure_pass!(m, b.mask, |i: usize| b.nums[i]);
                        }
                        ColView::StagedCodes(s) => {
                            let b = &stages[s];
                            measure_pass!(m, b.mask, |i: usize| f64::from(b.codes[i]));
                        }
                        ColView::Virtual(c) => {
                            for w in 0..WORDS {
                                let mut bits = fmask[w] & valid[w];
                                while bits != 0 {
                                    let i = w * 64 + bits.trailing_zeros() as usize;
                                    bits &= bits - 1;
                                    if let Some(v) = c.numeric(rows.row(i)) {
                                        measures[slots[i] as usize * nmeasures + m].update(v);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Store::Sparse { index, accs, .. } => {
                sparse_keys(
                    &bound.dims,
                    stages,
                    rows,
                    &mut self.k0,
                    &mut self.k1,
                    &mut valid,
                );
                let two_d = bound.dims.len() == 2;
                let nmeasures = self.nmeasures;
                // Consecutive rows often land in the same bin; memoize the
                // last slot to skip the hash probe.
                let mut last: Option<((i64, i64), u32)> = None;
                for w in 0..WORDS {
                    let mut bits = fmask[w] & valid[w];
                    while bits != 0 {
                        let i = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let key = (self.k0[i], if two_d { self.k1[i] } else { 0 });
                        let slot = match last {
                            Some((k, s)) if k == key => s,
                            _ => {
                                let s = *index.entry(key).or_insert_with(|| {
                                    accs.push((
                                        key,
                                        BinAcc {
                                            count: 0,
                                            measures: vec![MeasureAcc::new(); nmeasures],
                                        },
                                    ));
                                    (accs.len() - 1) as u32
                                });
                                last = Some((key, s));
                                s
                            }
                        };
                        let acc = &mut accs[slot as usize].1;
                        acc.count += 1;
                        for (m, col) in bound.measures.iter().enumerate() {
                            if let Some(col) = col {
                                if let Some(v) = measure_value(col, stages, rows, i) {
                                    acc.measures[m].update(v);
                                }
                            }
                        }
                    }
                }
            }
        }
        matched
    }

    /// Materializes into the canonical [`GroupedAcc`] representation, in
    /// O(populated bins).
    pub fn to_grouped(&self) -> GroupedAcc {
        let mut bins: FxHashMap<BinKey, BinAcc> = FxHashMap::default();
        match &self.store {
            Store::Dense {
                dims,
                counts,
                measures,
                touched,
            } => {
                let decode = |dim: &DenseDim, c: usize| match dim.bucket_lo {
                    None => BinCoord::Cat(c as u32),
                    Some(lo) => BinCoord::Bucket(lo + c as i64),
                };
                for &slot in touched {
                    let slot = slot as usize;
                    let key = if dims.len() == 2 {
                        BinKey::d2(
                            decode(&dims[0], slot % dims[0].len),
                            decode(&dims[1], slot / dims[0].len),
                        )
                    } else {
                        BinKey::d1(decode(&dims[0], slot))
                    };
                    bins.insert(
                        key,
                        BinAcc {
                            count: counts[slot],
                            measures: measures[slot * self.nmeasures..][..self.nmeasures].to_vec(),
                        },
                    );
                }
            }
            Store::Sparse { kinds, accs, .. } => {
                for ((a, b), acc) in accs {
                    let coord = |kind: CoordKind, v: i64| match kind {
                        CoordKind::Cat => BinCoord::Cat(v as u32),
                        CoordKind::Bucket => BinCoord::Bucket(v),
                    };
                    let key = if kinds.len() == 2 {
                        BinKey::d2(coord(kinds[0], *a), coord(kinds[1], *b))
                    } else {
                        BinKey::d1(coord(kinds[0], *a))
                    };
                    bins.insert(key, acc.clone());
                }
            }
        }
        GroupedAcc::from_parts(self.aggs.clone(), bins, self.rows_seen, self.rows_matched)
    }

    /// Merges another accumulator for the same plan into this one.
    ///
    /// This is the partial-merge step of the morsel dispatcher: chunk
    /// partials are folded into the base accumulator *in chunk order*, so
    /// the floating-point merge sequence per bin is fixed by the chunk
    /// partition alone — never by worker count or scheduling.
    pub fn merge_from(&mut self, other: &BatchAcc) {
        debug_assert_eq!(self.aggs, other.aggs);
        self.rows_seen += other.rows_seen;
        self.rows_matched += other.rows_matched;
        match (&mut self.store, &other.store) {
            (
                Store::Dense {
                    counts,
                    measures,
                    touched,
                    ..
                },
                Store::Dense {
                    counts: ocounts,
                    measures: omeasures,
                    touched: otouched,
                    ..
                },
            ) => {
                for &slot in otouched {
                    let slot = slot as usize;
                    if counts[slot] == 0 {
                        touched.push(slot as u32);
                    }
                    counts[slot] += ocounts[slot];
                    for m in 0..self.nmeasures {
                        measures[slot * self.nmeasures + m]
                            .merge(&omeasures[slot * self.nmeasures + m]);
                    }
                }
            }
            (Store::Sparse { index, accs, .. }, Store::Sparse { accs: oaccs, .. }) => {
                for (key, oacc) in oaccs {
                    match index.get(key) {
                        Some(&slot) => {
                            let acc = &mut accs[slot as usize].1;
                            acc.count += oacc.count;
                            for (m, o) in acc.measures.iter_mut().zip(&oacc.measures) {
                                m.merge(o);
                            }
                        }
                        None => {
                            index.insert(*key, accs.len() as u32);
                            accs.push((*key, oacc.clone()));
                        }
                    }
                }
            }
            _ => unreachable!("partials of one plan share an accumulation mode"),
        }
    }

    /// Clears the accumulator for reuse (the dispatcher's partial pool),
    /// in O(populated bins) rather than O(bin space).
    pub fn reset(&mut self) {
        self.rows_seen = 0;
        self.rows_matched = 0;
        match &mut self.store {
            Store::Dense {
                counts,
                measures,
                touched,
                ..
            } => {
                for &slot in touched.iter() {
                    let slot = slot as usize;
                    counts[slot] = 0;
                    for m in 0..self.nmeasures {
                        measures[slot * self.nmeasures + m] = MeasureAcc::new();
                    }
                }
                touched.clear();
            }
            Store::Sparse { index, accs, .. } => {
                index.clear();
                accs.clear();
            }
        }
    }
}
