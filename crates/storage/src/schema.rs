//! Table schemas: field names and data types.

use crate::error::StorageError;
use serde::{Deserialize, Serialize};

/// Logical data type of a column.
///
/// IDEBench datasets (see Figure 2 of the paper) use two visualization-level
/// kinds of dimensions — *quantitative* and *nominal* — plus integer keys for
/// star-schema joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DataType {
    /// 64-bit floating point, used for all quantitative measures.
    Float,
    /// 64-bit signed integer, used for keys and discrete counts.
    Int,
    /// Dictionary-encoded categorical string (carrier, airport, …).
    Nominal,
}

impl DataType {
    /// Short lowercase name used in error messages and reports.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Float => "float",
            DataType::Int => "int",
            DataType::Nominal => "nominal",
        }
    }

    /// Whether the type is binned with quantitative (range) binning.
    pub fn is_quantitative(self) -> bool {
        matches!(self, DataType::Float | DataType::Int)
    }
}

/// A named, typed column slot in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within the schema.
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of [`Field`]s describing a table layout.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields. Field names must be unique.
    pub fn new(fields: Vec<Field>) -> Self {
        debug_assert!(
            {
                let mut names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                names.sort_unstable();
                names.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate field names in schema"
        );
        Schema { fields }
    }

    /// The fields, in column order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Field for the given name.
    pub fn field(&self, name: &str) -> Result<&Field, StorageError> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// Returns a new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, StorageError> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Schema::new(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights_like() -> Schema {
        Schema::new(vec![
            Field::new("carrier", DataType::Nominal),
            Field::new("dep_delay", DataType::Float),
            Field::new("distance", DataType::Float),
            Field::new("origin_key", DataType::Int),
        ])
    }

    #[test]
    fn index_of_finds_columns() {
        let s = flights_like();
        assert_eq!(s.index_of("carrier").unwrap(), 0);
        assert_eq!(s.index_of("origin_key").unwrap(), 3);
    }

    #[test]
    fn index_of_unknown_errors() {
        let s = flights_like();
        assert_eq!(
            s.index_of("nope"),
            Err(StorageError::UnknownColumn("nope".into()))
        );
    }

    #[test]
    fn project_preserves_order() {
        let s = flights_like();
        let p = s.project(&["distance", "carrier"]).unwrap();
        assert_eq!(p.fields()[0].name, "distance");
        assert_eq!(p.fields()[1].name, "carrier");
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn datatype_quantitative_classification() {
        assert!(DataType::Float.is_quantitative());
        assert!(DataType::Int.is_quantitative());
        assert!(!DataType::Nominal.is_quantitative());
    }

    #[test]
    fn schema_serde_roundtrip() {
        let s = flights_like();
        let js = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str(&js).unwrap();
        assert_eq!(s, back);
    }
}
