//! Scan-throughput benchmark: emits `BENCH_scan.json` with rows/sec for the
//! vectorized execution core on the paper's canonical scan shapes, plus the
//! retained scalar reference path for the speedup ratio, per-worker-count
//! scaling rows for the parallel morsel dispatcher, and star-schema join
//! cases comparing the devirtualized join layer against the pre-cache
//! per-row FK-indirection path ([`JoinPolicy::Indirect`]).
//!
//! Doubles as the CI regression gate: the process exits non-zero if any
//! vectorized case drops below 1× the scalar path, or any star-join case
//! below 1× the FK-indirection path (set `IDEBENCH_BENCH_NO_GATE=1` to
//! disable when exploring).

use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
use idebench_core::{FilterExpr, Predicate, Query, VizSpec};
use idebench_query::{
    available_workers, execute_exact, execute_exact_parallel, execute_exact_scalar,
    execute_exact_with_policy, AccMode, CompiledPlan, JoinPolicy,
};
use idebench_storage::Dataset;
use std::sync::Arc;
use std::time::Instant;

const ROWS: usize = 500_000;
/// Larger table for the worker-scaling rows, so per-chunk work dominates
/// thread-pool overhead.
const SCALING_ROWS: usize = 2_000_000;

fn time_rows_per_sec(rows: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up, then best of several measured repetitions.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    rows as f64 / best
}

fn filtered_1d_nominal() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
    );
    Query::for_viz(
        &spec,
        Some(
            FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["C00".into(), "C01".into(), "C02".into()],
            })
            .and(FilterExpr::Pred(Predicate::Range {
                column: "dep_delay".into(),
                min: 0.0,
                max: 60.0,
            })),
        ),
    )
}

fn exact_scan() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    );
    Query::for_viz(&spec, None)
}

/// Bucketed × bucketed 2D aggregation. The delay columns' min/max stats
/// bound both bucket spaces, so this lowers to the dense flat-array store.
fn binned_2d() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            },
            BinDef::Width {
                dimension: "arr_delay".into(),
                width: 10.0,
                anchor: 0.0,
            },
        ],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Avg, "arr_delay"),
        ],
    );
    Query::for_viz(&spec, None)
}

/// Nominal × bucketed 2D aggregation — the mixed shape the dense bucketed
/// lowering targets (heatmap of carrier × delay band).
fn dense_bucketed_2d() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![
            BinDef::Nominal {
                dimension: "carrier".into(),
            },
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: 5.0,
                anchor: 0.0,
            },
        ],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Avg, "arr_delay"),
        ],
    );
    Query::for_viz(&spec, None)
}

/// 1D nominal binning reached through a foreign key (star schema).
fn star_1d_nominal_via_fk() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
    );
    Query::for_viz(&spec, None)
}

/// 2D joined×joined dense aggregation: both binning dimensions live in
/// dimension tables, so the pre-cache path pays the FK indirection twice
/// per row — the shape the join-devirtualization layer targets. COUNT
/// keeps the case join-bound (measure-update cost is identical on every
/// path; the 1D case covers measures next to joins).
fn star_joined_2d_agg() -> Query {
    let spec = VizSpec::new(
        "bench",
        "flights",
        vec![
            BinDef::Nominal {
                dimension: "carrier".into(),
            },
            BinDef::Nominal {
                dimension: "origin_state".into(),
            },
        ],
        vec![AggregateSpec::count()],
    );
    Query::for_viz(&spec, None)
}

fn main() {
    let table = idebench_datagen::flights::generate(ROWS, 42);
    let ds = Dataset::Denormalized(Arc::new(table.clone()));
    let star = idebench_datagen::normalize_flights(&table).expect("flights normalize");

    let cases: [(&str, Query); 4] = [
        ("exact_scan_1d_nominal_count", exact_scan()),
        ("filtered_scan_1d_nominal_avg", filtered_1d_nominal()),
        ("binned_2d_agg", binned_2d()),
        ("dense_bucketed_2d_agg", dense_bucketed_2d()),
    ];

    let mut entries = Vec::new();
    let mut regressions = Vec::new();
    for (name, q) in &cases {
        let plan = CompiledPlan::compile(&ds, q).expect("bench query compiles");
        let dense = matches!(plan.acc_mode(), AccMode::Dense(_));
        assert_eq!(
            execute_exact(&ds, q).unwrap(),
            execute_exact_scalar(&ds, q).unwrap(),
            "vectorized and scalar paths must agree on {name}"
        );
        let vec_rps = time_rows_per_sec(ROWS, || {
            let _ = execute_exact(&ds, q).unwrap();
        });
        let scalar_rps = time_rows_per_sec(ROWS, || {
            let _ = execute_exact_scalar(&ds, q).unwrap();
        });
        let speedup = vec_rps / scalar_rps;
        println!(
            "{name:<32} vectorized {vec_rps:>12.0} rows/s   scalar {scalar_rps:>12.0} rows/s   speedup {speedup:.2}x   {}",
            if dense { "dense" } else { "sparse" }
        );
        if speedup < 1.0 {
            regressions.push(format!("{name}: {speedup:.2}x"));
        }
        entries.push(serde_json::json!({
            "case": name,
            "rows": ROWS,
            "dense": dense,
            "vectorized_rows_per_sec": vec_rps,
            "scalar_rows_per_sec": scalar_rps,
            "speedup": speedup,
        }));
    }

    // Star-schema join cases: the devirtualized join layer (shared
    // fact-ordered materializations + staged-FK translation) against the
    // pre-cache per-row FK-indirection path on the same normalized data.
    // Results are asserted bit-identical across the three paths first.
    let star_cases: [(&str, Query); 2] = [
        ("star_1d_nominal_via_fk", star_1d_nominal_via_fk()),
        ("star_joined_2d_agg", star_joined_2d_agg()),
    ];
    for (name, q) in &star_cases {
        let plan = CompiledPlan::compile(&star, q).expect("star bench query compiles");
        let dense = matches!(plan.acc_mode(), AccMode::Dense(_));
        let scalar_ref = execute_exact_scalar(&star, q).unwrap();
        assert_eq!(
            execute_exact(&star, q).unwrap(),
            scalar_ref,
            "devirtualized star path must agree with scalar on {name}"
        );
        assert_eq!(
            execute_exact_with_policy(&star, q, 1, JoinPolicy::Indirect).unwrap(),
            scalar_ref,
            "indirect star path must agree with scalar on {name}"
        );
        let devirt_rps = time_rows_per_sec(ROWS, || {
            let _ = execute_exact(&star, q).unwrap();
        });
        let indirect_rps = time_rows_per_sec(ROWS, || {
            let _ = execute_exact_with_policy(&star, q, 1, JoinPolicy::Indirect).unwrap();
        });
        let scalar_rps = time_rows_per_sec(ROWS, || {
            let _ = execute_exact_scalar(&star, q).unwrap();
        });
        let vs_indirect = devirt_rps / indirect_rps;
        let vs_scalar = devirt_rps / scalar_rps;
        println!(
            "{name:<32} devirtualized {devirt_rps:>11.0} rows/s   fk-indirect {indirect_rps:>11.0} rows/s   speedup {vs_indirect:.2}x (vs scalar {vs_scalar:.2}x)   {}",
            if dense { "dense" } else { "sparse" }
        );
        if vs_indirect < 1.0 {
            regressions.push(format!("{name}: {vs_indirect:.2}x vs fk-indirect"));
        }
        entries.push(serde_json::json!({
            "case": name,
            "rows": ROWS,
            "dense": dense,
            "joined": true,
            "vectorized_rows_per_sec": devirt_rps,
            "indirect_rows_per_sec": indirect_rps,
            "scalar_rows_per_sec": scalar_rps,
            "speedup": vs_scalar,
            "speedup_vs_indirect": vs_indirect,
        }));
    }
    let join_stats = star.as_star().unwrap().join_cache_stats();
    println!(
        "join cache: {} materializations, {} bytes, {} hits",
        join_stats.entries, join_stats.bytes, join_stats.hits
    );

    // Worker-scaling rows on the unfiltered count scan: rows/sec per worker
    // count, speedups relative to the single-worker vectorized baseline
    // (PR 1's path) and to the scalar reference. Results are asserted
    // bit-identical across worker counts before timing.
    let cores = available_workers();
    let scaling_ds = Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(
        SCALING_ROWS,
        42,
    )));
    let scan = exact_scan();
    let scalar_ref = execute_exact_scalar(&scaling_ds, &scan).unwrap();
    let scalar_rps = time_rows_per_sec(SCALING_ROWS, || {
        let _ = execute_exact_scalar(&scaling_ds, &scan).unwrap();
    });
    let mut worker_counts = vec![1usize, 2, 4];
    if !worker_counts.contains(&cores) {
        worker_counts.push(cores);
    }
    let mut scaling = Vec::new();
    let mut baseline_rps = f64::NAN;
    for &workers in &worker_counts {
        assert_eq!(
            execute_exact_parallel(&scaling_ds, &scan, workers).unwrap(),
            scalar_ref,
            "parallel scan ({workers} workers) must stay bit-identical to scalar"
        );
        let rps = time_rows_per_sec(SCALING_ROWS, || {
            let _ = execute_exact_parallel(&scaling_ds, &scan, workers).unwrap();
        });
        if workers == 1 {
            baseline_rps = rps;
        }
        println!(
            "count_scan_workers_{workers:<2}           parallel   {rps:>12.0} rows/s   vs 1-worker {:.2}x   vs scalar {:.2}x",
            rps / baseline_rps,
            rps / scalar_rps,
        );
        scaling.push(serde_json::json!({
            "case": "exact_scan_1d_nominal_count",
            "rows": SCALING_ROWS,
            "workers": workers,
            "rows_per_sec": rps,
            "speedup_vs_single_worker": rps / baseline_rps,
            "speedup_vs_scalar": rps / scalar_rps,
        }));
    }

    // Multi-worker rows on a 1-core machine only measure pool overhead;
    // flag them so nobody reads ~1.0x as the dispatcher's ceiling.
    let scaling_note = if cores == 1 {
        "machine has 1 core: scaling rows are non-evidentiary (they measure \
         dispatch overhead, not parallel speedup); regenerate on a \
         multi-core host"
    } else {
        ""
    };
    let report = serde_json::json!({
        "benchmark": "scan",
        "available_cores": cores,
        "scaling_note": scaling_note,
        "join_cache": {
            "materializations": join_stats.entries,
            "bytes": join_stats.bytes,
            "hits": join_stats.hits,
        },
        "cases": entries,
        "scaling": scaling,
    });
    std::fs::write(
        "BENCH_scan.json",
        serde_json::to_string_pretty(&report).unwrap(),
    )
    .expect("write BENCH_scan.json");
    println!("wrote BENCH_scan.json (available cores: {cores})");

    if !regressions.is_empty() && std::env::var_os("IDEBENCH_BENCH_NO_GATE").is_none() {
        eprintln!("vectorized cases regressed below 1x vs scalar: {regressions:?}");
        std::process::exit(1);
    }
}
