//! Property-based tests of core invariants, spanning storage, metrics,
//! estimators, the workload generator, and the driver.

use idebench::core::spec::{AggFunc, AggregateSpec, BinDef, FilterExpr, Predicate};
use idebench::core::{AggResult, BinCoord, BinKey, BinStats, Metrics, Query, VizSpec};
use idebench::query::{execute_exact, ChunkedRun, SnapshotMode};
use idebench::storage::{DataType, Dataset, SelVec, TableBuilder, Value};
use idebench::workflow::{WorkflowGenerator, WorkflowType};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------- storage

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SelVec set algebra agrees with a naive Vec<bool> model.
    #[test]
    fn selvec_matches_bool_model(bits_a in prop::collection::vec(any::<bool>(), 1..200),
                                 bits_b_seed in any::<u64>()) {
        let n = bits_a.len();
        // Derive b deterministically from the seed so lengths match.
        let bits_b: Vec<bool> = (0..n).map(|i| (bits_b_seed >> (i % 64)) & 1 == 1).collect();
        let a = SelVec::from_bools(n, bits_a.iter().copied());
        let b = SelVec::from_bools(n, bits_b.iter().copied());

        let mut and = a.clone();
        and.intersect(&b);
        let mut or = a.clone();
        or.union(&b);
        let mut not = a.clone();
        not.negate();

        for i in 0..n {
            prop_assert_eq!(and.contains(i), bits_a[i] && bits_b[i]);
            prop_assert_eq!(or.contains(i), bits_a[i] || bits_b[i]);
            prop_assert_eq!(not.contains(i), !bits_a[i]);
        }
        prop_assert_eq!(a.count(), bits_a.iter().filter(|&&x| x).count());
        prop_assert_eq!(a.iter().count(), a.count());
    }

    /// CSV serialization round-trips arbitrary typed tables.
    #[test]
    fn csv_roundtrip(rows in prop::collection::vec(
        (any::<i32>(), -1000.0f64..1000.0, "[a-z]{1,6}", any::<bool>()), 1..40)) {
        let mut b = TableBuilder::with_fields(
            "t",
            &[("i", DataType::Int), ("f", DataType::Float), ("s", DataType::Nominal)],
        );
        for (i, f, s, null_f) in &rows {
            let fval = if *null_f { Value::Null } else { Value::Float(*f) };
            b.push_row(&[Value::Int(i64::from(*i)), fval, Value::Str(s.clone())]).unwrap();
        }
        let t = b.finish();
        let mut buf = Vec::new();
        idebench::storage::write_csv(&t, &mut buf).unwrap();
        let back = idebench::storage::read_csv("t", buf.as_slice()).unwrap();
        prop_assert_eq!(back.num_rows(), t.num_rows());
        for row in 0..t.num_rows() {
            for col in 0..t.num_columns() {
                prop_assert_eq!(t.value_at(col, row), back.value_at(col, row));
            }
        }
    }
}

// ---------------------------------------------------------------- metrics

fn arb_result(max_bins: usize) -> impl Strategy<Value = AggResult> {
    prop::collection::btree_map(
        0i64..max_bins as i64,
        (0.1f64..1e4, 0.0f64..10.0),
        1..max_bins,
    )
    .prop_map(|bins| {
        let mut r = AggResult {
            processed_fraction: 0.5,
            ..AggResult::default()
        };
        for (k, (v, m)) in bins {
            r.insert(
                BinKey::d1(BinCoord::Bucket(k)),
                BinStats::approximate(vec![v], vec![m]),
            );
        }
        r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Metric ranges hold for arbitrary result/ground-truth pairs.
    #[test]
    fn metric_ranges(result in arb_result(20), mut gt in arb_result(20)) {
        gt.exact = true;
        gt.processed_fraction = 1.0;
        let m = Metrics::evaluate(&result, &gt);
        prop_assert!((0.0..=1.0).contains(&m.missing_bins));
        if let Some(c) = m.cosine_distance {
            prop_assert!((0.0..=1.0).contains(&c), "cosine {c}");
        }
        if let Some(s) = m.smape {
            prop_assert!((0.0..=1.0).contains(&s), "smape {s}");
        }
        if let Some(e) = m.rel_error_avg {
            prop_assert!(e >= 0.0);
        }
        prop_assert!(m.bins_delivered == result.bins_delivered());
        prop_assert!(m.bins_out_of_margin <= m.bins_delivered);
    }

    /// A result compared against itself is perfect.
    #[test]
    fn self_comparison_is_perfect(mut r in arb_result(20)) {
        r.exact = true;
        let m = Metrics::evaluate(&r, &r);
        prop_assert_eq!(m.missing_bins, 0.0);
        prop_assert_eq!(m.rel_error_avg, Some(0.0));
        prop_assert!(m.cosine_distance.unwrap() < 1e-9);
        prop_assert_eq!(m.bins_out_of_margin, 0);
    }
}

// ------------------------------------------------------------- estimators

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A completed chunked scan equals the one-shot exact executor no
    /// matter how the budget is sliced.
    #[test]
    fn chunked_equals_oneshot(budget in 1u64..5_000, rows in 100usize..2_000) {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[("carrier", DataType::Nominal), ("dep_delay", DataType::Float)],
        );
        for i in 0..rows {
            let c = if i % 7 < 3 { "AA" } else { "DL" };
            b.push_row(&[c.into(), ((i % 101) as f64).into()]).unwrap();
        }
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width { dimension: "dep_delay".into(), width: 20.0, anchor: 0.0 }],
            vec![AggregateSpec::count(), AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        let q = Query::for_viz(&spec, Some(FilterExpr::Pred(Predicate::In {
            column: "carrier".into(),
            values: vec!["AA".into()],
        })));
        let mut run = ChunkedRun::new(ds.clone(), q.clone(), SnapshotMode::Exact).unwrap();
        while !run.is_done() {
            let used = run.advance(budget);
            if used == 0 && !run.is_done() {
                // Budget below row cost cannot progress; top it up.
                run.advance(budget + 8);
            }
        }
        prop_assert_eq!(run.snapshot().unwrap(), execute_exact(&ds, &q).unwrap());
    }

    /// Count estimates from a shuffled prefix hit the truth within a few
    /// margins (CLT sanity at fixed seeds).
    #[test]
    fn estimates_within_margins(seed in 0u64..30) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let rows = 8_000usize;
        let t = idebench::datagen::flights::generate(rows, seed);
        let ds = Dataset::Denormalized(Arc::new(t));
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal { dimension: "carrier".into() }],
            vec![AggregateSpec::count()],
        );
        let q = Query::for_viz(&spec, None);
        let mut order: Vec<u32> = (0..rows as u32).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let mut run = ChunkedRun::with_order(
            ds.clone(),
            q.clone(),
            Some(Arc::new(order)),
            SnapshotMode::Estimate { z: 1.96, population: rows as u64 },
        ).unwrap();
        run.advance(rows as u64 / 5); // 20% sample
        let est = run.snapshot().unwrap();
        let gt = execute_exact(&ds, &q).unwrap();
        let mut inside = 0usize;
        let mut total = 0usize;
        for (key, stats) in &gt.bins {
            let Some(bin) = est.bins.get(key) else { continue };
            total += 1;
            // Allow 2 margins of slack: the margin itself is estimated.
            if (bin.values[0] - stats.values[0]).abs() <= 2.0 * bin.margins[0] + 1e-9 {
                inside += 1;
            }
        }
        prop_assert!(total > 0);
        prop_assert!(
            inside as f64 >= total as f64 * 0.9,
            "{inside}/{total} bins within 2 margins"
        );
    }
}

// -------------------------------------------------------------- generator

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any generated workflow replays through the viz graph without error
    /// and composes valid queries.
    #[test]
    fn generated_workflows_always_valid(seed in any::<u64>(), kind_idx in 0usize..5,
                                        len in 1usize..30) {
        let kind = WorkflowType::ALL[kind_idx];
        let wf = WorkflowGenerator::new(kind, seed).generate(len);
        prop_assert_eq!(wf.interactions.len(), len);
        let mut graph = idebench::core::VizGraph::new();
        for interaction in &wf.interactions {
            let affected = graph.apply(interaction)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            for viz in affected {
                graph.query_for(&viz)
                    .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            }
        }
    }

    /// Workflow JSON round-trips for arbitrary generated workflows.
    #[test]
    fn workflow_json_roundtrip(seed in any::<u64>(), kind_idx in 0usize..5) {
        let kind = WorkflowType::ALL[kind_idx];
        let wf = WorkflowGenerator::new(kind, seed).generate(10);
        let back = idebench::workflow::Workflow::from_json(&wf.to_json())
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(wf, back);
    }
}

// ------------------------------------------------------- binning semantics

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Selecting a bin of a 1D count histogram and re-querying with the
    /// derived filter returns exactly that bin's count: the graph's
    /// selection→filter translation agrees with the binning semantics.
    #[test]
    fn bin_selection_filter_roundtrip(seed in 0u64..40, width in 1u32..40) {
        use idebench::core::spec::{SelCoord, Selection};
        use idebench::core::VizGraph;
        use idebench::core::Interaction;

        let width = f64::from(width);
        let t = idebench::datagen::flights::generate(2_000, seed);
        let ds = Dataset::Denormalized(Arc::new(t));
        let source = VizSpec::new(
            "src",
            "flights",
            vec![BinDef::Width { dimension: "dep_delay".into(), width, anchor: 0.0 }],
            vec![AggregateSpec::count()],
        );
        let target = VizSpec::new(
            "tgt",
            "flights",
            vec![BinDef::Nominal { dimension: "carrier".into() }],
            vec![AggregateSpec::count()],
        );
        let sq = Query::for_viz(&source, None);
        let hist = execute_exact(&ds, &sq).unwrap();
        // Pick the lexicographically smallest populated bin.
        let (key, stats) = hist.sorted_bins().into_iter().next().unwrap();
        let BinCoord::Bucket(bucket) = key.coords()[0] else {
            return Err(TestCaseError::fail("width binning yields buckets"));
        };

        let mut graph = VizGraph::new();
        graph.apply(&Interaction::CreateViz { viz: source.clone() }).unwrap();
        graph.apply(&Interaction::CreateViz { viz: target }).unwrap();
        graph.apply(&Interaction::Link { source: "src".into(), target: "tgt".into() }).unwrap();
        graph.apply(&Interaction::Select {
            viz: "src".into(),
            selection: Some(Selection { bins: vec![vec![SelCoord::Bucket(bucket)]] }),
        }).unwrap();
        let tq = graph.query_for("tgt").unwrap();
        let filtered = execute_exact(&ds, &tq).unwrap();
        let total: f64 = filtered.bins.values().map(|b| b.values[0]).sum();
        prop_assert!(
            (total - stats.values[0]).abs() < 1e-9,
            "selected-bin count {} vs filtered total {total}", stats.values[0]
        );
    }
}

// ------------------------------------- vectorized/scalar differential

/// Builds a random-but-seeded filter over the flights columns.
fn arb_filter(which: u8, lo: f64, hi: f64) -> FilterExpr {
    let range = |column: &str, lo: f64, hi: f64| {
        FilterExpr::Pred(Predicate::Range {
            column: column.into(),
            min: lo.min(hi),
            max: lo.max(hi) + 1.0,
        })
    };
    let isin = |values: &[&str]| {
        FilterExpr::Pred(Predicate::In {
            column: "carrier".into(),
            values: values.iter().map(|s| s.to_string()).collect(),
        })
    };
    match which % 5 {
        0 => range("dep_delay", lo, hi),
        1 => isin(&["C00", "C02", "C05"]),
        2 => isin(&["C01"]).and(range("distance", lo.abs() * 20.0, hi.abs() * 30.0)),
        3 => FilterExpr::Or(vec![
            isin(&["C03", "ZZ_MISSING"]),
            range("arr_delay", lo, hi),
        ]),
        _ => FilterExpr::And(vec![]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The vectorized batch path (dense and sparse stores, natural and
    /// shuffled orders, arbitrary budget slicing, star and denormalized
    /// datasets) and the parallel morsel dispatcher (workers ∈ {2, 3, 8})
    /// produce bit-identical results to the retained scalar reference path.
    #[test]
    fn vectorized_matches_scalar_differentially(
        seed in 0u64..25,
        rows in 200usize..3_000,
        which_filter in any::<u8>(),
        lo in -50.0f64..50.0,
        hi in -50.0f64..120.0,
        width in 1u32..50,
        budget in 16u64..4_000,
        shuffle in any::<bool>(),
        two_d in any::<bool>(),
        nominal in any::<bool>(),
        workers_pick in 0usize..3,
    ) {
        use idebench::query::{execute_exact_parallel, execute_exact_scalar};
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let workers = [2usize, 3, 8][workers_pick];

        let table = idebench::datagen::flights::generate(rows, seed);
        let denorm = Dataset::Denormalized(Arc::new(table.clone()));
        let star = idebench::datagen::normalize_flights(&table)
            .map_err(TestCaseError::fail)?;

        let mut binning = vec![if nominal {
            BinDef::Nominal { dimension: "carrier".into() }
        } else {
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: f64::from(width),
                anchor: lo,
            }
        }];
        if two_d {
            binning.push(BinDef::Nominal { dimension: "origin_state".into() });
        }
        let spec = VizSpec::new(
            "v",
            "flights",
            binning,
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, "arr_delay"),
                AggregateSpec::over(AggFunc::Sum, "distance"),
                AggregateSpec::over(AggFunc::Min, "dep_delay"),
                AggregateSpec::over(AggFunc::Max, "dep_delay"),
            ],
        );
        let q = Query::for_viz(&spec, Some(arb_filter(which_filter, lo, hi)));

        // Bit-identical f64 accumulation requires the reference to visit
        // rows in the same order as the run under test; the chunk-folded
        // scalar reference lives in the query crate so the grid can never
        // drift from the dispatcher's.
        let scalar_with_order = |ds: &Dataset, order: Option<&[u32]>| {
            idebench::query::execute_exact_scalar_with_order(ds, &q, order)
                .map_err(|e| TestCaseError::fail(format!("{e}")))
        };
        let order = shuffle.then(|| {
            let mut o: Vec<u32> = (0..rows as u32).collect();
            o.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed ^ 0xff));
            Arc::new(o)
        });

        for ds in [&denorm, &star] {
            let scalar = execute_exact_scalar(ds, &q)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            // One-shot vectorized scan.
            let vectorized = execute_exact(ds, &q)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(&vectorized, &scalar, "one-shot vs scalar");

            // Parallel morsel dispatch: every worker count is bit-identical
            // to the scalar reference.
            let parallel = execute_exact_parallel(ds, &q, workers)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(&parallel, &scalar, "parallel ({} workers) vs scalar", workers);

            // Budget-sliced chunked scan, optionally over a shuffled order,
            // stepped under the parallel dispatcher.
            let ordered_scalar = scalar_with_order(ds, order.as_deref().map(|o| &o[..]))?;
            let mut run = ChunkedRun::with_order(
                ds.clone(), q.clone(), order.clone(), SnapshotMode::Exact,
            ).map_err(|e| TestCaseError::fail(format!("{e}")))?;
            run.set_workers(workers);
            while !run.is_done() {
                if run.advance(budget) == 0 && !run.is_done() {
                    run.advance(budget + 64);
                }
            }
            let chunked = run.snapshot().unwrap();
            prop_assert_eq!(&chunked, &ordered_scalar, "chunked vs ordered scalar");
        }
    }
}

// --------------------------------------- dense bucket-boundary semantics

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The dense arithmetic slot kernel's branchless trunc-adjust floor
    /// (`t = q as i64 as f64; fl = if t > q { t - 1 } else { t }`) is
    /// bit-identical to the scalar reference's `f64::floor` on the worst
    /// inputs for a floor: values *exactly on bucket edges*, negative
    /// anchors, negative values, and non-representable widths — and the
    /// dense slot decode (`lo + slot`) reproduces the hashed path's bucket
    /// indices exactly.
    #[test]
    fn dense_width_slots_agree_on_bucket_edges(
        anchor in -1_000.0f64..1_000.0,
        width_pick in 0usize..6,
        ks in prop::collection::vec(-200i64..200, 1..150),
        offs in prop::collection::vec(0.0f64..1.0, 1..50),
    ) {
        let width = [0.1, 0.25, 1.0, 3.0, 7.5, 1e-3][width_pick];
        // Edge values anchor + k·width (exact bucket boundaries whenever
        // representable, negative k included) plus interior offsets.
        let mut vals: Vec<f64> = ks.iter().map(|&k| anchor + k as f64 * width).collect();
        for (i, o) in offs.iter().enumerate() {
            let k = ks[i % ks.len()];
            vals.push(anchor + (k as f64 + o) * width);
        }
        let mut b = TableBuilder::with_fields("t", &[("x", DataType::Float)]);
        for &v in &vals {
            b.push_row(&[v.into()]).unwrap();
        }
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let spec = VizSpec::new(
            "v",
            "t",
            vec![BinDef::Width { dimension: "x".into(), width, anchor }],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Sum, "x"),
                AggregateSpec::over(AggFunc::Min, "x"),
                AggregateSpec::over(AggFunc::Max, "x"),
            ],
        );
        let q = Query::for_viz(&spec, None);
        // The bounded value range (|k| ≤ 200) must actually lower to the
        // dense arithmetic path, or this test pins nothing.
        let plan = idebench::query::CompiledPlan::compile(&ds, &q)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert!(
            matches!(plan.acc_mode(), idebench::query::AccMode::Dense(_)),
            "bounded bucket space must be dense, got {:?}", plan.acc_mode()
        );
        let vectorized = execute_exact(&ds, &q)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        let scalar = idebench::query::execute_exact_scalar(&ds, &q)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        prop_assert_eq!(&vectorized, &scalar, "dense slots vs scalar floor");
    }
}

/// Deterministic bucket-edge audit: negative anchor, negative values, and
/// values landing exactly on representable bucket boundaries.
#[test]
fn dense_width_exact_boundaries_match_scalar() {
    for (anchor, width) in [(0.0, 1.0), (-17.5, 2.5), (3.0, 0.25), (-400.0, 7.5)] {
        let mut b = TableBuilder::with_fields("t", &[("x", DataType::Float)]);
        for k in -40i64..=40 {
            // One value exactly on each edge, one just inside, one just
            // below the edge (previous bucket).
            let edge = anchor + k as f64 * width;
            // The next f64 strictly below the edge (previous bucket).
            let below = if edge == 0.0 {
                -f64::MIN_POSITIVE
            } else if edge > 0.0 {
                f64::from_bits(edge.to_bits() - 1)
            } else {
                f64::from_bits(edge.to_bits() + 1)
            };
            b.push_row(&[edge.into()]).unwrap();
            b.push_row(&[(edge + width * 0.5).into()]).unwrap();
            b.push_row(&[below.into()]).unwrap();
        }
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let spec = VizSpec::new(
            "v",
            "t",
            vec![BinDef::Width {
                dimension: "x".into(),
                width,
                anchor,
            }],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Sum, "x"),
            ],
        );
        let q = Query::for_viz(&spec, None);
        assert_eq!(
            execute_exact(&ds, &q).unwrap(),
            idebench::query::execute_exact_scalar(&ds, &q).unwrap(),
            "anchor {anchor}, width {width}"
        );
    }
}

/// Worker-count determinism on data that genuinely spans several dispatch
/// chunks: runs with different worker counts must produce *identical*
/// `AggResult`s (every f64 bit included), and match the scalar reference.
#[test]
fn worker_counts_are_interchangeable_across_chunks() {
    use idebench::query::{execute_exact_parallel, execute_exact_scalar, CHUNK_ROWS};

    let rows = 2 * CHUNK_ROWS + 4_321;
    let table = idebench::datagen::flights::generate(rows, 11);
    let ds = Dataset::Denormalized(Arc::new(table));
    let spec = VizSpec::new(
        "v",
        "flights",
        vec![
            BinDef::Nominal {
                dimension: "carrier".into(),
            },
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: 15.0,
                anchor: 0.0,
            },
        ],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Avg, "arr_delay"),
            AggregateSpec::over(AggFunc::Sum, "distance"),
        ],
    );
    let q = Query::for_viz(
        &spec,
        Some(FilterExpr::Pred(Predicate::Range {
            column: "dep_delay".into(),
            min: -30.0,
            max: 90.0,
        })),
    );
    let scalar = execute_exact_scalar(&ds, &q).unwrap();
    for workers in [1usize, 2, 3, 5, 8] {
        let result = execute_exact_parallel(&ds, &q, workers).unwrap();
        assert_eq!(result, scalar, "workers = {workers}");
    }
}

// ------------------------------------------------- star/denorm equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every query of a generated workflow returns identical exact results
    /// on the de-normalized table and its star-schema normalization (join
    /// correctness over the full query space the generator can produce).
    #[test]
    fn star_schema_preserves_exact_results(seed in 0u64..40) {
        let table = idebench::datagen::flights::generate(3_000, seed);
        let denorm = Dataset::Denormalized(Arc::new(table.clone()));
        let star = idebench::datagen::normalize_flights(&table)
            .map_err(TestCaseError::fail)?;
        let wf = WorkflowGenerator::new(WorkflowType::Mixed, seed).generate(12);
        let slices = [wf.interactions.as_slice()];
        let queries = idebench::query::enumerate_workload_queries(&denorm, &slices)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
        for q in &queries {
            let flat = execute_exact(&denorm, q)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            let starred = execute_exact(&star, q)
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            // Dictionaries are built in identical first-seen order on both
            // paths, so results must be bit-identical.
            prop_assert_eq!(&flat, &starred, "query {:?}", q.canonical_key());
        }
    }
}

// ------------------------------------------------------------------ datagen

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Copula-scaled data never exceeds the seed's per-column value range
    /// and preserves row count exactly.
    #[test]
    fn copula_respects_seed_ranges(n in 20usize..200, seed in 0u64..50) {
        let seed_table = idebench::datagen::flights::generate(500, seed);
        let scaled = idebench::datagen::CopulaScaler::scale(&seed_table, 400, n, seed + 1);
        prop_assert_eq!(scaled.num_rows(), n);
        for col in ["dep_delay", "distance", "air_time"] {
            let s = seed_table.column(col).unwrap().as_float().unwrap();
            let g = scaled.column(col).unwrap().as_float().unwrap();
            let (smin, smax) = s.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            for &v in g {
                prop_assert!(v >= smin - 1e-9 && v <= smax + 1e-9, "{col}: {v} outside [{smin}, {smax}]");
            }
        }
    }
}
