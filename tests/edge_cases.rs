//! Failure-injection and edge-case tests across the stack.

use idebench::core::spec::{AggFunc, AggregateSpec, BinDef, FilterExpr, Predicate};
use idebench::core::{
    BenchmarkDriver, ExecutionMode, Interaction, Query, Settings, SystemAdapter, VizSpec,
};
use idebench::engine_cache::CachingAdapter;
use idebench::engine_exact::ExactAdapter;
use idebench::engine_progressive::{ProgressiveAdapter, ProgressiveConfig};
use idebench::engine_stratified::{StratifiedAdapter, StratifiedConfig};
use idebench::engine_wander::WanderAdapter;
use idebench::storage::Dataset;
use idebench::workflow::{Workflow, WorkflowType};
use std::sync::Arc;

fn flights(n: usize) -> Dataset {
    Dataset::Denormalized(Arc::new(idebench::datagen::flights::generate(n, 13)))
}

fn star(n: usize) -> Dataset {
    let t = idebench::datagen::flights::generate(n, 13);
    idebench::datagen::normalize_flights(&t).unwrap()
}

fn carrier_count(name: &str) -> VizSpec {
    VizSpec::new(
        name,
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    )
}

fn settings() -> Settings {
    Settings::default()
        .with_time_requirement_ms(1_000)
        .with_think_time_ms(0)
        .with_execution(ExecutionMode::Virtual { work_rate: 1e5 })
}

#[test]
fn every_engine_runs_star_schemas_through_the_driver() {
    // The paper's IDEA and System X rejected normalized data; with the
    // join-devirtualization layer every engine runs it (the virtual cost
    // model still charges the logical joins).
    let ds = star(2_000);
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz {
            viz: carrier_count("a"),
        }],
    );
    let driver = BenchmarkDriver::new(settings());
    let mut progressive = ProgressiveAdapter::with_defaults();
    assert!(driver.run_workflow(&mut progressive, &ds, &wf).is_ok());
    let mut stratified = StratifiedAdapter::with_defaults();
    assert!(driver.run_workflow(&mut stratified, &ds, &wf).is_ok());
    let mut exact = ExactAdapter::with_defaults();
    assert!(driver.run_workflow(&mut exact, &ds, &wf).is_ok());
    let mut wander = WanderAdapter::with_defaults();
    assert!(driver.run_workflow(&mut wander, &ds, &wf).is_ok());
}

#[test]
fn unknown_column_in_workflow_surfaces_as_error() {
    let ds = flights(1_000);
    let bad_viz = VizSpec::new(
        "bad",
        "flights",
        vec![BinDef::Nominal {
            dimension: "ghost_column".into(),
        }],
        vec![AggregateSpec::count()],
    );
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz { viz: bad_viz }],
    );
    let driver = BenchmarkDriver::new(settings());
    // The ground-truth executor rejects the query; engines would panic on
    // an unvalidated query, so validate through the exact path first.
    let q = Query::for_viz(&carrier_count("ok"), None);
    assert!(idebench::query::execute_exact(&ds, &q).is_ok());
    let bad_q = Query::for_viz(
        &VizSpec::new(
            "bad",
            "flights",
            vec![BinDef::Nominal {
                dimension: "ghost_column".into(),
            }],
            vec![AggregateSpec::count()],
        ),
        None,
    );
    assert!(idebench::query::execute_exact(&ds, &bad_q).is_err());
    let _ = (wf, driver);
}

#[test]
fn filter_matching_nothing_yields_empty_but_valid_result() {
    let ds = flights(5_000);
    let q = Query::for_viz(
        &carrier_count("v"),
        Some(FilterExpr::Pred(Predicate::Range {
            column: "dep_delay".into(),
            min: 1e9,
            max: 2e9,
        })),
    );
    let result = idebench::query::execute_exact(&ds, &q).unwrap();
    assert_eq!(result.bins_delivered(), 0);
    assert!(result.exact);
    // Metrics against an empty ground truth are well-defined.
    let m = idebench::core::Metrics::evaluate(&result, &result);
    assert_eq!(m.missing_bins, 0.0);
}

#[test]
fn full_rate_stratified_sample_returns_exact_results() {
    let ds = flights(3_000);
    let mut adapter = StratifiedAdapter::new(StratifiedConfig {
        sampling_rate: 1.0,
        ..StratifiedConfig::default()
    });
    adapter.prepare(&ds, &settings()).unwrap();
    let q = Query::for_viz(&carrier_count("v"), None);
    let mut h = adapter.submit(&q);
    while !h.step(1_000_000).is_done() {}
    let snap = h.snapshot().unwrap();
    // A 100% "sample" is the population: estimates collapse to exact.
    assert!(snap.exact);
    assert_eq!(snap, idebench::query::execute_exact(&ds, &q).unwrap());
}

#[test]
fn cache_layer_does_not_cache_partial_results() {
    // Wrapping the *progressive* engine: snapshots below 100% are
    // approximate and must not be served as cached exact answers.
    let ds = flights(200_000);
    let mut adapter = CachingAdapter::with_defaults(ProgressiveAdapter::new(ProgressiveConfig {
        first_query_warmup_s: 0.0,
        ..ProgressiveConfig::default()
    }));
    adapter.prepare(&ds, &settings()).unwrap();
    let q = Query::for_viz(&carrier_count("v"), None);
    let mut h = adapter.submit(&q);
    // Overhead is 1.5 s × 1e5 = 150k units; grant only a little more, so
    // the inner scan (200k rows × ~1.35 units) is far from complete.
    h.step(200_000);
    assert!(!h.is_done());
    drop(h);
    assert_eq!(adapter.cached_results(), 0, "partial result must not cache");

    // Run a second submission to completion: the exact result does cache.
    let mut h2 = adapter.submit(&q);
    while !h2.step(1_000_000).is_done() {}
    drop(h2);
    assert_eq!(adapter.cached_results(), 1);
}

#[test]
fn speculation_cap_bounds_memory() {
    let ds = flights(50_000);
    let mut adapter = idebench::engine_progressive::ProgressiveAdapter::new(ProgressiveConfig {
        enable_speculation: true,
        first_query_warmup_s: 0.0,
        max_speculative_runs: 5,
        ..ProgressiveConfig::default()
    });
    adapter.prepare(&ds, &settings()).unwrap();
    // Source with 120 airports → 120 possible selections, capped at 5.
    let source = VizSpec::new(
        "src",
        "flights",
        vec![BinDef::Nominal {
            dimension: "origin".into(),
        }],
        vec![AggregateSpec::count()],
    );
    let sq = Query::for_viz(&source, None);
    let mut h = adapter.submit(&sq);
    while !h.step(10_000_000).is_done() {}
    drop(h);
    let target = Query::for_viz(&carrier_count("tgt"), None);
    adapter.on_link(&sq, &target);
    assert!(adapter.pending_speculative() <= 5);
}

#[test]
fn empty_workflow_is_a_noop() {
    let ds = flights(100);
    let wf = Workflow::new("w", WorkflowType::Independent, vec![]);
    let driver = BenchmarkDriver::new(settings());
    let mut adapter = ExactAdapter::with_defaults();
    let outcome = driver.run_workflow(&mut adapter, &ds, &wf).unwrap();
    assert!(outcome.query_results.is_empty());
    assert_eq!(outcome.total_ms, 0.0);
}

#[test]
fn min_max_aggregates_supported_end_to_end() {
    let ds = flights(5_000);
    let viz = VizSpec::new(
        "v",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![
            AggregateSpec::over(AggFunc::Min, "dep_delay"),
            AggregateSpec::over(AggFunc::Max, "dep_delay"),
        ],
    );
    let q = Query::for_viz(&viz, None);
    let gt = idebench::query::execute_exact(&ds, &q).unwrap();
    for stats in gt.bins.values() {
        assert!(stats.values[0] <= stats.values[1], "min ≤ max");
    }
    // The progressive engine estimates min/max as observed extrema.
    let mut adapter = ProgressiveAdapter::new(ProgressiveConfig {
        first_query_warmup_s: 0.0,
        ..ProgressiveConfig::default()
    });
    adapter.prepare(&ds, &settings()).unwrap();
    let mut h = adapter.submit(&q);
    h.step(2_000);
    let partial = h.snapshot().unwrap();
    for (key, stats) in &partial.bins {
        let truth = &gt.bins[key];
        // Observed extrema never exceed the true extrema.
        assert!(stats.values[0] >= truth.values[0] - 1e-9);
        assert!(stats.values[1] <= truth.values[1] + 1e-9);
    }
}

#[test]
fn tiny_datasets_complete_instantly_without_violations() {
    let ds = flights(10);
    let wf = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz {
            viz: carrier_count("a"),
        }],
    );
    let driver = BenchmarkDriver::new(settings());
    for name in ["exact", "wander"] {
        let mut adapter: Box<dyn SystemAdapter> = match name {
            "exact" => Box::new(ExactAdapter::with_defaults()),
            _ => Box::new(WanderAdapter::with_defaults()),
        };
        let outcome = driver.run_workflow(adapter.as_mut(), &ds, &wf).unwrap();
        let m = &outcome.query_results[0];
        assert!(!m.tr_violated, "{name} on 10 rows");
        assert!(m.result.is_some());
    }
}
