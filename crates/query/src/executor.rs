//! Chunked query execution — the building block engines step.
//!
//! A [`ChunkedRun`] compiles its query into an owned [`CompiledPlan`]
//! **once** at construction and then advances through the data in
//! [`crate::batch::MORSEL`]-sized batches, evaluating filters into bitmasks,
//! computing bin slots per batch, and accumulating matches in bulk.
//! Accumulation runs through the [`crate::dispatch::MorselDispatcher`]:
//! fixed [`crate::dispatch::CHUNK_ROWS`]-sized chunks, each with its own
//! accumulator, fanned out over the persistent [`crate::pool::ScanPool`]
//! when [`ChunkedRun::set_workers`] grants more than one worker and merged
//! back in chunk order so results are bit-identical for every worker count. The
//! scalar reference path ([`execute_exact_scalar`]) retains the original
//! row-at-a-time evaluation semantics (folded over the same chunk grid) for
//! differential testing.

use crate::aggregate::GroupedAcc;
use crate::dispatch::{MorselDispatcher, CHUNK_ROWS};
use crate::plan::CompiledPlan;
use crate::resolve::ResolvedQuery;
use idebench_core::{AggResult, CoreError, Query};
use idebench_storage::Dataset;
use std::sync::Arc;

/// How a [`ChunkedRun`] snapshot turns accumulated state into a result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnapshotMode {
    /// Values are exact once the scan completes (blocking engines).
    Exact,
    /// Values are scale-up estimates of a uniform sample of the rows
    /// processed so far; `z` is the confidence z-value, `population` the
    /// total row count estimates are scaled to. Snapshots are available as
    /// soon as any row has been processed (progressive engines).
    Estimate {
        /// z-value for the configured confidence level.
        z: f64,
        /// Population size estimates scale up to.
        population: u64,
    },
    /// Like `Estimate`, but the snapshot only becomes available once the
    /// scan completes (blocking engines over offline sample tables).
    EstimateAtEnd {
        /// z-value for the configured confidence level.
        z: f64,
        /// Population size estimates scale up to.
        population: u64,
    },
}

/// A query scan that can be advanced in work-unit-bounded chunks.
///
/// The run owns its compiled plan (which owns the dataset handle) and an
/// optional row *order* (progressive engines scan a shuffled order so any
/// prefix is a uniform sample). Engines wrap this in their
/// [`idebench_core::QueryHandle`] implementations.
pub struct ChunkedRun {
    plan: CompiledPlan,
    /// Row visit order; `None` = natural order 0..n.
    order: Option<Arc<Vec<u32>>>,
    /// Chunk-partitioned accumulation state + worker pool.
    dispatcher: MorselDispatcher,
    cursor: usize,
    num_rows: usize,
    row_cost: f64,
    /// Extra cost per row that passes the filter (aggregation work scales
    /// with qualifying tuples, which is what makes filter selectivity the
    /// dominant cost factor — the paper's Exp-4 finding).
    match_cost: f64,
    /// Fixed work consumed before the first row is processed (planning,
    /// warm-up). Charged against the first `advance` budgets.
    startup_units: u64,
    startup_remaining: u64,
    mode: SnapshotMode,
    /// Total fractional row work performed (monotone).
    row_work: f64,
    /// Total row work billed to callers, in integer units (monotone,
    /// `row_billed == ceil(row_work)` up to per-call budget clamping).
    row_billed: u64,
}

impl ChunkedRun {
    /// Creates a run over the natural row order.
    pub fn new(dataset: Dataset, query: Query, mode: SnapshotMode) -> Result<Self, CoreError> {
        Self::with_order(dataset, query, None, mode)
    }

    /// Creates a run visiting rows in the given order (e.g. a shuffle).
    pub fn with_order(
        dataset: Dataset,
        query: Query,
        order: Option<Arc<Vec<u32>>>,
        mode: SnapshotMode,
    ) -> Result<Self, CoreError> {
        let plan = CompiledPlan::compile(&dataset, &query)?;
        Ok(Self::from_plan(plan, order, mode))
    }

    /// Creates a run from an already-compiled plan (engines compile once
    /// for cost modelling and hand the same plan to the run — the query is
    /// never compiled twice).
    pub fn from_plan(plan: CompiledPlan, order: Option<Arc<Vec<u32>>>, mode: SnapshotMode) -> Self {
        let num_rows = plan.num_rows();
        let row_cost = plan.row_cost() as f64;
        if let Some(o) = &order {
            debug_assert_eq!(o.len(), num_rows, "order must cover every row");
        }
        let dispatcher = MorselDispatcher::new(&plan);
        ChunkedRun {
            plan,
            order,
            dispatcher,
            cursor: 0,
            num_rows,
            row_cost,
            match_cost: 0.0,
            startup_units: 0,
            startup_remaining: 0,
            mode,
            row_work: 0.0,
            row_billed: 0,
        }
    }

    /// Overrides the per-row work-unit cost (engine cost models).
    pub fn set_row_cost(&mut self, cost: f64) {
        assert!(cost > 0.0 && cost.is_finite(), "row cost must be positive");
        self.row_cost = cost;
    }

    /// Sets the extra cost charged per filter-matching row.
    pub fn set_match_cost(&mut self, cost: f64) {
        assert!(cost >= 0.0 && cost.is_finite(), "match cost must be >= 0");
        self.match_cost = cost;
    }

    /// Sets a fixed startup cost consumed before any row is processed.
    pub fn set_startup_units(&mut self, units: u64) {
        self.startup_units = units;
        self.startup_remaining = units;
    }

    /// Sets the scan's worker-pool size (clamped to ≥ 1; `1` keeps the
    /// sequential path). Thanks to the dispatcher's fixed chunk grid and
    /// in-order partial merge, the result is bit-identical for every value.
    pub fn set_workers(&mut self, workers: usize) {
        self.dispatcher.set_workers(workers);
    }

    /// The scan's worker-pool size.
    pub fn workers(&self) -> usize {
        self.dispatcher.workers()
    }

    /// Per-row work-unit cost.
    pub fn row_cost(&self) -> f64 {
        self.row_cost
    }

    /// Rows processed so far.
    pub fn rows_done(&self) -> usize {
        self.cursor
    }

    /// Total rows to process.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Whether the scan is complete.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.num_rows
    }

    /// Fraction of rows processed.
    pub fn progress(&self) -> f64 {
        if self.num_rows == 0 {
            1.0
        } else {
            self.cursor as f64 / self.num_rows as f64
        }
    }

    /// Processes rows until `budget_units` is exhausted or the scan ends.
    /// Returns the units actually consumed.
    ///
    /// # Budget accounting
    ///
    /// Accounting is *monotone and exactly budget-capped*: fractional work
    /// (and the matched-row surcharge, which is only known after a row is
    /// processed) is carried across calls — a call never reports more than
    /// `budget_units`, and the total reported over a scan equals the total
    /// work rounded up, no matter how the budget is sliced.
    ///
    /// # Parallel dispatch
    ///
    /// The budget governs *how many rows* this call may process; the
    /// dispatcher decides *who processes them*. Each iteration sizes a span
    /// conservatively (so even all-matching rows fit the remaining room —
    /// one whole budget grant thereby splits across all workers at once),
    /// hands it to the [`MorselDispatcher`], folds the actual surcharge
    /// into `row_work`, and re-fits. A grant too small for even one
    /// worst-case row still takes a single row, so *any* positive budget
    /// makes forward progress — no starvation at tiny quanta — with the
    /// overdraw carried (never forgiven) into later calls' billing. Grants
    /// smaller than one chunk simply stay on the sequential in-process
    /// path; results are bit-identical either way.
    pub fn advance(&mut self, budget_units: u64) -> u64 {
        let mut consumed = 0u64;
        let mut budget = budget_units;
        // Pay any outstanding startup cost first.
        if self.startup_remaining > 0 {
            let pay = self.startup_remaining.min(budget);
            self.startup_remaining -= pay;
            consumed += pay;
            budget -= pay;
        }
        if budget == 0 {
            return consumed;
        }

        const EPS: f64 = 1e-9;
        // Allowed total row work after this call: everything already billed
        // plus this call's budget. Unbilled overdraw from previous calls
        // (row_work > row_billed) shrinks the remaining room automatically —
        // and is still billed below once the scan itself is complete.
        let cap = self.row_billed as f64 + budget as f64;
        let worst_row = self.row_cost + self.match_cost;
        while self.cursor < self.num_rows && self.row_work + self.row_cost <= cap + EPS {
            let room = cap + EPS - self.row_work;
            // Size the span so even all-matching rows stay within budget;
            // when not even one worst-case row fits, take a single row (the
            // surcharge overdraw is carried to the next call).
            let fit = (room / worst_row) as usize;
            let take = (self.num_rows - self.cursor).min(fit.max(1));
            let matched = self.dispatcher.scan_span(
                &self.plan,
                self.order.as_ref().map(|o| o.as_slice()),
                self.cursor,
                take,
                self.num_rows,
            );
            self.row_work += take as f64 * self.row_cost + matched as f64 * self.match_cost;
            self.cursor += take;
        }

        // Bill the newly performed work, rounded up, capped by the budget.
        let billed_target = (self.row_work - EPS).ceil().max(0.0) as u64;
        let delta = billed_target.saturating_sub(self.row_billed).min(budget);
        self.row_billed += delta;
        consumed + delta
    }

    /// The current result under the run's snapshot mode.
    ///
    /// In `Exact` mode this returns `None` until the scan completes; in
    /// `Estimate` mode it returns an estimate as soon as at least one row
    /// has been processed.
    pub fn snapshot(&self) -> Option<AggResult> {
        match self.mode {
            SnapshotMode::Exact => {
                if self.is_done() {
                    Some(self.dispatcher.grouped().finish_exact())
                } else {
                    None
                }
            }
            SnapshotMode::Estimate { z, population } => {
                if self.cursor == 0 && self.num_rows > 0 {
                    None
                } else if self.is_done() && population as usize == self.num_rows {
                    // A completed full-population scan is exact.
                    Some(self.dispatcher.grouped().finish_exact())
                } else {
                    Some(self.dispatcher.grouped().finish_estimate(population, z))
                }
            }
            SnapshotMode::EstimateAtEnd { z, population } => {
                if !self.is_done() {
                    None
                } else if population as usize == self.num_rows {
                    Some(self.dispatcher.grouped().finish_exact())
                } else {
                    Some(self.dispatcher.grouped().finish_estimate(population, z))
                }
            }
        }
    }

    /// The accumulated state, materialized into the canonical grouped
    /// representation (engines use this for result reuse).
    pub fn accumulator(&self) -> GroupedAcc {
        self.dispatcher.grouped()
    }

    /// The query this run executes.
    pub fn query(&self) -> &Query {
        self.plan.query()
    }

    /// The compiled plan driving this run.
    pub fn plan(&self) -> &CompiledPlan {
        &self.plan
    }
}

/// Runs a query to completion on the vectorized single-worker path,
/// returning the exact result.
///
/// This is both the ground-truth oracle and the execution path of the
/// blocking exact engine. [`execute_exact_parallel`] produces bit-identical
/// results on more workers.
pub fn execute_exact(dataset: &Dataset, query: &Query) -> Result<AggResult, CoreError> {
    execute_exact_parallel(dataset, query, 1)
}

/// Runs a query to completion on the vectorized path with the given worker
/// count, returning the exact result.
///
/// Results are bit-identical to [`execute_exact`] and
/// [`execute_exact_scalar`] for every `workers` value: the dispatcher's
/// chunk grid and in-order partial merge fix the floating-point
/// accumulation sequence independently of scheduling.
pub fn execute_exact_parallel(
    dataset: &Dataset,
    query: &Query,
    workers: usize,
) -> Result<AggResult, CoreError> {
    execute_exact_with_policy(dataset, query, workers, crate::plan::JoinPolicy::default())
}

/// Runs a query to completion on the vectorized path under an explicit
/// [`crate::plan::JoinPolicy`].
///
/// Results are bit-identical across policies and worker counts — the
/// policy only decides whether star-schema kernels pay the per-row join
/// indirection. `bench_scan`'s star-join gate and the join differential
/// tests compare the devirtualized path against
/// [`crate::plan::JoinPolicy::Indirect`] through this entry point.
pub fn execute_exact_with_policy(
    dataset: &Dataset,
    query: &Query,
    workers: usize,
    policy: crate::plan::JoinPolicy,
) -> Result<AggResult, CoreError> {
    let plan = CompiledPlan::compile_with(dataset, query, policy)?;
    let mut run = ChunkedRun::from_plan(plan, None, SnapshotMode::Exact);
    run.set_workers(workers);
    while !run.is_done() {
        run.advance(u64::MAX);
    }
    Ok(run.snapshot().expect("completed exact scan has a result"))
}

/// Runs a query to completion on the retained row-at-a-time reference path.
///
/// Kept (rather than deleted with the old executor) so differential tests
/// and benchmarks can pin the vectorized path against the original
/// semantics bit for bit. Evaluation (filter, binning, measure updates) is
/// strictly row-at-a-time; the per-bin accumulators fold over the same
/// [`CHUNK_ROWS`] grid as the dispatcher, so the floating-point merge
/// sequence — and therefore every output bit — matches the vectorized path
/// at any worker count.
pub fn execute_exact_scalar(dataset: &Dataset, query: &Query) -> Result<AggResult, CoreError> {
    execute_exact_scalar_with_order(dataset, query, None)
}

/// [`execute_exact_scalar`] over an explicit visit order (position `i`
/// processes row `order[i]`), for differential tests against ordered runs.
///
/// This is the one place the scalar reference's chunk-folding lives — the
/// grid must match the dispatcher's, or bit-identity differentials would
/// compare against a stale fold.
pub fn execute_exact_scalar_with_order(
    dataset: &Dataset,
    query: &Query,
    order: Option<&[u32]>,
) -> Result<AggResult, CoreError> {
    let resolved = ResolvedQuery::new(dataset, query)?;
    if let Some(o) = order {
        assert_eq!(o.len(), resolved.num_rows, "order must cover every row");
    }
    let mut total = GroupedAcc::for_query(&resolved, query.aggregates());
    let mut chunk = GroupedAcc::for_query(&resolved, query.aggregates());
    for i in 0..resolved.num_rows {
        if i > 0 && i % CHUNK_ROWS == 0 {
            total.merge(&chunk);
            chunk = GroupedAcc::for_query(&resolved, query.aggregates());
        }
        let row = order.map_or(i, |o| o[i] as usize);
        chunk.process_row(&resolved, row);
    }
    total.merge(&chunk);
    Ok(total.finish_exact())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_compilations;
    use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
    use idebench_core::{BinCoord, BinKey, FilterExpr, Predicate, VizSpec};
    use idebench_storage::{DataType, TableBuilder};

    fn dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = if i % 3 == 0 { "AA" } else { "DL" };
            b.push_row(&[c.into(), (i as f64).into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn count_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn execute_exact_counts() {
        let ds = dataset(9);
        let r = execute_exact(&ds, &count_query()).unwrap();
        assert_eq!(r.value(&BinKey::d1(BinCoord::Cat(0)), 0), Some(3.0));
        assert_eq!(r.value(&BinKey::d1(BinCoord::Cat(1)), 0), Some(6.0));
        assert!(r.exact);
    }

    #[test]
    fn vectorized_matches_scalar_reference() {
        let ds = dataset(2_500);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 100.0,
                anchor: 0.0,
            }],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, "dep_delay"),
                AggregateSpec::over(AggFunc::Sum, "dep_delay"),
            ],
        );
        let q = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["AA".into()],
            })),
        );
        assert_eq!(
            execute_exact(&ds, &q).unwrap(),
            execute_exact_scalar(&ds, &q).unwrap()
        );
    }

    #[test]
    fn chunked_exact_matches_oneshot() {
        let ds = dataset(100);
        let q = count_query();
        let mut run = ChunkedRun::new(ds.clone(), q.clone(), SnapshotMode::Exact).unwrap();
        // Exact mode: no snapshot mid-scan.
        run.advance(10);
        assert!(run.snapshot().is_none());
        while !run.is_done() {
            run.advance(7);
        }
        assert_eq!(run.snapshot().unwrap(), execute_exact(&ds, &q).unwrap());
    }

    #[test]
    fn plan_compiled_exactly_once_per_run() {
        let ds = dataset(500);
        let before = plan_compilations();
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        let after_construction = plan_compilations();
        assert_eq!(
            after_construction,
            before + 1,
            "one compile at construction"
        );
        while !run.is_done() {
            run.advance(13);
            let _ = run.snapshot();
        }
        assert_eq!(
            plan_compilations(),
            after_construction,
            "advance/snapshot never recompile"
        );
    }

    #[test]
    fn advance_respects_budget_and_row_cost() {
        let ds = dataset(50);
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        assert_eq!(run.row_cost(), 1.0);
        let used = run.advance(13);
        assert_eq!(used, 13);
        assert_eq!(run.rows_done(), 13);
        // Budget smaller than row cost consumes nothing.
        let mut tiny = run;
        let used = tiny.advance(0);
        assert_eq!(used, 0);
    }

    #[test]
    fn fractional_row_cost_scales_progress() {
        let ds = dataset(100);
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        run.set_row_cost(2.5);
        let used = run.advance(25);
        assert_eq!(run.rows_done(), 10);
        assert_eq!(used, 25);
        // A sub-cost budget makes no progress.
        let used = run.advance(2);
        assert_eq!(used, 0);
        assert_eq!(run.rows_done(), 10);
    }

    #[test]
    fn match_cost_charges_matching_rows_only() {
        let ds = dataset(100);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        );
        // carrier AA on every third row.
        let q = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["AA".into()],
            })),
        );
        let mut run = ChunkedRun::new(ds, q, SnapshotMode::Exact).unwrap();
        run.set_row_cost(1.0);
        run.set_match_cost(2.0);
        // 100 rows: 34 match (i % 3 == 0) → total cost 100 + 68 = 168.
        let mut total = 0u64;
        while !run.is_done() {
            let used = run.advance(50);
            assert!(used <= 50);
            total += used;
        }
        assert_eq!(total, 168, "budget accounting is exact");
    }

    #[test]
    fn budget_accounting_is_monotone_and_exact_under_slicing() {
        // Fractional costs + tiny budgets: the billed total must equal the
        // exact total work (rounded up) regardless of slicing, and every
        // call must respect its own budget.
        let total_work = |budget: u64| {
            let ds = dataset(97);
            let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
            run.set_row_cost(0.7);
            run.set_match_cost(0.3); // all rows match (no filter)
            let mut total = 0u64;
            let mut stalls = 0;
            while !run.is_done() {
                let used = run.advance(budget);
                assert!(used <= budget, "billed {used} over budget {budget}");
                total += used;
                if used == 0 {
                    stalls += 1;
                    assert!(stalls < 10_000, "advance stalled");
                }
            }
            total
        };
        // 97 rows * (0.7 + 0.3) = 97.0 exactly.
        for budget in [1, 2, 3, 5, 7, 50, 1_000] {
            assert_eq!(total_work(budget), 97, "budget {budget}");
        }
    }

    #[test]
    fn overdraw_is_carried_not_forgiven() {
        // match_cost larger than the budget: each call overdraws on its
        // single row, and the debt must surface in later calls' billing.
        let ds = dataset(10);
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        run.set_row_cost(1.0);
        run.set_match_cost(4.0); // every row costs 5 in total
        let mut total = 0u64;
        while !run.is_done() {
            total += run.advance(2);
        }
        // Billing is capped at 2/call; the remaining debt is billed by the
        // post-completion calls below.
        while total < 50 {
            let used = run.advance(2);
            assert!(used <= 2);
            if used == 0 {
                break;
            }
            total += used;
        }
        assert_eq!(total, 50, "10 rows * 5 units fully billed");
        assert_eq!(run.advance(100), 0, "nothing left to bill");
    }

    #[test]
    fn startup_units_paid_before_rows() {
        let ds = dataset(100);
        let mut run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        run.set_startup_units(30);
        let used = run.advance(20);
        assert_eq!(used, 20);
        assert_eq!(run.rows_done(), 0);
        let used = run.advance(20);
        assert_eq!(used, 20); // 10 startup + 10 rows
        assert_eq!(run.rows_done(), 10);
    }

    #[test]
    fn estimate_at_end_withholds_partial_results() {
        let ds = dataset(100);
        let mut run = ChunkedRun::new(
            ds,
            count_query(),
            SnapshotMode::EstimateAtEnd {
                z: 1.96,
                population: 1_000,
            },
        )
        .unwrap();
        run.advance(50);
        assert!(run.snapshot().is_none());
        run.advance(100);
        let snap = run.snapshot().unwrap();
        assert!(!snap.exact);
        // Scaled 10× (100-row sample of a 1000-row population).
        let total: f64 = snap.bins.values().map(|s| s.values[0]).sum();
        assert!((total - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn estimate_snapshot_available_immediately() {
        let ds = dataset(1000);
        let q = count_query();
        let mut run = ChunkedRun::new(
            ds,
            q,
            SnapshotMode::Estimate {
                z: 1.96,
                population: 1000,
            },
        )
        .unwrap();
        assert!(run.snapshot().is_none());
        run.advance(100);
        let snap = run.snapshot().unwrap();
        assert!(!snap.exact);
        assert!((snap.processed_fraction - 0.1).abs() < 1e-9);
        // Count estimate should be near the true totals (the natural order
        // here is periodic, so exact thirds).
        let aa = snap.value(&BinKey::d1(BinCoord::Cat(0)), 0).unwrap();
        assert!((aa - 334.0).abs() < 10.0);
    }

    #[test]
    fn completed_estimate_of_full_population_is_exact() {
        let ds = dataset(60);
        let q = count_query();
        let mut run = ChunkedRun::new(
            ds.clone(),
            q.clone(),
            SnapshotMode::Estimate {
                z: 1.96,
                population: 60,
            },
        )
        .unwrap();
        while !run.is_done() {
            run.advance(64);
        }
        let snap = run.snapshot().unwrap();
        assert!(snap.exact);
        assert_eq!(snap, execute_exact(&ds, &q).unwrap());
    }

    #[test]
    fn shuffled_order_visits_every_row_once() {
        let ds = dataset(40);
        let q = count_query();
        let order: Arc<Vec<u32>> = Arc::new((0..40u32).rev().collect());
        let mut run =
            ChunkedRun::with_order(ds.clone(), q.clone(), Some(order), SnapshotMode::Exact)
                .unwrap();
        while !run.is_done() {
            run.advance(9);
        }
        assert_eq!(run.snapshot().unwrap(), execute_exact(&ds, &q).unwrap());
    }

    #[test]
    fn filtered_chunked_run() {
        let ds = dataset(100);
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        );
        let q = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::Range {
                column: "dep_delay".into(),
                min: 0.0,
                max: 50.0,
            })),
        );
        let mut run = ChunkedRun::new(ds.clone(), q.clone(), SnapshotMode::Exact).unwrap();
        while !run.is_done() {
            run.advance(33);
        }
        let snap = run.snapshot().unwrap();
        assert_eq!(snap.bins.len(), 5); // bins [0,10) .. [40,50)
        assert_eq!(snap, execute_exact(&ds, &q).unwrap());
        assert_eq!(run.accumulator().rows_matched, 50);
    }

    /// Rows with awkward (non-exactly-summable) float measures spanning
    /// several dispatch chunks — the data that would expose any
    /// order-dependent floating-point accumulation.
    fn float_dataset(n: usize) -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for i in 0..n {
            let c = match i % 7 {
                0 | 1 => "AA",
                2..=4 => "DL",
                _ => "UA",
            };
            // 0.1 steps are not exactly representable, so sums genuinely
            // depend on the accumulation association.
            b.push_row(&[c.into(), ((i % 1013) as f64 * 0.1 - 17.3).into()])
                .unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn float_query() -> Query {
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![
                BinDef::Nominal {
                    dimension: "carrier".into(),
                },
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 25.0,
                    anchor: 0.0,
                },
            ],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, "dep_delay"),
                AggregateSpec::over(AggFunc::Sum, "dep_delay"),
            ],
        );
        Query::for_viz(&spec, None)
    }

    #[test]
    fn parallel_bit_identical_to_scalar_across_worker_counts() {
        // > 3 chunks, so real cross-chunk merging happens.
        let ds = float_dataset(3 * CHUNK_ROWS + 517);
        let q = float_query();
        let scalar = execute_exact_scalar(&ds, &q).unwrap();
        for workers in [1, 2, 3, 8] {
            let parallel = execute_exact_parallel(&ds, &q, workers).unwrap();
            assert_eq!(parallel, scalar, "workers = {workers}");
        }
    }

    #[test]
    fn worker_count_never_changes_budget_sliced_results() {
        let ds = float_dataset(2 * CHUNK_ROWS + 99);
        let q = float_query();
        let mut reference: Option<AggResult> = None;
        for workers in [1, 4] {
            let mut run = ChunkedRun::new(ds.clone(), q.clone(), SnapshotMode::Exact).unwrap();
            run.set_workers(workers);
            // Odd slicing: spans cross chunk boundaries at uneven offsets.
            while !run.is_done() {
                run.advance(10_007);
            }
            let snap = run.snapshot().unwrap();
            match &reference {
                None => reference = Some(snap),
                Some(r) => assert_eq!(&snap, r, "workers = {workers}"),
            }
        }
    }

    #[test]
    fn tiny_budget_grants_progress_under_parallel_dispatcher() {
        // Regression: a budget grant smaller than one morsel (even smaller
        // than one worst-case row) must still make forward progress when
        // the run is configured for parallel dispatch — no starvation or
        // livelock at tiny quanta.
        let ds = float_dataset(CHUNK_ROWS + 700);
        let mut run = ChunkedRun::new(ds.clone(), float_query(), SnapshotMode::Exact).unwrap();
        run.set_workers(8);
        run.set_row_cost(1.0);
        run.set_match_cost(5.0); // worst-case row (6.0) far exceeds the grant
        let mut stalls = 0;
        let mut calls = 0u64;
        while !run.is_done() {
            let before = run.rows_done();
            let used = run.advance(2);
            assert!(used <= 2, "billing respects the tiny budget");
            calls += 1;
            if run.rows_done() == before {
                stalls += 1;
                assert!(stalls < 4, "advance must keep making row progress");
            } else {
                stalls = 0;
            }
            assert!(calls < 20 * (CHUNK_ROWS as u64 + 700), "livelocked");
        }
        assert_eq!(
            run.snapshot().unwrap(),
            execute_exact(&ds, &float_query()).unwrap(),
            "starved-budget scan still produces the exact result"
        );
    }

    #[test]
    fn dense_bucketed_two_d_matches_scalar() {
        // carrier × bucketed dep_delay lowers to the dense store (bounded
        // bucket space) and must agree with the hashed/scalar semantics.
        let ds = float_dataset(5_000);
        let q = float_query();
        let plan = CompiledPlan::compile(&ds, &q).unwrap();
        assert!(
            matches!(plan.acc_mode(), crate::plan::AccMode::Dense(_)),
            "nominal × bounded-bucket binning should be dense, got {:?}",
            plan.acc_mode()
        );
        assert_eq!(
            execute_exact(&ds, &q).unwrap(),
            execute_exact_scalar(&ds, &q).unwrap()
        );
    }

    /// A star schema big enough to span several morsels, with an optional
    /// join-cache capacity (0 forces the per-plan staged-FK fallback).
    fn star_dataset(n: usize, capacity: usize) -> Dataset {
        use idebench_storage::{DimensionSpec, StarSchema, Value};
        let mut f = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        for i in 0..n {
            f.push_row(&[
                ((i % 1013) as f64 * 0.1 - 17.3).into(),
                ((i % 7) as i64).into(),
            ])
            .unwrap();
        }
        let mut d = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        for c in 0..7 {
            d.push_row(&[Value::Str(format!("C{c}"))]).unwrap();
        }
        Dataset::Star(Arc::new(
            StarSchema::with_join_cache_capacity(
                Arc::new(f.finish()),
                vec![(
                    DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()]),
                    Arc::new(d.finish()),
                )],
                capacity,
            )
            .unwrap(),
        ))
    }

    #[test]
    fn join_paths_agree_with_scalar_bit_for_bit() {
        use crate::plan::JoinPolicy;
        let spec = VizSpec::new(
            "v",
            "flights",
            vec![
                BinDef::Nominal {
                    dimension: "carrier".into(),
                },
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 25.0,
                    anchor: 0.0,
                },
            ],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, "dep_delay"),
                AggregateSpec::over(AggFunc::Sum, "dep_delay"),
            ],
        );
        let q = Query::for_viz(
            &spec,
            Some(FilterExpr::Pred(Predicate::In {
                column: "carrier".into(),
                values: vec!["C1".into(), "C4".into(), "C6".into()],
            })),
        );
        // Materialized (shared-cache), staged (capacity 0), and legacy
        // indirect join access must all equal the scalar reference.
        for capacity in [usize::MAX, 0] {
            let ds = star_dataset(5 * crate::batch::MORSEL + 311, capacity);
            let scalar = execute_exact_scalar(&ds, &q).unwrap();
            for workers in [1, 8] {
                for policy in [JoinPolicy::Devirtualized, JoinPolicy::Indirect] {
                    let got = execute_exact_with_policy(&ds, &q, workers, policy).unwrap();
                    assert_eq!(
                        got, scalar,
                        "capacity {capacity}, workers {workers}, {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_table_completes_immediately() {
        let ds = dataset(0);
        let run = ChunkedRun::new(ds, count_query(), SnapshotMode::Exact).unwrap();
        assert!(run.is_done());
        assert_eq!(run.progress(), 1.0);
        assert_eq!(run.snapshot().unwrap().bins.len(), 0);
    }
}
