//! Aggregate query results: binned values with optional margins of error.

use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};

/// One coordinate of a bin key.
///
/// Nominal coordinates are dictionary codes (dictionaries are shared across
/// an engine's derived tables, so codes are stable for a given dataset);
/// quantitative coordinates are bin indexes `floor((x - anchor) / width)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BinCoord {
    /// Category code of a nominal binning dimension.
    Cat(u32),
    /// Bin index of a quantitative binning dimension.
    Bucket(i64),
}

/// The key identifying one bin of a result (1 or 2 coordinates).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BinKey(pub Vec<BinCoord>);

impl BinKey {
    /// 1-D key.
    pub fn d1(c: BinCoord) -> Self {
        BinKey(vec![c])
    }

    /// 2-D key.
    pub fn d2(a: BinCoord, b: BinCoord) -> Self {
        BinKey(vec![a, b])
    }

    /// The coordinates.
    pub fn coords(&self) -> &[BinCoord] {
        &self.0
    }
}

/// Per-bin aggregate estimates.
///
/// `values[i]` is the estimate for the i-th aggregate of the viz spec;
/// `margins[i]` is the absolute half-width of its confidence interval at the
/// configured confidence level (0 for exact engines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinStats {
    /// One estimate per aggregate.
    pub values: Vec<f64>,
    /// One absolute margin of error per aggregate (0 = exact).
    pub margins: Vec<f64>,
}

impl BinStats {
    /// Exact stats: margins are zero.
    pub fn exact(values: Vec<f64>) -> Self {
        let margins = vec![0.0; values.len()];
        BinStats { values, margins }
    }

    /// Approximate stats with explicit margins.
    pub fn approximate(values: Vec<f64>, margins: Vec<f64>) -> Self {
        debug_assert_eq!(values.len(), margins.len());
        BinStats { values, margins }
    }
}

/// The result of one aggregate query: a sparse map from bin key to stats.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AggResult {
    /// Delivered bins.
    ///
    /// Serialized as a list of `[key, stats]` pairs because JSON object keys
    /// must be strings.
    #[serde(with = "bins_as_pairs")]
    pub bins: FxHashMap<BinKey, BinStats>,
    /// Fraction of the underlying data processed when the snapshot was taken
    /// (1.0 for exact/blocking engines, < 1 for progressive snapshots).
    pub processed_fraction: f64,
    /// True when the producing engine reports exact (not estimated) values.
    pub exact: bool,
}

impl AggResult {
    /// An empty exact result (e.g. a filter matching nothing).
    pub fn empty_exact() -> Self {
        AggResult {
            bins: FxHashMap::default(),
            processed_fraction: 1.0,
            exact: true,
        }
    }

    /// Number of delivered bins (Table 1's `bins delivered`).
    pub fn bins_delivered(&self) -> usize {
        self.bins.len()
    }

    /// Value of aggregate `agg` in `key`'s bin, if delivered.
    pub fn value(&self, key: &BinKey, agg: usize) -> Option<f64> {
        self.bins.get(key).and_then(|s| s.values.get(agg)).copied()
    }

    /// Inserts a bin (test/builder convenience).
    pub fn insert(&mut self, key: BinKey, stats: BinStats) {
        self.bins.insert(key, stats);
    }

    /// Bins sorted by key — deterministic iteration for reports and tests.
    pub fn sorted_bins(&self) -> Vec<(&BinKey, &BinStats)> {
        let mut v: Vec<_> = self.bins.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }
}

mod bins_as_pairs {
    //! Serde helper: bin maps as ordered `[key, stats]` pair lists.
    use super::{BinKey, BinStats};
    use rustc_hash::FxHashMap;
    use serde::{Deserialize, Serialize};

    pub fn to_json(bins: &FxHashMap<BinKey, BinStats>) -> serde::Value {
        let mut pairs: Vec<(&BinKey, &BinStats)> = bins.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Serialize::to_json(&pairs)
    }

    pub fn from_json(v: &serde::Value) -> Result<FxHashMap<BinKey, BinStats>, serde::DeError> {
        let pairs: Vec<(BinKey, BinStats)> = Deserialize::from_json(v)?;
        Ok(pairs.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: i64) -> BinKey {
        BinKey::d1(BinCoord::Bucket(i))
    }

    #[test]
    fn exact_stats_have_zero_margins() {
        let s = BinStats::exact(vec![3.0, 4.5]);
        assert_eq!(s.margins, vec![0.0, 0.0]);
    }

    #[test]
    fn value_accessor() {
        let mut r = AggResult::empty_exact();
        r.insert(key(2), BinStats::exact(vec![10.0]));
        assert_eq!(r.value(&key(2), 0), Some(10.0));
        assert_eq!(r.value(&key(2), 1), None);
        assert_eq!(r.value(&key(3), 0), None);
        assert_eq!(r.bins_delivered(), 1);
    }

    #[test]
    fn sorted_bins_is_deterministic() {
        let mut r = AggResult::empty_exact();
        for i in [5, 1, 3] {
            r.insert(key(i), BinStats::exact(vec![i as f64]));
        }
        let order: Vec<i64> = r
            .sorted_bins()
            .iter()
            .map(|(k, _)| match k.coords()[0] {
                BinCoord::Bucket(b) => b,
                BinCoord::Cat(c) => i64::from(c),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn bin_key_ordering_mixes_dims() {
        let a = BinKey::d2(BinCoord::Cat(0), BinCoord::Bucket(5));
        let b = BinKey::d2(BinCoord::Cat(1), BinCoord::Bucket(0));
        assert!(a < b);
    }

    #[test]
    fn result_serde_roundtrip() {
        let mut r = AggResult::empty_exact();
        r.insert(
            BinKey::d2(BinCoord::Cat(1), BinCoord::Bucket(-2)),
            BinStats::approximate(vec![1.5], vec![0.2]),
        );
        let js = serde_json::to_string(&r).unwrap();
        let back: AggResult = serde_json::from_str(&js).unwrap();
        assert_eq!(r, back);
    }
}
