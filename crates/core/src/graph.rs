//! The visualization dependency graph the driver maintains (paper §2.2).
//!
//! Dashboards are "dependency graphs of visualization and filter objects":
//! nodes are live visualizations, directed edges are links. Filtering or
//! selecting on a node forces every reachable downstream node to update,
//! which is what fans a single interaction out into multiple concurrent
//! queries.

use crate::error::CoreError;
use crate::interaction::Interaction;
use crate::query::Query;
use crate::spec::{BinDef, FilterExpr, Predicate, SelCoord, Selection, VizSpec};
use std::collections::BTreeMap;

/// State of one live visualization.
#[derive(Debug, Clone)]
struct VizNode {
    spec: VizSpec,
    selection: Option<Selection>,
    /// Names of vizs this node links *to* (this node is the source).
    targets: Vec<String>,
}

/// The driver's dashboard state machine.
#[derive(Debug, Clone, Default)]
pub struct VizGraph {
    // BTreeMap for deterministic iteration order in reports/tests.
    nodes: BTreeMap<String, VizNode>,
}

impl VizGraph {
    /// An empty dashboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live visualizations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the dashboard is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether a viz with this name is live.
    pub fn contains(&self, name: &str) -> bool {
        self.nodes.contains_key(name)
    }

    /// The spec of a live viz.
    pub fn spec(&self, name: &str) -> Option<&VizSpec> {
        self.nodes.get(name).map(|n| &n.spec)
    }

    /// Applies an interaction, returning the names of the visualizations
    /// that must update, in deterministic order (paper §4.3 semantics; see
    /// [`Interaction`] for which interaction updates what).
    pub fn apply(&mut self, interaction: &Interaction) -> Result<Vec<String>, CoreError> {
        match interaction {
            Interaction::CreateViz { viz } => {
                if self.nodes.contains_key(&viz.name) {
                    return Err(CoreError::DuplicateViz(viz.name.clone()));
                }
                self.nodes.insert(
                    viz.name.clone(),
                    VizNode {
                        spec: viz.clone(),
                        selection: None,
                        targets: Vec::new(),
                    },
                );
                Ok(vec![viz.name.clone()])
            }
            Interaction::SetFilter { viz, filter } => {
                let node = self
                    .nodes
                    .get_mut(viz)
                    .ok_or_else(|| CoreError::UnknownViz(viz.clone()))?;
                node.spec.filter = filter.clone();
                // The filtered viz itself plus everything downstream updates.
                let mut affected = vec![viz.clone()];
                self.collect_downstream(viz, &mut affected);
                Ok(affected)
            }
            Interaction::Select { viz, selection } => {
                let node = self
                    .nodes
                    .get_mut(viz)
                    .ok_or_else(|| CoreError::UnknownViz(viz.clone()))?;
                node.selection = selection.clone();
                // Only linked downstream vizs update; the source keeps its
                // own result (its data did not change).
                let mut affected = Vec::new();
                self.collect_downstream(viz, &mut affected);
                Ok(affected)
            }
            Interaction::Link { source, target } => {
                if !self.nodes.contains_key(source) {
                    return Err(CoreError::UnknownViz(source.clone()));
                }
                if !self.nodes.contains_key(target) {
                    return Err(CoreError::UnknownViz(target.clone()));
                }
                if self.reachable(target, source) {
                    return Err(CoreError::LinkCycle {
                        source: source.clone(),
                        target: target.clone(),
                    });
                }
                let node = self.nodes.get_mut(source).expect("checked above");
                if !node.targets.contains(target) {
                    node.targets.push(target.clone());
                }
                // The target (and its own downstream) must now reflect the
                // source's filter/selection.
                let mut affected = vec![target.clone()];
                self.collect_downstream(target, &mut affected);
                Ok(affected)
            }
            Interaction::Discard { viz } => {
                if self.nodes.remove(viz).is_none() {
                    return Err(CoreError::UnknownViz(viz.clone()));
                }
                for node in self.nodes.values_mut() {
                    node.targets.retain(|t| t != viz);
                }
                Ok(Vec::new())
            }
        }
    }

    /// Whether `to` is reachable from `from` following links.
    fn reachable(&self, from: &str, to: &str) -> bool {
        let mut stack = vec![from.to_string()];
        let mut visited = Vec::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if visited.contains(&n) {
                continue;
            }
            visited.push(n.clone());
            if let Some(node) = self.nodes.get(&n) {
                stack.extend(node.targets.iter().cloned());
            }
        }
        false
    }

    /// Appends all vizs reachable downstream of `name` (excluding `name`
    /// itself unless re-reached), deduplicated, in BFS order.
    fn collect_downstream(&self, name: &str, out: &mut Vec<String>) {
        let mut queue: Vec<&str> = match self.nodes.get(name) {
            Some(n) => n.targets.iter().map(String::as_str).collect(),
            None => return,
        };
        let mut qi = 0;
        while qi < queue.len() {
            let current = queue[qi];
            qi += 1;
            if out.iter().any(|o| o == current) {
                continue;
            }
            out.push(current.to_string());
            if let Some(n) = self.nodes.get(current) {
                queue.extend(n.targets.iter().map(String::as_str));
            }
        }
    }

    /// Direct upstream sources of `name` (vizs that link *into* it).
    fn sources_of(&self, name: &str) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.targets.iter().any(|t| t == name))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Builds the fully-composed query for a live viz: its own filter, AND
    /// the filter+selection of every (transitively) upstream linked viz.
    pub fn query_for(&self, name: &str) -> Result<Query, CoreError> {
        let node = self
            .nodes
            .get(name)
            .ok_or_else(|| CoreError::UnknownViz(name.to_string()))?;
        let mut filter = node.spec.filter.clone();

        // Walk upstream breadth-first, visited-guarded.
        let mut queue: Vec<&str> = self.sources_of(name);
        let mut visited: Vec<&str> = vec![name];
        let mut qi = 0;
        while qi < queue.len() {
            let current = queue[qi];
            qi += 1;
            if visited.contains(&current) {
                continue;
            }
            visited.push(current);
            let src = self.nodes.get(current).expect("graph is consistent");
            if let Some(f) = &src.spec.filter {
                filter = Some(FilterExpr::and_opt(filter, f.clone()));
            }
            if let Some(sel) = &src.selection {
                if let Some(pred) = selection_to_filter(&src.spec, sel) {
                    filter = Some(FilterExpr::and_opt(filter, pred));
                }
            }
            queue.extend(self.sources_of(current));
        }

        Ok(Query::for_viz(&node.spec, filter))
    }

    /// Live viz names in deterministic order.
    pub fn viz_names(&self) -> Vec<&str> {
        self.nodes.keys().map(String::as_str).collect()
    }
}

/// Translates a brushed selection on a viz into a filter usable by linked
/// targets: OR over selected bins, AND over that bin's per-dimension
/// conditions (paper Figure 4's `WHERE` clauses).
pub fn selection_to_filter(spec: &VizSpec, selection: &Selection) -> Option<FilterExpr> {
    let mut bin_exprs = Vec::with_capacity(selection.bins.len());
    for bin in &selection.bins {
        let mut conds = Vec::with_capacity(bin.len());
        for (dim_idx, coord) in bin.iter().enumerate() {
            let bindef = spec.binning.get(dim_idx)?;
            let pred = match (bindef, coord) {
                (BinDef::Nominal { dimension }, SelCoord::Category(value)) => Predicate::In {
                    column: dimension.clone(),
                    values: vec![value.clone()],
                },
                (
                    BinDef::Width {
                        dimension,
                        width,
                        anchor,
                    },
                    SelCoord::Bucket(idx),
                ) => Predicate::Range {
                    column: dimension.clone(),
                    min: anchor + *idx as f64 * width,
                    max: anchor + (*idx + 1) as f64 * width,
                },
                // Count-based bins require the data min/max; the driver
                // resolves Count binnings to Width binnings before queries
                // reach this point, so reaching here is a caller bug.
                (BinDef::Count { .. }, _) => return None,
                // Coordinate kind mismatch: selection doesn't fit the spec.
                _ => return None,
            };
            conds.push(FilterExpr::Pred(pred));
        }
        bin_exprs.push(if conds.len() == 1 {
            conds.pop().expect("one condition")
        } else {
            FilterExpr::And(conds)
        });
    }
    match bin_exprs.len() {
        0 => None,
        1 => Some(bin_exprs.pop().expect("one bin")),
        _ => Some(FilterExpr::Or(bin_exprs)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AggregateSpec;

    fn viz(name: &str) -> VizSpec {
        VizSpec::new(
            name,
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::count()],
        )
    }

    fn quant_viz(name: &str) -> VizSpec {
        VizSpec::new(
            name,
            "flights",
            vec![BinDef::Width {
                dimension: "dep_delay".into(),
                width: 10.0,
                anchor: 0.0,
            }],
            vec![AggregateSpec::count()],
        )
    }

    fn create(g: &mut VizGraph, spec: VizSpec) -> Vec<String> {
        g.apply(&Interaction::CreateViz { viz: spec }).unwrap()
    }

    fn link(g: &mut VizGraph, s: &str, t: &str) -> Vec<String> {
        g.apply(&Interaction::Link {
            source: s.into(),
            target: t.into(),
        })
        .unwrap()
    }

    #[test]
    fn create_affects_only_itself() {
        let mut g = VizGraph::new();
        assert_eq!(create(&mut g, viz("a")), vec!["a"]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut g = VizGraph::new();
        create(&mut g, viz("a"));
        assert!(matches!(
            g.apply(&Interaction::CreateViz { viz: viz("a") }),
            Err(CoreError::DuplicateViz(_))
        ));
    }

    #[test]
    fn filter_affects_self_and_downstream() {
        let mut g = VizGraph::new();
        create(&mut g, viz("a"));
        create(&mut g, viz("b"));
        create(&mut g, viz("c"));
        link(&mut g, "a", "b");
        link(&mut g, "b", "c");
        let affected = g
            .apply(&Interaction::SetFilter {
                viz: "a".into(),
                filter: None,
            })
            .unwrap();
        assert_eq!(affected, vec!["a", "b", "c"]);
    }

    #[test]
    fn select_affects_only_downstream() {
        let mut g = VizGraph::new();
        create(&mut g, viz("a"));
        create(&mut g, viz("b"));
        link(&mut g, "a", "b");
        let affected = g
            .apply(&Interaction::Select {
                viz: "a".into(),
                selection: Some(Selection {
                    bins: vec![vec![SelCoord::Category("AA".into())]],
                }),
            })
            .unwrap();
        assert_eq!(affected, vec!["b"]);
    }

    #[test]
    fn one_to_n_linking_fans_out() {
        // Figure 3c: selection on one source updates N targets.
        let mut g = VizGraph::new();
        create(&mut g, viz("src"));
        for t in ["t1", "t2", "t3"] {
            create(&mut g, viz(t));
            link(&mut g, "src", t);
        }
        let affected = g
            .apply(&Interaction::Select {
                viz: "src".into(),
                selection: Some(Selection {
                    bins: vec![vec![SelCoord::Category("AA".into())]],
                }),
            })
            .unwrap();
        assert_eq!(affected.len(), 3);
    }

    #[test]
    fn n_to_one_linking_composes_filters() {
        // Figure 3d: filters on any of N sources affect one target.
        let mut g = VizGraph::new();
        create(&mut g, viz("n1"));
        create(&mut g, quant_viz("n2"));
        create(&mut g, viz("target"));
        link(&mut g, "n1", "target");
        link(&mut g, "n2", "target");
        g.apply(&Interaction::Select {
            viz: "n1".into(),
            selection: Some(Selection {
                bins: vec![vec![SelCoord::Category("AA".into())]],
            }),
        })
        .unwrap();
        g.apply(&Interaction::Select {
            viz: "n2".into(),
            selection: Some(Selection {
                bins: vec![vec![SelCoord::Bucket(2)]],
            }),
        })
        .unwrap();
        let q = g.query_for("target").unwrap();
        // Both upstream selections must appear in the composed filter.
        assert_eq!(q.filter_specificity(), 2);
        let cols = q.referenced_columns();
        assert!(cols.contains(&"dep_delay"));
    }

    #[test]
    fn cycle_rejected() {
        let mut g = VizGraph::new();
        create(&mut g, viz("a"));
        create(&mut g, viz("b"));
        link(&mut g, "a", "b");
        assert!(matches!(
            g.apply(&Interaction::Link {
                source: "b".into(),
                target: "a".into()
            }),
            Err(CoreError::LinkCycle { .. })
        ));
        // Self-link is also a cycle.
        assert!(matches!(
            g.apply(&Interaction::Link {
                source: "a".into(),
                target: "a".into()
            }),
            Err(CoreError::LinkCycle { .. })
        ));
    }

    #[test]
    fn discard_removes_node_and_edges() {
        let mut g = VizGraph::new();
        create(&mut g, viz("a"));
        create(&mut g, viz("b"));
        link(&mut g, "a", "b");
        g.apply(&Interaction::Discard { viz: "b".into() }).unwrap();
        assert!(!g.contains("b"));
        // a's edge to b is gone: filtering a affects only a.
        let affected = g
            .apply(&Interaction::SetFilter {
                viz: "a".into(),
                filter: None,
            })
            .unwrap();
        assert_eq!(affected, vec!["a"]);
    }

    #[test]
    fn selection_to_filter_quantitative_range() {
        let spec = quant_viz("q");
        let sel = Selection {
            bins: vec![vec![SelCoord::Bucket(3)], vec![SelCoord::Bucket(5)]],
        };
        let f = selection_to_filter(&spec, &sel).unwrap();
        match &f {
            FilterExpr::Or(children) => {
                assert_eq!(children.len(), 2);
                match &children[0] {
                    FilterExpr::Pred(Predicate::Range { min, max, .. }) => {
                        assert_eq!(*min, 30.0);
                        assert_eq!(*max, 40.0);
                    }
                    other => panic!("expected range, got {other:?}"),
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn selection_on_unknown_viz_errors() {
        let mut g = VizGraph::new();
        assert!(matches!(
            g.apply(&Interaction::Select {
                viz: "nope".into(),
                selection: None
            }),
            Err(CoreError::UnknownViz(_))
        ));
    }

    #[test]
    fn query_for_composes_transitively() {
        let mut g = VizGraph::new();
        let mut a = viz("a");
        a.filter = Some(FilterExpr::Pred(Predicate::In {
            column: "origin_state".into(),
            values: vec!["CA".into()],
        }));
        create(&mut g, a);
        create(&mut g, viz("b"));
        create(&mut g, viz("c"));
        link(&mut g, "a", "b");
        link(&mut g, "b", "c");
        let q = g.query_for("c").unwrap();
        // a's filter propagates through b to c.
        assert_eq!(q.filter_specificity(), 1);
        assert!(q.referenced_columns().contains(&"origin_state"));
    }
}
