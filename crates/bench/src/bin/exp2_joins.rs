//! **Experiment 2 (paper §5.3, Figure 6e):** normalized vs de-normalized
//! schemas.
//!
//! Compares the exact (MonetDB-class) and wander (XDB-class) engines on the
//! S and M dataset scales, each in de-normalized form and normalized into
//! the carriers/airports star schema, and prints the TR-violation ratios.
//! Expected shape (paper): both systems slightly better normalized; the
//! exact engine's violations grow with size while the wander engine's stay
//! roughly level thanks to online joins.
//!
//! **Reproduction extension:** the paper excluded IDEA and System X here
//! because they rejected normalized data. Our progressive and stratified
//! engines run star schemas through the join-devirtualization layer (the
//! virtual cost model still bills every logical join), so the sweep covers
//! them too — rows the paper could not measure.

use idebench_bench::{
    default_workflows, flights_dataset, run_workflows, service_by_name, star_dataset, ExpArgs,
};
use idebench_core::{DetailedReport, SummaryReport};
use idebench_workflow::WorkflowType;

/// The paper's Exp-2 roster plus the engines the paper had to exclude
/// (their originals rejected normalized data; ours run it).
const SYSTEMS: [&str; 4] = ["exact", "wander", "progressive", "stratified"];

fn main() {
    let args = ExpArgs::parse();
    println!("exp2: normalized vs de-normalized, TR=3s, systems {SYSTEMS:?}");
    let workflows = default_workflows(WorkflowType::Mixed, args.seed, 10, 18);

    println!(
        "\n{:<10} {:<8} {:<14} {:>8} {:>12}",
        "system", "scale", "schema", "queries", "%TR_violated"
    );
    let mut results = Vec::new();
    for scale in ['S', 'M'] {
        let rows = args.rows(scale);
        let denorm = flights_dataset(rows, args.seed);
        let star = star_dataset(&denorm);
        for (schema_label, dataset, use_joins) in [
            ("denormalized", &denorm, false),
            ("normalized", &star, true),
        ] {
            let mut gt = idebench_bench::parallel_ground_truth(dataset, &workflows);
            for system in SYSTEMS {
                let settings = args
                    .settings()
                    .with_time_requirement_ms(3_000)
                    .with_think_time_ms(1_000)
                    .with_joins(use_joins);
                let service = service_by_name(system);
                let report =
                    run_workflows(service.as_ref(), dataset, &workflows, &settings, &mut gt)
                        .unwrap_or_else(|e| panic!("{system} {schema_label} {scale}: {e}"));
                let summary = SummaryReport::from_detailed(&report);
                let row = &summary.rows[0];
                println!(
                    "{:<10} {:<8} {:<14} {:>8} {:>12.1}",
                    system, scale, schema_label, row.queries, row.pct_tr_violated
                );
                results.push(serde_json::json!({
                    "system": system,
                    "scale": scale.to_string(),
                    "schema": schema_label,
                    "pct_tr_violated": row.pct_tr_violated,
                    "mean_missing_bins": row.mean_missing_bins,
                }));
                let _ = DetailedReport::merged([report]);
            }
        }
        eprintln!("  done: scale {scale}");
    }
    args.write_json("exp2_joins.json", &results);
}
