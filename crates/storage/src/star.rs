//! Star-schema datasets: a fact table plus dimension tables joined by
//! integer foreign keys.
//!
//! IDEBench runs on data-warehouse star schemas "in both de-normalized and
//! normalized form" (paper §3.1). [`Dataset`] is the handle the benchmark
//! passes to system adapters; engines that only support de-normalized data
//! (like the paper's IDEA and System X) reject the `Star` variant.

use crate::error::StorageError;
use crate::table::Table;
use std::sync::Arc;

/// Specification of one dimension split out of a de-normalized table.
///
/// `attributes` move into the dimension table; `fk_name` is the surrogate-key
/// column added to the fact table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionSpec {
    /// Name of the dimension table to create (e.g. `"carriers"`).
    pub table_name: String,
    /// Name of the foreign-key column added to the fact table.
    pub fk_name: String,
    /// De-normalized columns that move into the dimension table.
    pub attributes: Vec<String>,
}

impl DimensionSpec {
    /// Creates a dimension spec.
    pub fn new(
        table_name: impl Into<String>,
        fk_name: impl Into<String>,
        attributes: Vec<String>,
    ) -> Self {
        DimensionSpec {
            table_name: table_name.into(),
            fk_name: fk_name.into(),
            attributes,
        }
    }
}

/// A normalized dataset: one fact table and its dimensions.
#[derive(Debug, Clone)]
pub struct StarSchema {
    fact: Arc<Table>,
    dimensions: Vec<(DimensionSpec, Arc<Table>)>,
}

impl StarSchema {
    /// Assembles a star schema. Each dimension's `fk_name` must exist as an
    /// integer column of the fact table, and key values must be valid row
    /// indexes of the dimension table.
    pub fn new(
        fact: Arc<Table>,
        dimensions: Vec<(DimensionSpec, Arc<Table>)>,
    ) -> Result<Self, StorageError> {
        for (spec, dim) in &dimensions {
            let fk = fact.column(&spec.fk_name)?;
            let keys = fk.as_int().ok_or_else(|| StorageError::TypeMismatch {
                column: spec.fk_name.clone(),
                expected: "int",
                got: "non-int",
            })?;
            let n = dim.num_rows() as i64;
            if let Some(&bad) = keys.iter().find(|&&k| k < 0 || k >= n) {
                return Err(StorageError::Csv {
                    line: 0,
                    message: format!(
                        "foreign key {bad} out of range for dimension {} ({} rows)",
                        spec.table_name, n
                    ),
                });
            }
        }
        Ok(StarSchema { fact, dimensions })
    }

    /// The fact table.
    pub fn fact(&self) -> &Arc<Table> {
        &self.fact
    }

    /// The dimension tables with their specs.
    pub fn dimensions(&self) -> &[(DimensionSpec, Arc<Table>)] {
        &self.dimensions
    }

    /// Finds the dimension table holding `column`, if any.
    pub fn dimension_of_column(&self, column: &str) -> Option<(&DimensionSpec, &Arc<Table>)> {
        self.dimensions
            .iter()
            .find(|(_, t)| t.schema().index_of(column).is_ok())
            .map(|(s, t)| (s, t))
    }

    /// Dimension by table name.
    pub fn dimension(
        &self,
        table_name: &str,
    ) -> Result<(&DimensionSpec, &Arc<Table>), StorageError> {
        self.dimensions
            .iter()
            .find(|(s, _)| s.table_name == table_name)
            .map(|(s, t)| (s, t))
            .ok_or_else(|| StorageError::UnknownTable(table_name.to_string()))
    }

    /// Total rows across fact and dimensions (size metric for reports).
    pub fn total_rows(&self) -> usize {
        self.fact.num_rows()
            + self
                .dimensions
                .iter()
                .map(|(_, t)| t.num_rows())
                .sum::<usize>()
    }

    /// Total byte footprint across fact and dimensions.
    pub fn byte_size(&self) -> usize {
        self.fact.byte_size()
            + self
                .dimensions
                .iter()
                .map(|(_, t)| t.byte_size())
                .sum::<usize>()
    }
}

/// The dataset handle handed to system adapters.
#[derive(Debug, Clone)]
pub enum Dataset {
    /// One wide de-normalized table.
    Denormalized(Arc<Table>),
    /// Fact + dimensions (normalized star schema).
    Star(Arc<StarSchema>),
}

impl Dataset {
    /// Rows in the fact (or single) table — the "size" of the dataset in the
    /// sense of the paper's S/M/L settings.
    pub fn fact_rows(&self) -> usize {
        match self {
            Dataset::Denormalized(t) => t.num_rows(),
            Dataset::Star(s) => s.fact.num_rows(),
        }
    }

    /// True when the dataset is normalized (requires join support).
    pub fn is_normalized(&self) -> bool {
        matches!(self, Dataset::Star(_))
    }

    /// Total byte footprint.
    pub fn byte_size(&self) -> usize {
        match self {
            Dataset::Denormalized(t) => t.byte_size(),
            Dataset::Star(s) => s.byte_size(),
        }
    }

    /// The de-normalized table, if this dataset is de-normalized.
    pub fn as_denormalized(&self) -> Option<&Arc<Table>> {
        match self {
            Dataset::Denormalized(t) => Some(t),
            Dataset::Star(_) => None,
        }
    }

    /// The star schema, if this dataset is normalized.
    pub fn as_star(&self) -> Option<&Arc<StarSchema>> {
        match self {
            Dataset::Star(s) => Some(s),
            Dataset::Denormalized(_) => None,
        }
    }

    /// Computes and caches numeric min/max statistics for every column
    /// (see [`crate::Column::numeric_min_max`]).
    ///
    /// Engines call this during `prepare`, where load/preprocess cost is
    /// already reported, so plan compilation never pays a lazy O(rows)
    /// stats scan inside `submit` — a cost the work-unit accounting could
    /// not otherwise see.
    pub fn warm_numeric_stats(&self) {
        let warm = |t: &Table| {
            for col in t.columns() {
                let _ = col.numeric_min_max();
            }
        };
        match self {
            Dataset::Denormalized(t) => warm(t),
            Dataset::Star(s) => {
                warm(s.fact());
                for (_, dim) in s.dimensions() {
                    warm(dim);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::DataType;
    use crate::table::{TableBuilder, Value};

    fn fact() -> Arc<Table> {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("dep_delay", DataType::Float),
                ("carrier_key", DataType::Int),
            ],
        );
        for (d, k) in [(1.0, 0i64), (2.0, 1), (3.0, 0)] {
            b.push_row(&[d.into(), k.into()]).unwrap();
        }
        Arc::new(b.finish())
    }

    fn carriers() -> Arc<Table> {
        let mut b = TableBuilder::with_fields("carriers", &[("carrier", DataType::Nominal)]);
        b.push_row(&[Value::Str("AA".into())]).unwrap();
        b.push_row(&[Value::Str("DL".into())]).unwrap();
        Arc::new(b.finish())
    }

    fn spec() -> DimensionSpec {
        DimensionSpec::new("carriers", "carrier_key", vec!["carrier".into()])
    }

    #[test]
    fn star_schema_validates_keys() {
        let s = StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap();
        assert_eq!(s.total_rows(), 5);
        assert!(s.dimension("carriers").is_ok());
        assert!(s.dimension("nope").is_err());
    }

    #[test]
    fn out_of_range_fk_rejected() {
        let mut b = TableBuilder::with_fields("f", &[("carrier_key", DataType::Int)]);
        b.push_row(&[Value::Int(5)]).unwrap();
        let bad_fact = Arc::new(b.finish());
        assert!(StarSchema::new(bad_fact, vec![(spec(), carriers())]).is_err());
    }

    #[test]
    fn dimension_of_column_finds_home_table() {
        let s = StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap();
        let (d, _) = s.dimension_of_column("carrier").unwrap();
        assert_eq!(d.table_name, "carriers");
        assert!(s.dimension_of_column("dep_delay").is_none());
    }

    #[test]
    fn dataset_accessors() {
        let denorm = Dataset::Denormalized(fact());
        assert_eq!(denorm.fact_rows(), 3);
        assert!(!denorm.is_normalized());
        assert!(denorm.as_denormalized().is_some());

        let star = Dataset::Star(Arc::new(
            StarSchema::new(fact(), vec![(spec(), carriers())]).unwrap(),
        ));
        assert!(star.is_normalized());
        assert_eq!(star.fact_rows(), 3);
        assert!(star.as_star().is_some());
        assert!(star.byte_size() > 0);
    }
}
