//! Compiled filter evaluation.

use crate::resolve::ResolvedColumn;
use idebench_core::{CoreError, FilterExpr, Predicate};
use idebench_storage::{Dataset, SelVec, Table};
use rustc_hash::FxHashSet;

/// A filter tree bound to physical columns, evaluable per row.
pub enum CompiledFilter<'a> {
    /// Quantitative half-open range test.
    Range {
        /// Bound column.
        col: ResolvedColumn<'a>,
        /// Inclusive lower bound.
        min: f64,
        /// Exclusive upper bound.
        max: f64,
    },
    /// Nominal membership test over dictionary codes.
    In {
        /// Bound column.
        col: ResolvedColumn<'a>,
        /// Accepted codes. Categories absent from the dictionary simply
        /// never match (the filter referenced a value not in the data).
        codes: FxHashSet<u32>,
    },
    /// All children must match (empty = TRUE).
    And(Vec<CompiledFilter<'a>>),
    /// Any child must match (empty = FALSE).
    Or(Vec<CompiledFilter<'a>>),
}

impl<'a> CompiledFilter<'a> {
    /// Compiles an expression against a dataset.
    pub fn compile(dataset: &'a Dataset, expr: &FilterExpr) -> Result<Self, CoreError> {
        Self::compile_with(expr, &mut |name| ResolvedColumn::new(dataset, name))
    }

    /// Compiles an expression against a bare table (sample tables).
    pub fn compile_on_table(table: &'a Table, expr: &FilterExpr) -> Result<Self, CoreError> {
        Self::compile_with(expr, &mut |name| ResolvedColumn::on_table(table, name))
    }

    fn compile_with(
        expr: &FilterExpr,
        resolve: &mut dyn FnMut(&str) -> Result<ResolvedColumn<'a>, CoreError>,
    ) -> Result<Self, CoreError> {
        Ok(match expr {
            FilterExpr::Pred(Predicate::Range { column, min, max }) => CompiledFilter::Range {
                col: resolve(column)?,
                min: *min,
                max: *max,
            },
            FilterExpr::Pred(Predicate::In { column, values }) => {
                let col = resolve(column)?;
                let codes = match col.column().as_nominal() {
                    Some((_, dict)) => values.iter().filter_map(|v| dict.code(v)).collect(),
                    None => {
                        return Err(CoreError::Storage(format!(
                            "IN filter on non-nominal column {column}"
                        )))
                    }
                };
                CompiledFilter::In { col, codes }
            }
            FilterExpr::And(children) => CompiledFilter::And(
                children
                    .iter()
                    .map(|c| Self::compile_with(c, resolve))
                    .collect::<Result<_, _>>()?,
            ),
            FilterExpr::Or(children) => CompiledFilter::Or(
                children
                    .iter()
                    .map(|c| Self::compile_with(c, resolve))
                    .collect::<Result<_, _>>()?,
            ),
        })
    }

    /// Whether the (fact) row matches. Null values never match a predicate,
    /// mirroring SQL three-valued logic collapsing to FALSE in WHERE.
    #[inline]
    pub fn matches(&self, row: usize) -> bool {
        match self {
            CompiledFilter::Range { col, min, max } => match col.numeric_at(row) {
                Some(v) => v >= *min && v < *max,
                None => false,
            },
            CompiledFilter::In { col, codes } => match col.code_at(row) {
                Some(c) => codes.contains(&c),
                None => false,
            },
            CompiledFilter::And(children) => children.iter().all(|c| c.matches(row)),
            CompiledFilter::Or(children) => children.iter().any(|c| c.matches(row)),
        }
    }

    /// Vectorized evaluation into a selection vector over `num_rows`.
    pub fn eval_selvec(&self, num_rows: usize) -> SelVec {
        let mut sel = SelVec::all(num_rows);
        sel.refine(|row| self.matches(row));
        sel
    }

    /// Number of join-accessed columns in the tree (cost model input).
    pub fn joined_columns(&self) -> usize {
        match self {
            CompiledFilter::Range { col, .. } => usize::from(col.is_joined()),
            CompiledFilter::In { col, .. } => usize::from(col.is_joined()),
            CompiledFilter::And(children) | CompiledFilter::Or(children) => {
                children.iter().map(CompiledFilter::joined_columns).sum()
            }
        }
    }

    /// Total scan width of the filtered columns in 4-byte units.
    pub fn width_units(&self) -> f64 {
        match self {
            CompiledFilter::Range { col, .. } | CompiledFilter::In { col, .. } => col.width_units(),
            CompiledFilter::And(children) | CompiledFilter::Or(children) => {
                children.iter().map(CompiledFilter::width_units).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_storage::{DataType, TableBuilder, Value};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
            ],
        );
        for (c, d) in [("AA", 5.0), ("DL", 15.0), ("AA", 25.0), ("UA", -3.0)] {
            b.push_row(&[c.into(), d.into()]).unwrap();
        }
        Dataset::Denormalized(Arc::new(b.finish()))
    }

    fn range(min: f64, max: f64) -> FilterExpr {
        FilterExpr::Pred(Predicate::Range {
            column: "dep_delay".into(),
            min,
            max,
        })
    }

    fn isin(values: &[&str]) -> FilterExpr {
        FilterExpr::Pred(Predicate::In {
            column: "carrier".into(),
            values: values.iter().map(|s| s.to_string()).collect(),
        })
    }

    #[test]
    fn range_is_half_open() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &range(5.0, 15.0)).unwrap();
        assert!(f.matches(0)); // 5.0 included
        assert!(!f.matches(1)); // 15.0 excluded
        assert!(!f.matches(3)); // -3.0 below
    }

    #[test]
    fn in_matches_codes() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["AA", "UA"])).unwrap();
        assert!(f.matches(0));
        assert!(!f.matches(1));
        assert!(f.matches(3));
    }

    #[test]
    fn unknown_category_never_matches() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["ZZ"])).unwrap();
        assert!((0..4).all(|r| !f.matches(r)));
    }

    #[test]
    fn and_or_combinators() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["AA"]).and(range(0.0, 10.0))).unwrap();
        assert!(f.matches(0)); // AA, 5.0
        assert!(!f.matches(2)); // AA, 25.0

        let or = FilterExpr::Or(vec![isin(&["DL"]), range(20.0, 30.0)]);
        let f2 = CompiledFilter::compile(&ds, &or).unwrap();
        assert!(f2.matches(1));
        assert!(f2.matches(2));
        assert!(!f2.matches(0));
    }

    #[test]
    fn eval_selvec_counts() {
        let ds = dataset();
        let f = CompiledFilter::compile(&ds, &isin(&["AA"])).unwrap();
        let sel = f.eval_selvec(4);
        assert_eq!(sel.count(), 2);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn in_on_float_column_rejected() {
        let ds = dataset();
        let bad = FilterExpr::Pred(Predicate::In {
            column: "dep_delay".into(),
            values: vec!["5".into()],
        });
        assert!(CompiledFilter::compile(&ds, &bad).is_err());
    }

    #[test]
    fn null_rows_never_match() {
        let mut b = TableBuilder::with_fields("t", &[("x", DataType::Float)]);
        b.push_row(&[Value::Null]).unwrap();
        b.push_row(&[0.5.into()]).unwrap();
        let ds = Dataset::Denormalized(Arc::new(b.finish()));
        let f = CompiledFilter::compile(
            &ds,
            &FilterExpr::Pred(Predicate::Range {
                column: "x".into(),
                min: f64::NEG_INFINITY,
                max: f64::INFINITY,
            }),
        )
        .unwrap();
        assert!(!f.matches(0));
        assert!(f.matches(1));
    }

    #[test]
    fn empty_and_or_semantics() {
        let ds = dataset();
        let t = CompiledFilter::compile(&ds, &FilterExpr::And(vec![])).unwrap();
        assert!(t.matches(0));
        let f = CompiledFilter::compile(&ds, &FilterExpr::Or(vec![])).unwrap();
        assert!(!f.matches(0));
    }
}
