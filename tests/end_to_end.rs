//! Cross-crate integration tests: the full benchmark pipeline on every
//! engine, checking the *behavioural contracts* each paper system category
//! must exhibit.

use idebench::core::{
    BenchmarkDriver, DetailedReport, ExecutionMode, GroundTruthProvider, Settings, SummaryReport,
    SystemAdapter,
};
use idebench::engine_cache::CachingAdapter;
use idebench::engine_exact::ExactAdapter;
use idebench::engine_progressive::ProgressiveAdapter;
use idebench::engine_stratified::StratifiedAdapter;
use idebench::engine_wander::WanderAdapter;
use idebench::query::CachedGroundTruth;
use idebench::storage::Dataset;
use idebench::workflow::{Workflow, WorkflowGenerator, WorkflowType};
use std::sync::Arc;

const ROWS: usize = 60_000;
const RATE: f64 = 3e4; // full 1-unit scan of ROWS = 2 virtual seconds

fn dataset() -> Dataset {
    Dataset::Denormalized(Arc::new(idebench::datagen::flights::generate(ROWS, 42)))
}

fn workflows() -> Vec<Workflow> {
    WorkflowGenerator::new(WorkflowType::Mixed, 42).generate_batch(3, 12)
}

fn settings(tr_ms: u64) -> Settings {
    Settings::default()
        .with_time_requirement_ms(tr_ms)
        .with_think_time_ms(200)
        .with_execution(ExecutionMode::Virtual { work_rate: RATE })
}

fn run(
    adapter: &mut dyn SystemAdapter,
    dataset: &Dataset,
    tr_ms: u64,
    gt: &mut CachedGroundTruth,
) -> DetailedReport {
    let driver = BenchmarkDriver::new(settings(tr_ms));
    let mut parts = Vec::new();
    for wf in workflows() {
        let outcome = driver.run_workflow(adapter, dataset, &wf).expect("runs");
        parts.push(DetailedReport::from_outcome(&outcome, gt));
    }
    DetailedReport::merged(parts)
}

#[test]
fn exact_engine_is_all_or_nothing() {
    let ds = dataset();
    let mut gt = CachedGroundTruth::new(ds.clone());
    let mut adapter = ExactAdapter::with_defaults();
    let report = run(&mut adapter, &ds, 1_000, &mut gt);
    for row in &report.rows {
        if row.tr_violated {
            assert_eq!(
                row.metrics.missing_bins, 1.0,
                "violated ⇒ nothing delivered"
            );
            assert_eq!(row.metrics.bins_delivered, 0);
        } else {
            assert_eq!(row.metrics.missing_bins, 0.0, "completed ⇒ complete");
            assert_eq!(row.metrics.rel_error_avg.unwrap_or(0.0), 0.0);
            assert_eq!(row.metrics.bins_out_of_margin, 0);
        }
    }
    // At this scale some queries must fall on each side.
    assert!(report.rows.iter().any(|r| r.tr_violated));
    assert!(report.rows.iter().any(|r| !r.tr_violated));
}

#[test]
fn progressive_quality_improves_with_time_requirement() {
    let ds = dataset();
    let mut gt = CachedGroundTruth::new(ds.clone());
    let mut missings = Vec::new();
    let mut violations = Vec::new();
    for tr in [200u64, 1_000, 5_000] {
        // Fresh adapter per TR, as the benchmark restarts systems per run.
        let mut adapter = ProgressiveAdapter::with_defaults();
        let report = run(&mut adapter, &ds, tr, &mut gt);
        let summary = SummaryReport::from_detailed(&report);
        missings.push(summary.rows[0].mean_missing_bins);
        violations.push(summary.rows[0].pct_tr_violated);
    }
    assert!(
        missings[0] > missings[1] && missings[1] > missings[2],
        "missing bins must fall with TR: {missings:?}"
    );
    // Near-zero violations at every TR (only warm-up can violate).
    assert!(violations.iter().all(|&v| v < 5.0), "{violations:?}");
}

#[test]
fn stratified_quality_constant_across_time_requirements() {
    let ds = dataset();
    let mut gt = CachedGroundTruth::new(ds.clone());
    let mut mres = Vec::new();
    for tr in [2_000u64, 10_000] {
        let mut adapter = StratifiedAdapter::with_defaults();
        let report = run(&mut adapter, &ds, tr, &mut gt);
        let summary = SummaryReport::from_detailed(&report);
        assert_eq!(summary.rows[0].pct_tr_violated, 0.0, "TR {tr} generous");
        mres.push(summary.rows[0].mean_mre.expect("has errors"));
    }
    // The offline sample doesn't improve with more time (paper §6).
    assert!(
        (mres[0] - mres[1]).abs() < 1e-9,
        "offline sample quality should not depend on TR: {mres:?}"
    );
}

#[test]
fn wander_violations_flat_across_time_requirements() {
    let ds = dataset();
    let mut gt = CachedGroundTruth::new(ds.clone());
    let mut rates = Vec::new();
    for tr in [500u64, 1_500] {
        let mut adapter = WanderAdapter::with_defaults();
        let report = run(&mut adapter, &ds, tr, &mut gt);
        let summary = SummaryReport::from_detailed(&report);
        rates.push(summary.rows[0].pct_tr_violated);
    }
    // Blocking-fallback queries dominate the violation rate at any TR.
    assert!(
        rates[0] > 30.0,
        "expected substantial violations: {rates:?}"
    );
    assert!(
        (rates[0] - rates[1]).abs() < 10.0,
        "violation rate should stay roughly level: {rates:?}"
    );
}

#[test]
fn middleware_layer_adds_overhead_but_same_results() {
    let ds = dataset();
    let mut gt = CachedGroundTruth::new(ds.clone());
    let mut bare = ExactAdapter::with_defaults();
    let bare_report = run(&mut bare, &ds, 20_000, &mut gt);
    // Result caching off: repeated queries answered from cache are *faster*
    // than a bare scan, which would mask the overhead this test pins down.
    let mut layered = CachingAdapter::new(
        ExactAdapter::with_defaults(),
        idebench::engine_cache::CacheConfig {
            overhead_s: 1.5,
            enable_cache: false,
        },
    );
    let layered_report = run(&mut layered, &ds, 20_000, &mut gt);

    let mean_lat = |r: &DetailedReport| {
        r.rows
            .iter()
            .map(|x| x.end_time - x.start_time)
            .sum::<f64>()
            / r.rows.len() as f64
    };
    // Same completeness, higher latency.
    assert!(mean_lat(&layered_report) > mean_lat(&bare_report) + 1_000.0);
    let total_missing =
        |r: &DetailedReport| r.rows.iter().map(|x| x.metrics.missing_bins).sum::<f64>();
    assert_eq!(total_missing(&layered_report), total_missing(&bare_report));
}

#[test]
fn preparation_cost_ordering_matches_paper() {
    let ds = dataset();
    let s = settings(1_000);
    let mut exact = ExactAdapter::with_defaults();
    let mut wander = WanderAdapter::with_defaults();
    let mut progressive = ProgressiveAdapter::with_defaults();
    let mut stratified = StratifiedAdapter::with_defaults();
    let p_exact = exact.prepare(&ds, &s).unwrap().total_units();
    let p_wander = wander.prepare(&ds, &s).unwrap().total_units();
    let p_prog = progressive.prepare(&ds, &s).unwrap().total_units();
    let p_strat = stratified.prepare(&ds, &s).unwrap().total_units();
    // Paper §5.2: IDEA (3 min) < MonetDB (19) < System X (27) < XDB (130).
    assert!(p_prog < p_exact);
    assert!(p_exact < p_strat);
    assert!(p_strat < p_wander);
}

#[test]
fn normalized_and_denormalized_agree_on_exact_results() {
    // Join correctness: the exact engine must produce identical results on
    // the star schema and the de-normalized original.
    let table = idebench::datagen::flights::generate(20_000, 9);
    let denorm = Dataset::Denormalized(Arc::new(table.clone()));
    let star = idebench::datagen::normalize_flights(&table).expect("normalizes");

    let mut gt_flat = CachedGroundTruth::new(denorm.clone());
    let mut adapter = ExactAdapter::with_defaults();
    let driver = BenchmarkDriver::new(settings(60_000));
    // Workflows touch carrier/origin_state (moved to dimensions) and fact
    // columns alike.
    for wf in workflows() {
        let flat = driver.run_workflow(&mut adapter, &denorm, &wf).unwrap();
        let mut adapter_star = ExactAdapter::with_defaults();
        let starred = driver.run_workflow(&mut adapter_star, &star, &wf).unwrap();
        assert_eq!(flat.query_results.len(), starred.query_results.len());
        for (a, b) in flat.query_results.iter().zip(&starred.query_results) {
            let (Some(ra), Some(rb)) = (&a.result, &b.result) else {
                // Generous TR: everything completes.
                panic!("query cancelled under a 60s TR");
            };
            // Codes may differ between dictionaries, so compare via ground
            // truth metrics instead of raw maps: both must be exact and
            // complete.
            let gta = gt_flat.ground_truth(&a.query);
            let ma = idebench::core::Metrics::evaluate(ra, &gta);
            assert_eq!(ma.missing_bins, 0.0);
            assert_eq!(ma.rel_error_avg.unwrap_or(0.0), 0.0);
            assert!(rb.exact);
            assert_eq!(ra.bins_delivered(), rb.bins_delivered());
        }
    }
}

#[test]
fn detailed_report_matches_table1_layout() {
    let ds = dataset();
    let mut gt = CachedGroundTruth::new(ds.clone());
    let mut adapter = ProgressiveAdapter::with_defaults();
    let report = run(&mut adapter, &ds, 500, &mut gt);
    let csv = report.to_csv();
    let header = csv.lines().next().unwrap();
    for column in [
        "id",
        "viz_name",
        "driver",
        "think_time",
        "time_req",
        "tr_violated",
        "bin_dims",
        "binning_type",
        "agg_type",
        "bins_ofm",
        "bins_delivered",
        "bins_in_gt",
        "rel_error_avg",
        "missing_bins",
        "cosine_distance",
        "margin_avg",
    ] {
        assert!(header.contains(column), "missing column {column}");
    }
    assert_eq!(csv.lines().count(), report.rows.len() + 1);
}
