//! Morsel-driven batch kernels and accumulation.
//!
//! Execution processes fixed-size morsels (`MORSEL` rows). Per morsel:
//!
//! 1. the filter tree is evaluated into a bitmask ([`Mask`]) by typed
//!    kernels — one `match` on column type per *morsel*, not per row;
//! 2. bin slots (dense) or bin keys (sparse) are computed for all rows;
//! 3. matching rows are folded into the accumulator in bulk.
//!
//! The dense path exploits that an all-nominal binning has a bin space
//! bounded by dictionary sizes: accumulators live in a flat array indexed by
//! `code0 + code1 * dict_len0`, replacing the per-row hash probe of the
//! scalar reference path.

use crate::aggregate::{BinAcc, GroupedAcc, MeasureAcc};
use crate::plan::{AccMode, BoundColumn, CompiledPlan, PlannedDim, PlannedFilter};
use idebench_core::{AggFunc, BinCoord, BinKey};
use idebench_storage::ColumnSlice;
use rustc_hash::FxHashMap;

/// Rows per morsel. A multiple of 64 so morsel masks align with
/// [`idebench_storage::SelVec`] words.
pub const MORSEL: usize = 1024;
const WORDS: usize = MORSEL / 64;

/// A per-morsel bitmask (bit `i` = row `i` of the morsel).
pub(crate) type Mask = [u64; WORDS];

/// Zeroes mask bits at positions `n..`.
#[inline]
fn mask_tail(mask: &mut Mask, n: usize) {
    for (w, word) in mask.iter_mut().enumerate() {
        let lo = w * 64;
        if n <= lo {
            *word = 0;
        } else if n < lo + 64 {
            *word &= (1u64 << (n - lo)) - 1;
        }
    }
}

/// The rows of one morsel: a contiguous range or a gathered order slice.
pub(crate) trait RowSet: Copy {
    /// Number of rows (≤ [`MORSEL`]).
    fn len(&self) -> usize;
    /// The fact row at morsel position `i`.
    fn row(&self, i: usize) -> usize;
}

/// Natural-order rows `base..base + len`.
#[derive(Clone, Copy)]
pub(crate) struct Natural {
    pub base: usize,
    pub len: usize,
}

impl RowSet for Natural {
    #[inline(always)]
    fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn row(&self, i: usize) -> usize {
        self.base + i
    }
}

/// Rows gathered through a shuffle/order slice.
#[derive(Clone, Copy)]
pub(crate) struct Gather<'a>(pub &'a [u32]);

impl RowSet for Gather<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn row(&self, i: usize) -> usize {
        self.0[i] as usize
    }
}

// -------------------------------------------------------------- binding

/// A [`CompiledPlan`] bound to borrowed column slices for one `advance`.
pub(crate) struct BoundPlan<'a> {
    filter: Option<BoundFilter<'a>>,
    dims: Vec<BoundDim<'a>>,
    measures: Vec<Option<BoundColumn<'a>>>,
}

pub(crate) enum BoundFilter<'a> {
    Range {
        col: BoundColumn<'a>,
        min: f64,
        max: f64,
    },
    In {
        col: BoundColumn<'a>,
        member: &'a [bool],
    },
    And(Vec<BoundFilter<'a>>),
    Or(Vec<BoundFilter<'a>>),
}

enum BoundDim<'a> {
    Nominal {
        col: BoundColumn<'a>,
    },
    Width {
        col: BoundColumn<'a>,
        width: f64,
        anchor: f64,
    },
}

impl PlannedFilter {
    pub(crate) fn bind(&self) -> BoundFilter<'_> {
        match self {
            PlannedFilter::Range { col, min, max } => BoundFilter::Range {
                col: col.bind(),
                min: *min,
                max: *max,
            },
            PlannedFilter::In { col, member } => BoundFilter::In {
                col: col.bind(),
                member,
            },
            PlannedFilter::And(children) => {
                BoundFilter::And(children.iter().map(PlannedFilter::bind).collect())
            }
            PlannedFilter::Or(children) => {
                BoundFilter::Or(children.iter().map(PlannedFilter::bind).collect())
            }
        }
    }
}

impl CompiledPlan {
    /// Binds the plan to borrowed slices (index lookups only; no name
    /// resolution or hashing — cheap enough to do per `advance`).
    pub(crate) fn bind(&self) -> BoundPlan<'_> {
        BoundPlan {
            filter: self.filter.as_ref().map(PlannedFilter::bind),
            dims: self
                .dims
                .iter()
                .map(|d| match d {
                    PlannedDim::Nominal { col, .. } => BoundDim::Nominal { col: col.bind() },
                    PlannedDim::Width { col, width, anchor } => BoundDim::Width {
                        col: col.bind(),
                        width: *width,
                        anchor: *anchor,
                    },
                })
                .collect(),
            measures: self
                .measures
                .iter()
                .map(|m| m.as_ref().map(|c| c.bind()))
                .collect(),
        }
    }
}

// -------------------------------------------------------------- kernels

/// Evaluates a filter tree over one morsel into `out` (bit = row matches).
/// Null values never match, mirroring SQL WHERE semantics.
pub(crate) fn eval_filter<R: RowSet>(f: &BoundFilter<'_>, rows: R, out: &mut Mask) {
    let n = rows.len();
    match f {
        BoundFilter::Range { col, min, max } => {
            range_mask(col, *min, *max, rows, out);
        }
        BoundFilter::In { col, member } => {
            in_mask(col, member, rows, out);
        }
        BoundFilter::And(children) => {
            *out = [u64::MAX; WORDS];
            mask_tail(out, n);
            let mut tmp = [0u64; WORDS];
            for child in children {
                eval_filter(child, rows, &mut tmp);
                for w in 0..WORDS {
                    out[w] &= tmp[w];
                }
            }
        }
        BoundFilter::Or(children) => {
            *out = [0u64; WORDS];
            let mut tmp = [0u64; WORDS];
            for child in children {
                eval_filter(child, rows, &mut tmp);
                for w in 0..WORDS {
                    out[w] |= tmp[w];
                }
            }
        }
    }
}

#[inline]
fn range_mask<R: RowSet>(col: &BoundColumn<'_>, min: f64, max: f64, rows: R, out: &mut Mask) {
    let n = rows.len();
    *out = [0u64; WORDS];
    match (col.data, col.fk, col.validity) {
        // Fast path: direct float column, fully valid.
        (ColumnSlice::F64(d), None, None) => {
            for i in 0..n {
                let v = d[rows.row(i)];
                out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
            }
        }
        (ColumnSlice::I64(d), None, None) => {
            for i in 0..n {
                let v = d[rows.row(i)] as f64;
                out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
            }
        }
        _ => {
            for i in 0..n {
                if let Some(v) = col.numeric(rows.row(i)) {
                    out[i / 64] |= u64::from(v >= min && v < max) << (i % 64);
                }
            }
        }
    }
}

#[inline]
fn in_mask<R: RowSet>(col: &BoundColumn<'_>, member: &[bool], rows: R, out: &mut Mask) {
    let n = rows.len();
    *out = [0u64; WORDS];
    match (col.data, col.fk, col.validity) {
        // Fast path: direct code column, fully valid.
        (ColumnSlice::Codes(d, _), None, None) => {
            for i in 0..n {
                let hit = member
                    .get(d[rows.row(i)] as usize)
                    .copied()
                    .unwrap_or(false);
                out[i / 64] |= u64::from(hit) << (i % 64);
            }
        }
        _ => {
            for i in 0..n {
                if let Some(code) = col.code(rows.row(i)) {
                    let hit = member.get(code as usize).copied().unwrap_or(false);
                    out[i / 64] |= u64::from(hit) << (i % 64);
                }
            }
        }
    }
}

/// Computes dense bin slots for one morsel. Rows with a null binned value
/// get their `valid` bit cleared.
fn dense_slots<R: RowSet>(dims: &[BoundDim<'_>], rows: R, slots: &mut [u32], valid: &mut Mask) {
    let n = rows.len();
    *valid = [u64::MAX; WORDS];
    mask_tail(valid, n);
    let mut stride = 1u32;
    for (di, dim) in dims.iter().enumerate() {
        let BoundDim::Nominal { col } = dim else {
            unreachable!("dense path only planned for all-nominal binnings");
        };
        match (col.data, col.fk, col.validity) {
            (ColumnSlice::Codes(d, dict), None, None) => {
                if di == 0 {
                    for (i, slot) in slots.iter_mut().enumerate().take(n) {
                        *slot = d[rows.row(i)];
                    }
                } else {
                    for (i, slot) in slots.iter_mut().enumerate().take(n) {
                        *slot += d[rows.row(i)] * stride;
                    }
                }
                stride *= dict.len().max(1) as u32;
            }
            _ => {
                let mut dict_len = 0u32;
                for i in 0..n {
                    match col.code(rows.row(i)) {
                        Some(code) => {
                            if di == 0 {
                                slots[i] = code;
                            } else {
                                slots[i] += code * stride;
                            }
                        }
                        None => valid[i / 64] &= !(1u64 << (i % 64)),
                    }
                }
                if let ColumnSlice::Codes(_, dict) = col.data {
                    dict_len = dict.len().max(1) as u32;
                }
                stride *= dict_len.max(1);
            }
        }
    }
}

/// Computes sparse bin keys (up to two coordinates) for one morsel. Rows
/// with a null binned value get their `valid` bit cleared.
fn sparse_keys<R: RowSet>(
    dims: &[BoundDim<'_>],
    rows: R,
    k0: &mut [i64],
    k1: &mut [i64],
    valid: &mut Mask,
) {
    let n = rows.len();
    *valid = [u64::MAX; WORDS];
    mask_tail(valid, n);
    for (di, dim) in dims.iter().enumerate() {
        let out: &mut [i64] = if di == 0 { k0 } else { k1 };
        match dim {
            BoundDim::Nominal { col } => {
                for i in 0..n {
                    match col.code(rows.row(i)) {
                        Some(code) => out[i] = i64::from(code),
                        None => valid[i / 64] &= !(1u64 << (i % 64)),
                    }
                }
            }
            BoundDim::Width { col, width, anchor } => match (col.data, col.fk, col.validity) {
                (ColumnSlice::F64(d), None, None) => {
                    for (i, o) in out.iter_mut().enumerate().take(n) {
                        *o = ((d[rows.row(i)] - anchor) / width).floor() as i64;
                    }
                }
                _ => {
                    for i in 0..n {
                        match col.numeric(rows.row(i)) {
                            Some(v) => out[i] = ((v - anchor) / width).floor() as i64,
                            None => valid[i / 64] &= !(1u64 << (i % 64)),
                        }
                    }
                }
            },
        }
    }
}

// ---------------------------------------------------------- accumulation

/// The coordinate kind of one sparse binning dimension.
#[derive(Debug, Clone, Copy)]
enum CoordKind {
    Cat,
    Bucket,
}

enum Store {
    /// Flat-array accumulation over a bounded nominal bin space.
    Dense {
        /// Binning arity (1 or 2).
        arity: usize,
        /// Dictionary length of dimension 0 (slot = `c0 + c1 * len0`).
        len0: usize,
        counts: Vec<u64>,
        /// `space * nmeasures` measure accumulators, slot-major.
        measures: Vec<MeasureAcc>,
        /// Slots with `counts > 0`, in first-touch order — snapshots only
        /// walk populated bins, not the whole space.
        touched: Vec<u32>,
    },
    /// Hashed accumulation for unbounded bucket spaces. The map stores
    /// indices into a dense `Vec<BinAcc>` so the common consecutive-rows-
    /// same-bucket case skips the probe via a last-key memo, and finish
    /// walks a contiguous vector.
    Sparse {
        kinds: Vec<CoordKind>,
        index: FxHashMap<(i64, i64), u32>,
        accs: Vec<((i64, i64), BinAcc)>,
    },
}

/// The vectorized accumulator driven by [`CompiledPlan`] morsel kernels.
///
/// Mirrors the statistics of [`GroupedAcc`] (which remains the scalar
/// reference and merge/finish representation); [`BatchAcc::to_grouped`]
/// materializes into it in O(populated bins).
pub(crate) struct BatchAcc {
    aggs: Vec<(AggFunc, bool)>,
    nmeasures: usize,
    store: Store,
    pub rows_seen: u64,
    pub rows_matched: u64,
    // Reusable per-morsel scratch.
    slots: Vec<u32>,
    k0: Vec<i64>,
    k1: Vec<i64>,
}

impl BatchAcc {
    pub fn for_plan(plan: &CompiledPlan) -> BatchAcc {
        let aggs: Vec<(AggFunc, bool)> = plan
            .query()
            .aggregates
            .iter()
            .map(|a| (a.func, a.dimension.is_some()))
            .collect();
        let nmeasures = aggs.len();
        let store = match plan.acc_mode() {
            AccMode::Dense(space) => Store::Dense {
                arity: plan.dims.len(),
                len0: match &plan.dims[0] {
                    PlannedDim::Nominal { dict_len, .. } => (*dict_len).max(1),
                    PlannedDim::Width { .. } => unreachable!("dense requires nominal dims"),
                },
                counts: vec![0; space],
                measures: vec![MeasureAcc::new(); space * nmeasures],
                touched: Vec::new(),
            },
            AccMode::Sparse => Store::Sparse {
                kinds: plan
                    .dims
                    .iter()
                    .map(|d| match d {
                        PlannedDim::Nominal { .. } => CoordKind::Cat,
                        PlannedDim::Width { .. } => CoordKind::Bucket,
                    })
                    .collect(),
                index: FxHashMap::default(),
                accs: Vec::new(),
            },
        };
        BatchAcc {
            aggs,
            nmeasures,
            store,
            rows_seen: 0,
            rows_matched: 0,
            slots: vec![0; MORSEL],
            k0: vec![0; MORSEL],
            k1: vec![0; MORSEL],
        }
    }

    /// Processes one morsel: filter → bin → accumulate. Returns the number
    /// of rows that passed the filter (cost-model input).
    pub fn process_morsel<R: RowSet>(&mut self, bound: &BoundPlan<'_>, rows: R) -> usize {
        let n = rows.len();
        debug_assert!(n <= MORSEL);
        self.rows_seen += n as u64;

        // 1. Filter.
        let mut fmask: Mask = [u64::MAX; WORDS];
        mask_tail(&mut fmask, n);
        if let Some(filter) = &bound.filter {
            eval_filter(filter, rows, &mut fmask);
        }
        let matched: usize = fmask.iter().map(|w| w.count_ones() as usize).sum();
        self.rows_matched += matched as u64;
        if matched == 0 {
            return 0;
        }

        // 2. Bin keys, 3. accumulate matching rows.
        let mut valid: Mask = [0u64; WORDS];
        match &mut self.store {
            Store::Dense {
                counts,
                measures,
                touched,
                ..
            } => {
                dense_slots(&bound.dims, rows, &mut self.slots, &mut valid);
                for w in 0..WORDS {
                    let mut bits = fmask[w] & valid[w];
                    while bits != 0 {
                        let i = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let slot = self.slots[i] as usize;
                        if counts[slot] == 0 {
                            touched.push(slot as u32);
                        }
                        counts[slot] += 1;
                        let row = rows.row(i);
                        for (m, col) in bound.measures.iter().enumerate() {
                            if let Some(col) = col {
                                if let Some(v) = col.numeric(row) {
                                    measures[slot * self.nmeasures + m].update(v);
                                }
                            }
                        }
                    }
                }
            }
            Store::Sparse { index, accs, .. } => {
                sparse_keys(&bound.dims, rows, &mut self.k0, &mut self.k1, &mut valid);
                let two_d = bound.dims.len() == 2;
                let nmeasures = self.nmeasures;
                // Consecutive rows often land in the same bin; memoize the
                // last slot to skip the hash probe.
                let mut last: Option<((i64, i64), u32)> = None;
                for w in 0..WORDS {
                    let mut bits = fmask[w] & valid[w];
                    while bits != 0 {
                        let i = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let key = (self.k0[i], if two_d { self.k1[i] } else { 0 });
                        let slot = match last {
                            Some((k, s)) if k == key => s,
                            _ => {
                                let s = *index.entry(key).or_insert_with(|| {
                                    accs.push((
                                        key,
                                        BinAcc {
                                            count: 0,
                                            measures: vec![MeasureAcc::new(); nmeasures],
                                        },
                                    ));
                                    (accs.len() - 1) as u32
                                });
                                last = Some((key, s));
                                s
                            }
                        };
                        let acc = &mut accs[slot as usize].1;
                        acc.count += 1;
                        let row = rows.row(i);
                        for (m, col) in bound.measures.iter().enumerate() {
                            if let Some(col) = col {
                                if let Some(v) = col.numeric(row) {
                                    acc.measures[m].update(v);
                                }
                            }
                        }
                    }
                }
            }
        }
        matched
    }

    /// Materializes into the canonical [`GroupedAcc`] representation, in
    /// O(populated bins).
    pub fn to_grouped(&self) -> GroupedAcc {
        let mut bins: FxHashMap<BinKey, BinAcc> = FxHashMap::default();
        match &self.store {
            Store::Dense {
                arity,
                len0,
                counts,
                measures,
                touched,
            } => {
                let two_d = *arity == 2;
                for &slot in touched {
                    let slot = slot as usize;
                    let key = if two_d {
                        BinKey::d2(
                            BinCoord::Cat((slot % len0) as u32),
                            BinCoord::Cat((slot / len0) as u32),
                        )
                    } else {
                        BinKey::d1(BinCoord::Cat(slot as u32))
                    };
                    bins.insert(
                        key,
                        BinAcc {
                            count: counts[slot],
                            measures: measures[slot * self.nmeasures..][..self.nmeasures].to_vec(),
                        },
                    );
                }
            }
            Store::Sparse { kinds, accs, .. } => {
                for ((a, b), acc) in accs {
                    let coord = |kind: CoordKind, v: i64| match kind {
                        CoordKind::Cat => BinCoord::Cat(v as u32),
                        CoordKind::Bucket => BinCoord::Bucket(v),
                    };
                    let key = if kinds.len() == 2 {
                        BinKey::d2(coord(kinds[0], *a), coord(kinds[1], *b))
                    } else {
                        BinKey::d1(coord(kinds[0], *a))
                    };
                    bins.insert(key, acc.clone());
                }
            }
        }
        GroupedAcc::from_parts(self.aggs.clone(), bins, self.rows_seen, self.rows_matched)
    }
}
