//! The paper's §2.1 use case, replayed as a hand-written workflow.
//!
//! Jean explores patient admissions; we mirror her session on the flights
//! data (the benchmark's default): overview histograms, a drill-down into
//! evening departures, cross-filtering by carrier, and a linked 2D delay
//! view — demonstrating hand-authored workflows, linking semantics, and
//! per-interaction inspection of results.
//!
//! ```sh
//! cargo run --release --example hospital_dashboard
//! ```

use idebench::core::spec::{
    AggFunc, AggregateSpec, BinDef, FilterExpr, Predicate, SelCoord, Selection,
};
use idebench::core::{GroundTruthProvider, Interaction, VizSpec};
use idebench::prelude::*;
use idebench_query::CachedGroundTruth;
use std::sync::Arc;

fn main() {
    let table = idebench::datagen::flights::generate(250_000, 3);
    let dataset = Dataset::Denormalized(Arc::new(table));

    // "Jean starts out by examining demographic information…": an overview
    // histogram of departure times (admits per hour of day in the paper).
    let dep_hours = VizSpec::new(
        "dep_hours",
        "flights",
        vec![BinDef::Width {
            dimension: "dep_time".into(),
            width: 1.0,
            anchor: 0.0,
        }],
        vec![AggregateSpec::count()],
    );
    // A carrier breakdown (the "admissions by department" analogue).
    let by_carrier = VizSpec::new(
        "by_carrier",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![
            AggregateSpec::count(),
            AggregateSpec::over(AggFunc::Avg, "dep_delay"),
        ],
    );
    // The detail view Jean drills into: 2D delays.
    let delays_2d = VizSpec::new(
        "delays_2d",
        "flights",
        vec![
            BinDef::Width {
                dimension: "dep_delay".into(),
                width: 15.0,
                anchor: 0.0,
            },
            BinDef::Width {
                dimension: "arr_delay".into(),
                width: 15.0,
                anchor: 0.0,
            },
        ],
        vec![AggregateSpec::count()],
    );

    let workflow = Workflow::new(
        "jean_session",
        WorkflowType::Mixed,
        vec![
            Interaction::CreateViz { viz: dep_hours },
            Interaction::CreateViz { viz: by_carrier },
            Interaction::CreateViz { viz: delays_2d },
            // "She filters down to admits coming from the emergency center":
            // restrict the carrier view to evening departures.
            Interaction::SetFilter {
                viz: "by_carrier".into(),
                filter: Some(FilterExpr::Pred(Predicate::Range {
                    column: "dep_time".into(),
                    min: 19.0,
                    max: 22.0,
                })),
            },
            // "Who are these patients?": link the carrier view into the 2D
            // delay view and brush the dominant carrier.
            Interaction::Link {
                source: "by_carrier".into(),
                target: "delays_2d".into(),
            },
            Interaction::Select {
                viz: "by_carrier".into(),
                selection: Some(Selection {
                    bins: vec![vec![SelCoord::Category("C00".into())]],
                }),
            },
        ],
    );
    println!("{}", workflow.render_text());

    let settings = Settings::default()
        .with_time_requirement_ms(2_000)
        .with_execution(idebench::core::ExecutionMode::Virtual { work_rate: 1e5 });
    let driver = BenchmarkDriver::new(settings);
    let mut adapter = idebench::engine_progressive::ProgressiveAdapter::with_defaults();
    let outcome = driver
        .run_workflow(&mut adapter, &dataset, &workflow)
        .expect("session replays");

    let mut gt = CachedGroundTruth::new(dataset.clone());
    println!("per-interaction results:");
    for m in &outcome.query_results {
        let truth = gt.ground_truth(&m.query);
        let metrics = match &m.result {
            Some(r) => idebench::core::Metrics::evaluate(r, &truth),
            None => idebench::core::Metrics::all_missing(&truth),
        };
        println!(
            "  interaction {:>2} -> {:<12} {:>4} of {:>4} bins, mre {}  ({} ms{})",
            m.interaction_id,
            m.viz_name,
            metrics.bins_delivered,
            metrics.bins_in_gt,
            metrics
                .rel_error_avg
                .map_or("   -".into(), |e| format!("{e:.3}")),
            (m.end_ms - m.start_ms).round(),
            if m.tr_violated { ", TR violated" } else { "" },
        );
    }

    // The evening-rush insight: compare filtered vs unfiltered carrier
    // delay averages, the analogue of Jean's over-represented age group.
    let last = outcome
        .query_results
        .iter()
        .rfind(|m| m.viz_name == "by_carrier")
        .expect("carrier view refreshed");
    if let Some(result) = &last.result {
        println!(
            "\nevening-filtered carrier view delivers {} bins at {:.0}% of data processed",
            result.bins_delivered(),
            result.processed_fraction * 100.0
        );
    }
}
