//! In-repo shim for the `criterion` crate (see `crates/shims/`): a compact
//! wall-clock micro-benchmark harness exposing the group/bench API surface
//! this workspace uses.
//!
//! Each benchmark is warmed up briefly, then timed over enough iterations to
//! fill the measurement window (default 1 s; `CRITERION_MEASURE_MS` and
//! `CRITERION_WARMUP_MS` override). Results print as `ns/iter` plus derived
//! throughput when the group declared one, and are appended as JSON lines to
//! `target/shim-criterion.jsonl` so scripts can scrape them.

pub use std::hint::black_box;

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput basis for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements (rows).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Just a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered benchmark id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The top-level harness handle passed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        run_benchmark(&id.into_id(), None, f);
    }
}

/// A named collection of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput basis for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.throughput, f);
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        run_benchmark(&full, self.throughput, |b| f(b, input));
    }

    /// Ends the group (printing is eager; nothing to flush).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this measurement batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(default_ms), Duration::from_millis)
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let warmup = env_ms("CRITERION_WARMUP_MS", 300);
    let measure = env_ms("CRITERION_MEASURE_MS", 1_000);

    // Warm-up: discover a per-iteration estimate while warming caches.
    let warmup_start = Instant::now();
    let mut warmup_iters = 0u64;
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    while warmup_start.elapsed() < warmup {
        f(&mut b);
        warmup_iters += b.iters;
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;

    // Measurement: one batch sized to fill the window.
    let target_iters = ((measure.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 1 << 32);
    b.iters = target_iters;
    f(&mut b);
    let ns_per_iter = b.elapsed.as_secs_f64() * 1e9 / b.iters as f64;

    let throughput_text = match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            format!(" ({:.2} Melem/s)", rate / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (ns_per_iter / 1e9);
            format!(" ({:.2} MiB/s)", rate / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("bench {name:<50} {ns_per_iter:>14.0} ns/iter{throughput_text}");

    // Machine-readable record for tooling (best effort).
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/shim-criterion.jsonl")
    {
        let elems = match throughput {
            Some(Throughput::Elements(n)) => n,
            _ => 0,
        };
        let _ = writeln!(
            file,
            "{{\"name\":\"{name}\",\"ns_per_iter\":{ns_per_iter:.1},\"elements\":{elems}}}"
        );
    }
}

/// Declares a benchmark-group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_WARMUP_MS", "5");
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
