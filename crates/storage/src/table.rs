//! Immutable tables and the builder used to construct them.

use crate::column::{Column, ColumnData};
use crate::dictionary::Dictionary;
use crate::error::StorageError;
use crate::schema::{DataType, Field, Schema};
use crate::selection::SelVec;
use std::sync::Arc;

/// A dynamically-typed cell value, used at API boundaries (row append,
/// filter literals, tests). The hot paths never touch `Value`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Quantitative float.
    Float(f64),
    /// Integer.
    Int(i64),
    /// Nominal category as a string.
    Str(String),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Float(_) => "float",
            Value::Int(_) => "int",
            Value::Str(_) => "nominal",
            Value::Null => "null",
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

/// An immutable, named collection of equal-length columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
}

impl Table {
    /// Builds a table from parts, validating column counts and lengths.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Column>,
    ) -> Result<Self, StorageError> {
        assert_eq!(schema.len(), columns.len(), "schema/column count mismatch");
        let nrows = columns.first().map_or(0, Column::len);
        for c in &columns {
            if c.len() != nrows {
                return Err(StorageError::LengthMismatch {
                    expected: nrows,
                    got: c.len(),
                });
            }
        }
        Ok(Table {
            name: name.into(),
            schema,
            columns,
            nrows,
        })
    }

    /// Table name (e.g. `"flights"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column, StorageError> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Cell accessor for tests/reports (slow path).
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        let c = &self.columns[col];
        if !c.is_valid(row) {
            return Value::Null;
        }
        match c.data() {
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Nominal(v, d) => {
                Value::Str(d.value(v[row]).unwrap_or_default().to_string())
            }
        }
    }

    /// Materializes the subset of rows selected by `sel` into a new table.
    pub fn filter(&self, sel: &SelVec) -> Table {
        assert_eq!(sel.len(), self.nrows, "selection length mismatch");
        let rows: Vec<usize> = sel.iter().collect();
        self.take(&rows)
    }

    /// Materializes the given rows (in order) into a new table.
    pub fn take(&self, rows: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.take(rows)).collect();
        Table {
            name: self.name.clone(),
            schema: self.schema.clone(),
            columns,
            nrows: rows.len(),
        }
    }

    /// Renames the table (used when deriving samples / normalized tables).
    pub fn renamed(mut self, name: impl Into<String>) -> Table {
        self.name = name.into();
        self
    }

    /// Estimated in-memory footprint in bytes (column payloads only).
    ///
    /// Used by the data-preparation report to model load cost.
    pub fn byte_size(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.data() {
                ColumnData::Float(v) => v.len() * 8,
                ColumnData::Int(v) => v.len() * 8,
                ColumnData::Nominal(v, _) => v.len() * 4,
            })
            .sum()
    }
}

/// Incremental row-oriented builder producing a columnar [`Table`].
///
/// Dictionaries for nominal columns are created per column and shared with
/// the finished table.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    schema: Schema,
    floats: Vec<Option<Vec<f64>>>,
    ints: Vec<Option<Vec<i64>>>,
    codes: Vec<Option<(Vec<u32>, Dictionary)>>,
    nulls: Vec<Vec<usize>>,
    nrows: usize,
}

impl TableBuilder {
    /// Starts a builder for the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let n = schema.len();
        let mut floats = Vec::with_capacity(n);
        let mut ints = Vec::with_capacity(n);
        let mut codes = Vec::with_capacity(n);
        for f in schema.fields() {
            floats.push(matches!(f.dtype, DataType::Float).then(Vec::new));
            ints.push(matches!(f.dtype, DataType::Int).then(Vec::new));
            codes.push(
                matches!(f.dtype, DataType::Nominal).then(|| (Vec::new(), Dictionary::new())),
            );
        }
        TableBuilder {
            name: name.into(),
            schema,
            floats,
            ints,
            codes,
            nulls: vec![Vec::new(); n],
            nrows: 0,
        }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn with_fields(name: impl Into<String>, fields: &[(&str, DataType)]) -> Self {
        let schema = Schema::new(
            fields
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        );
        Self::new(name, schema)
    }

    /// Number of rows appended so far.
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// True when no row has been appended.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Appends one row. The slice must match the schema in arity and types.
    pub fn push_row(&mut self, row: &[Value]) -> Result<(), StorageError> {
        assert_eq!(row.len(), self.schema.len(), "row arity mismatch");
        for (i, v) in row.iter().enumerate() {
            let field = &self.schema.fields()[i];
            match (field.dtype, v) {
                (DataType::Float, Value::Float(x)) => {
                    self.floats[i].as_mut().expect("float buffer").push(*x)
                }
                (DataType::Float, Value::Int(x)) => self.floats[i]
                    .as_mut()
                    .expect("float buffer")
                    .push(*x as f64),
                (DataType::Int, Value::Int(x)) => {
                    self.ints[i].as_mut().expect("int buffer").push(*x)
                }
                (DataType::Nominal, Value::Str(s)) => {
                    let (buf, dict) = self.codes[i].as_mut().expect("code buffer");
                    let code = dict.intern(s);
                    buf.push(code);
                }
                (_, Value::Null) => {
                    self.nulls[i].push(self.nrows);
                    match field.dtype {
                        DataType::Float => self.floats[i]
                            .as_mut()
                            .expect("float buffer")
                            .push(f64::NAN),
                        DataType::Int => self.ints[i].as_mut().expect("int buffer").push(0),
                        DataType::Nominal => {
                            let (buf, _) = self.codes[i].as_mut().expect("code buffer");
                            buf.push(0);
                        }
                    }
                }
                (dt, v) => {
                    return Err(StorageError::TypeMismatch {
                        column: field.name.clone(),
                        expected: dt.name(),
                        got: v.type_name(),
                    })
                }
            }
        }
        self.nrows += 1;
        Ok(())
    }

    /// Finishes the build, producing an immutable table.
    pub fn finish(self) -> Table {
        let mut columns = Vec::with_capacity(self.schema.len());
        for (i, field) in self.schema.fields().iter().enumerate() {
            let mut col = match field.dtype {
                DataType::Float => Column::float(self.floats[i].clone().expect("float buffer")),
                DataType::Int => Column::int(self.ints[i].clone().expect("int buffer")),
                DataType::Nominal => {
                    let (buf, dict) = self.codes[i].clone().expect("code buffer");
                    Column::nominal(buf, Arc::new(dict))
                }
            };
            if !self.nulls[i].is_empty() {
                let mut validity = SelVec::all(self.nrows);
                for &row in &self.nulls[i] {
                    validity.remove(row);
                }
                col = col.with_validity(validity);
            }
            columns.push(col);
        }
        Table::new(self.name, self.schema, columns).expect("builder produces aligned columns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table {
        let mut b = TableBuilder::with_fields(
            "flights",
            &[
                ("carrier", DataType::Nominal),
                ("dep_delay", DataType::Float),
                ("distance", DataType::Int),
            ],
        );
        b.push_row(&["AA".into(), 5.0.into(), 300i64.into()])
            .unwrap();
        b.push_row(&["DL".into(), (-2.0).into(), 900i64.into()])
            .unwrap();
        b.push_row(&["AA".into(), Value::Null, 120i64.into()])
            .unwrap();
        b.finish()
    }

    #[test]
    fn builder_produces_typed_columns() {
        let t = small_table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        let (codes, dict) = t.column("carrier").unwrap().as_nominal().unwrap();
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(dict.value(1), Some("DL"));
        assert_eq!(
            t.column("distance").unwrap().as_int().unwrap(),
            &[300, 900, 120]
        );
    }

    #[test]
    fn nulls_become_invalid_rows() {
        let t = small_table();
        let c = t.column("dep_delay").unwrap();
        assert!(c.is_valid(0));
        assert!(!c.is_valid(2));
        assert_eq!(t.value_at(1, 2), Value::Null);
    }

    #[test]
    fn type_mismatch_is_reported() {
        let mut b = TableBuilder::with_fields("t", &[("x", DataType::Int)]);
        let err = b.push_row(&["oops".into()]).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut b = TableBuilder::with_fields("t", &[("x", DataType::Float)]);
        b.push_row(&[Value::Int(4)]).unwrap();
        let t = b.finish();
        assert_eq!(t.column("x").unwrap().as_float().unwrap(), &[4.0]);
    }

    #[test]
    fn filter_and_take() {
        let t = small_table();
        let mut sel = SelVec::none(3);
        sel.insert(0);
        sel.insert(2);
        let f = t.filter(&sel);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.value_at(0, 1), Value::Str("AA".into()));

        let tk = t.take(&[2, 0]);
        assert_eq!(tk.value_at(2, 0), Value::Int(120));
    }

    #[test]
    fn value_at_returns_typed_cells() {
        let t = small_table();
        assert_eq!(t.value_at(0, 1), Value::Str("DL".into()));
        assert_eq!(t.value_at(1, 0), Value::Float(5.0));
        assert_eq!(t.value_at(2, 2), Value::Int(120));
    }

    #[test]
    fn byte_size_counts_payloads() {
        let t = small_table();
        // 3 rows: nominal 3*4 + float 3*8 + int 3*8
        assert_eq!(t.byte_size(), 12 + 24 + 24);
    }

    #[test]
    fn table_length_mismatch_detected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let cols = vec![Column::int(vec![1, 2]), Column::int(vec![1])];
        assert!(matches!(
            Table::new("t", schema, cols),
            Err(StorageError::LengthMismatch { .. })
        ));
    }
}
