//! The data-scaling procedure of paper §4.2, implemented verbatim:
//!
//! > "From the seed dataset we first create a random sample. We then compute
//! > the covariance matrix Σ and perform the Cholesky decomposition on
//! > Σ = AᵀA. To create a new tuple, we first generate a vector X ~ N(0,1)
//! > of random normal variables and induce correlation by computing X̃ = AX.
//! > We then transform X̃ to uniform distribution and finally use the CDF
//! > from our sample to transform the uniform variables to a correlated
//! > tuple."
//!
//! This is a Gaussian copula: marginals come from each attribute's empirical
//! sample CDF, the dependence structure from the covariance of the sample's
//! normal scores. Nominal attributes participate through their dictionary
//! codes (frequency-preserving); generated codes map back to categories.

use crate::matrix::{covariance_matrix, SquareMatrix};
use crate::stats::{normal_cdf, EmpiricalDist};
use idebench_storage::{Column, ColumnData, DataType, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted scaler that can generate arbitrarily many rows distributed like
/// (a sample of) its seed table.
pub struct CopulaScaler {
    table_name: String,
    fields: Vec<(String, DataType)>,
    marginals: Vec<EmpiricalDist>,
    /// Dictionaries of nominal columns, indexed like `fields`.
    dicts: Vec<Option<std::sync::Arc<idebench_storage::Dictionary>>>,
    chol: SquareMatrix,
}

impl CopulaScaler {
    /// Fits the scaler on a random sample of `sample_size` rows of `seed`
    /// (capped at the seed size).
    pub fn fit(seed: &Table, sample_size: usize, rng_seed: u64) -> Self {
        assert!(seed.num_rows() >= 2, "seed needs at least 2 rows");
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let n = seed.num_rows();
        let k = sample_size.clamp(2, n);

        // Uniform sample of row indexes without replacement (partial
        // Fisher–Yates over an index vector).
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + (rng.random::<f64>() * (n - i) as f64) as usize;
            idx.swap(i, j.min(n - 1));
        }
        let sample = &idx[..k];

        let mut fields = Vec::new();
        let mut marginals = Vec::new();
        let mut dicts = Vec::new();
        let mut std_columns: Vec<Vec<f64>> = Vec::new();

        for (ci, field) in seed.schema().fields().iter().enumerate() {
            let col = seed.column_at(ci);
            let raw: Vec<f64> = sample
                .iter()
                .map(|&r| col.numeric_at(r).unwrap_or(0.0))
                .collect();
            fields.push((field.name.clone(), field.dtype));
            marginals.push(EmpiricalDist::new(raw.clone()));
            dicts.push(match col.data() {
                ColumnData::Nominal(_, d) => Some(std::sync::Arc::clone(d)),
                _ => None,
            });
            std_columns.push(standardize(&raw));
        }

        // The paper computes Σ on the raw sample; standardizing first turns
        // it into the correlation matrix (unit diagonal), which keeps the
        // Φ-uniformization below well-scaled without changing the induced
        // dependence structure.
        let sigma = covariance_matrix(&std_columns);
        CopulaScaler {
            table_name: seed.name().to_string(),
            fields,
            marginals,
            dicts,
            chol: sigma.cholesky(),
        }
    }

    /// Generates `n` correlated rows.
    pub fn generate(&self, n: usize, rng_seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let k = self.fields.len();
        let field_refs: Vec<(&str, DataType)> =
            self.fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let mut b = TableBuilder::with_fields(&self.table_name, &field_refs);
        let mut x = vec![0.0f64; k];
        let mut xt = vec![0.0f64; k];
        let mut row: Vec<Value> = Vec::with_capacity(k);

        for _ in 0..n {
            // X ~ N(0, I)
            for xi in &mut x {
                let u1: f64 = rng.random::<f64>().max(1e-12);
                let u2: f64 = rng.random();
                *xi = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
            // X̃ = A·X
            self.chol.mul_vec(&x, &mut xt);
            row.clear();
            for (ci, &xv) in xt.iter().enumerate() {
                // Normal scores have the variance of a standard normal, so
                // dividing by the factored scale keeps u well-spread even if
                // Σ's diagonal is not exactly 1.
                let scale = self.chol[(ci, ci)].max(1e-9);
                let u = normal_cdf(xv / norm_row(&self.chol, ci, scale));
                let v = self.marginals[ci].quantile(u);
                row.push(match self.fields[ci].1 {
                    DataType::Float => Value::Float(v),
                    DataType::Int => Value::Int(v.round() as i64),
                    DataType::Nominal => {
                        let dict = self.dicts[ci].as_ref().expect("nominal has dictionary");
                        let code = (v.round() as i64).clamp(0, dict.len() as i64 - 1) as u32;
                        Value::Str(dict.value(code).expect("code in range").to_string())
                    }
                });
            }
            b.push_row(&row).expect("schema matches row");
        }
        b.finish()
    }

    /// Convenience: fit on `seed` and generate `n` rows in one call,
    /// sampling `sample_size` seed rows for the fit.
    pub fn scale(seed: &Table, sample_size: usize, n: usize, rng_seed: u64) -> Table {
        Self::fit(seed, sample_size, rng_seed).generate(n, rng_seed.wrapping_add(1))
    }
}

/// Centers and scales values to zero mean / unit variance.
fn standardize(values: &[f64]) -> Vec<f64> {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0).max(1.0);
    let sd = var.sqrt().max(1e-12);
    values.iter().map(|v| (v - mean) / sd).collect()
}

/// L2 norm of row `ci` of the Cholesky factor — the standard deviation of
/// X̃[ci], used to standardize before the Φ transform.
fn norm_row(l: &SquareMatrix, ci: usize, fallback: f64) -> f64 {
    let mut s = 0.0;
    for j in 0..=ci {
        s += l[(ci, j)] * l[(ci, j)];
    }
    let norm = s.sqrt();
    if norm > 1e-9 {
        norm
    } else {
        fallback
    }
}

/// Scales a column to `f64` for validation helpers.
fn numeric_column(col: &Column) -> Vec<f64> {
    (0..col.len())
        .map(|i| col.numeric_at(i).unwrap_or(0.0))
        .collect()
}

/// Pearson correlation of two columns of a table (validation helper used by
/// tests and the datagen example).
pub fn table_correlation(t: &Table, a: &str, b: &str) -> f64 {
    let ca = numeric_column(t.column(a).expect("column exists"));
    let cb = numeric_column(t.column(b).expect("column exists"));
    let n = ca.len() as f64;
    let ma = ca.iter().sum::<f64>() / n;
    let mb = cb.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..ca.len() {
        cov += (ca[i] - ma) * (cb[i] - mb);
        va += (ca[i] - ma) * (ca[i] - ma);
        vb += (cb[i] - mb) * (cb[i] - mb);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flights;

    #[test]
    fn scaled_table_has_seed_schema() {
        let seed = flights::generate(2_000, 3);
        let big = CopulaScaler::scale(&seed, 1_000, 5_000, 99);
        assert_eq!(big.schema(), seed.schema());
        assert_eq!(big.num_rows(), 5_000);
        assert_eq!(big.name(), seed.name());
    }

    #[test]
    fn marginal_ranges_preserved() {
        let seed = flights::generate(2_000, 3);
        let big = CopulaScaler::scale(&seed, 2_000, 4_000, 7);
        for col in ["dep_delay", "distance", "dep_time"] {
            let s = numeric_column(seed.column(col).unwrap());
            let g = numeric_column(big.column(col).unwrap());
            let (smin, smax) = s
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            let (gmin, gmax) = g
                .iter()
                .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                    (lo.min(v), hi.max(v))
                });
            // Interpolated empirical quantiles never extrapolate.
            assert!(gmin >= smin - 1e-9, "{col}: {gmin} < {smin}");
            assert!(gmax <= smax + 1e-9, "{col}: {gmax} > {smax}");
        }
    }

    #[test]
    fn correlations_preserved_when_scaling() {
        let seed = flights::generate(4_000, 3);
        let big = CopulaScaler::scale(&seed, 4_000, 8_000, 11);
        for (a, b) in [("dep_delay", "arr_delay"), ("distance", "air_time")] {
            let rs = table_correlation(&seed, a, b);
            let rg = table_correlation(&big, a, b);
            // The Gaussian copula attenuates Pearson correlation of
            // heavy-tailed marginals somewhat; the paper's procedure accepts
            // this ("tries to maintain distributions … and relationships").
            assert!(
                (rs - rg).abs() < 0.2 && rg > 0.5,
                "{a}/{b}: seed r={rs:.3}, scaled r={rg:.3}"
            );
        }
    }

    #[test]
    fn quantitative_means_roughly_preserved() {
        let seed = flights::generate(3_000, 5);
        let big = CopulaScaler::scale(&seed, 3_000, 6_000, 13);
        for col in ["dep_delay", "distance"] {
            let s = numeric_column(seed.column(col).unwrap());
            let g = numeric_column(big.column(col).unwrap());
            let ms = s.iter().sum::<f64>() / s.len() as f64;
            let mg = g.iter().sum::<f64>() / g.len() as f64;
            let spread = s.iter().map(|v| (v - ms).abs()).sum::<f64>() / s.len() as f64;
            assert!(
                (ms - mg).abs() < spread * 0.25,
                "{col}: mean drifted {ms:.2} → {mg:.2}"
            );
        }
    }

    #[test]
    fn nominal_frequencies_roughly_preserved() {
        let seed = flights::generate(3_000, 5);
        let big = CopulaScaler::scale(&seed, 3_000, 6_000, 13);
        let (scodes, sdict) = seed.column("carrier").unwrap().as_nominal().unwrap();
        let (gcodes, gdict) = big.column("carrier").unwrap().as_nominal().unwrap();
        // Top carrier in the seed should stay the top carrier when scaled.
        let top = |codes: &[u32], len: usize| -> u32 {
            let mut c = vec![0usize; len];
            for &x in codes {
                c[x as usize] += 1;
            }
            c.iter().enumerate().max_by_key(|(_, &v)| v).unwrap().0 as u32
        };
        let stop = sdict.value(top(scodes, sdict.len())).unwrap();
        let gtop = gdict.value(top(gcodes, gdict.len())).unwrap();
        assert_eq!(stop, gtop);
    }

    #[test]
    fn generation_is_deterministic() {
        let seed = flights::generate(1_000, 3);
        let scaler = CopulaScaler::fit(&seed, 500, 42);
        let a = scaler.generate(200, 9);
        let b = scaler.generate(200, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn downsampling_works_too() {
        // The paper scales "to an arbitrary size", including down.
        let seed = flights::generate(2_000, 3);
        let small = CopulaScaler::scale(&seed, 1_000, 50, 17);
        assert_eq!(small.num_rows(), 50);
    }
}
