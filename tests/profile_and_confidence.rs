//! Cross-crate consistency tests: the generator's data profile must match
//! the datagen schema, and confidence-level settings must propagate into
//! engine margins.

use idebench::core::spec::{AggregateSpec, BinDef};
use idebench::core::{
    BenchmarkDriver, ExecutionMode, Interaction, Settings, SystemAdapter, VizSpec,
};
use idebench::engine_progressive::{ProgressiveAdapter, ProgressiveConfig};
use idebench::storage::{DataType, Dataset};
use idebench::workflow::{DataProfile, DimensionProfile, Workflow, WorkflowType};
use std::sync::Arc;

#[test]
fn flights_profile_matches_generated_schema() {
    let table = idebench::datagen::flights::generate(5_000, 1);
    let profile = DataProfile::flights();
    assert_eq!(profile.table, table.name());

    for dim in &profile.dimensions {
        let field = table
            .schema()
            .field(dim.name())
            .unwrap_or_else(|_| panic!("profile dimension {} missing from schema", dim.name()));
        match dim {
            DimensionProfile::Nominal { name, categories } => {
                assert_eq!(field.dtype, DataType::Nominal, "{name}");
                // Every category the generator may reference must be a
                // value the data generator can actually emit.
                let (_, dict) = table.column(name).unwrap().as_nominal().unwrap();
                for value in dict.values() {
                    assert!(
                        categories.contains(value),
                        "{name}: generated category {value} missing from profile"
                    );
                }
            }
            DimensionProfile::Quantitative { name, min, max, .. } => {
                assert!(field.dtype.is_quantitative(), "{name} must be quantitative");
                let col = table.column(name).unwrap();
                for row in 0..table.num_rows() {
                    let v = col.numeric_at(row).unwrap();
                    // The profile range is a working range for filters, not
                    // a hard bound; allow the heavy delay tails to exceed it
                    // but never the other direction by much.
                    assert!(
                        v >= min - 1e-9 || v <= max + 1e-9,
                        "{name}: value {v} outside any plausible range"
                    );
                }
            }
        }
    }
}

#[test]
fn confidence_level_scales_margins() {
    let table = idebench::datagen::flights::generate(30_000, 5);
    let dataset = Dataset::Denormalized(Arc::new(table));
    let viz = VizSpec::new(
        "v",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    );
    let workflow = Workflow::new(
        "w",
        WorkflowType::Independent,
        vec![Interaction::CreateViz { viz }],
    );

    let mut margins = Vec::new();
    for confidence in [0.90, 0.99] {
        let mut settings = Settings::default()
            .with_time_requirement_ms(500)
            .with_think_time_ms(0)
            .with_execution(ExecutionMode::Virtual { work_rate: 1e4 });
        settings.confidence_level = confidence;
        let mut adapter = ProgressiveAdapter::new(ProgressiveConfig {
            first_query_warmup_s: 0.0,
            ..ProgressiveConfig::default()
        });
        let driver = BenchmarkDriver::new(settings);
        let outcome = driver
            .run_workflow(&mut adapter, &dataset, &workflow)
            .unwrap();
        let result = outcome.query_results[0].result.as_ref().expect("snapshot");
        assert!(!result.exact, "partial under a tight TR");
        let mean_margin: f64 =
            result.bins.values().map(|b| b.margins[0]).sum::<f64>() / result.bins.len() as f64;
        margins.push(mean_margin);
    }
    // z(99%) / z(90%) ≈ 2.576 / 1.645 ≈ 1.566: same data, wider interval.
    let ratio = margins[1] / margins[0];
    assert!(
        (ratio - 1.566).abs() < 0.05,
        "margin ratio {ratio} should track z-value ratio"
    );
}

#[test]
fn prepared_adapter_reflects_new_confidence_without_reload() {
    // prepare() is idempotent per dataset but must refresh z-values.
    let table = idebench::datagen::flights::generate(10_000, 5);
    let dataset = Dataset::Denormalized(Arc::new(table));
    let mut adapter = ProgressiveAdapter::new(ProgressiveConfig {
        first_query_warmup_s: 0.0,
        ..ProgressiveConfig::default()
    });
    let s90 = Settings {
        confidence_level: 0.90,
        ..Settings::default()
    };
    let prep1 = adapter.prepare(&dataset, &s90).unwrap();
    let s99 = Settings {
        confidence_level: 0.99,
        ..s90.clone()
    };
    let prep2 = adapter.prepare(&dataset, &s99).unwrap();
    assert_eq!(prep1, prep2, "no reload for the same dataset");

    let viz = VizSpec::new(
        "v",
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    );
    let q = idebench::core::Query::for_viz(&viz, None);
    let mut handle = adapter.submit(&q);
    handle.step(2_000);
    let result = handle.snapshot().expect("partial snapshot");
    assert!(result.bins.values().all(|b| b.margins[0] > 0.0));
}
