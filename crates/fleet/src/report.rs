//! The fleet report: per-session [`DetailedReport`]s merged into one
//! service-level view — throughput, latency percentiles, time-requirement
//! violation rates and cache hit rates — the artifact `bench_fleet` emits
//! as `BENCH_fleet.json`.
//!
//! Evaluation against ground truth is the wall-clock-expensive part of
//! reporting (every distinct query costs one exact scan), so
//! [`FleetReport::evaluate`] fans sessions out over real threads with a
//! **shared** ground-truth cache: queries repeated across sessions are
//! scanned once, and because exact execution is deterministic, the merged
//! report is bit-identical no matter how the evaluation threads interleave.

use crate::{CacheStats, FleetOutcome};
use idebench_core::metrics::percentile;
use idebench_core::settings::available_parallelism;
use idebench_core::{AggResult, DetailedReport, GroundTruthProvider, Query, SummaryReport};
use idebench_query::execute_exact;
use idebench_storage::Dataset;
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One session's row of the fleet report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Session id (0-based).
    pub session: usize,
    /// Workflow name (e.g. `"s3_mixed"`).
    pub workflow: String,
    /// Workflow pattern label.
    pub workflow_kind: String,
    /// Virtual arrival time, ms since fleet start.
    pub arrival_ms: f64,
    /// Virtual ms the session was active (arrival → finish).
    pub active_ms: f64,
    /// Interactions the session executed.
    pub interactions: usize,
    /// Queries the session issued.
    pub queries: usize,
    /// Queries that violated the time requirement.
    pub tr_violations: usize,
    /// Median query latency, ms.
    pub p50_latency_ms: f64,
    /// The session's traffic against the shared semantic cache.
    pub cache: CacheStats,
}

/// The merged multi-session report (see module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// System (engine) name the sessions ran against.
    pub system: String,
    /// Number of sessions.
    pub sessions: usize,
    /// Per-session rows, in session-id order.
    pub per_session: Vec<SessionSummary>,
    /// Virtual ms from fleet start until the last session finished.
    pub makespan_ms: f64,
    /// Total interactions across sessions.
    pub interactions: usize,
    /// Total queries across sessions.
    pub queries: usize,
    /// Interactions per virtual second of makespan.
    pub interactions_per_s: f64,
    /// Queries per virtual second of makespan.
    pub queries_per_s: f64,
    /// Median query latency across the fleet, ms.
    pub latency_p50_ms: f64,
    /// 95th-percentile query latency, ms.
    pub latency_p95_ms: f64,
    /// 99th-percentile query latency, ms.
    pub latency_p99_ms: f64,
    /// Fraction (0–1) of queries that violated the time requirement.
    pub tr_violation_rate: f64,
    /// Fleet-wide cache traffic.
    pub cache: CacheStats,
    /// Fleet-wide cache hit rate (0–1).
    pub cache_hit_rate: f64,
    /// Distinct results the shared cache held at the end of the run.
    pub cache_entries: usize,
    /// The merged per-query detailed report (quality metrics included).
    pub detailed: DetailedReport,
    /// The aggregated summary (reuses the per-cell p50/p95/p99 latency
    /// columns of [`SummaryReport`]).
    pub summary: SummaryReport,
}

/// Ground truth shared by every evaluation thread: first thread to need a
/// query's truth scans it, everyone else reuses the cached result. Exact
/// execution is deterministic, so a racy duplicate scan (compute outside
/// the lock) inserts an identical value — harmless.
struct SharedGroundTruth<'a> {
    dataset: &'a Dataset,
    cache: Mutex<FxHashMap<std::sync::Arc<str>, AggResult>>,
}

struct SharedGtHandle<'a, 'b>(&'b SharedGroundTruth<'a>);

impl GroundTruthProvider for SharedGtHandle<'_, '_> {
    fn ground_truth(&mut self, query: &Query) -> AggResult {
        let key = query.canonical_key();
        if let Some(hit) = self.0.cache.lock().unwrap().get(&key).cloned() {
            return hit;
        }
        let gt = execute_exact(self.0.dataset, query)
            .expect("fleet queries bind against the fleet dataset");
        self.0.cache.lock().unwrap().insert(key, gt.clone());
        gt
    }
}

impl FleetReport {
    /// Evaluates a fleet outcome against exact ground truth and merges the
    /// per-session reports. Sessions are evaluated concurrently over a
    /// shared ground-truth cache; the result is deterministic regardless.
    pub fn evaluate(outcome: &FleetOutcome, dataset: &Dataset) -> FleetReport {
        let n = outcome.sessions.len();
        let gt = SharedGroundTruth {
            dataset,
            cache: Mutex::new(FxHashMap::default()),
        };
        let slots: Vec<Mutex<Option<DetailedReport>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let evaluators = available_parallelism().min(n.max(1));
        std::thread::scope(|s| {
            for _ in 0..evaluators {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut provider = SharedGtHandle(&gt);
                    let report =
                        DetailedReport::from_outcome(&outcome.sessions[i].outcome, &mut provider);
                    *slots[i].lock().unwrap() = Some(report);
                });
            }
        });
        let per_session_detailed: Vec<DetailedReport> = slots
            .into_iter()
            .map(|m| m.into_inner().unwrap().expect("every session evaluated"))
            .collect();
        Self::from_detailed(outcome, per_session_detailed)
    }

    /// Assembles the report from already-evaluated per-session detailed
    /// reports (in session-id order).
    pub fn from_detailed(outcome: &FleetOutcome, per_session: Vec<DetailedReport>) -> FleetReport {
        assert_eq!(per_session.len(), outcome.sessions.len());
        let system = outcome
            .sessions
            .first()
            .map(|s| s.outcome.system.clone())
            .unwrap_or_default();

        let mut rows_sessions = Vec::with_capacity(outcome.sessions.len());
        for (s, d) in outcome.sessions.iter().zip(&per_session) {
            let latencies: Vec<f64> = d.rows.iter().map(|r| r.end_time - r.start_time).collect();
            rows_sessions.push(SessionSummary {
                session: s.session,
                workflow: s.outcome.workflow_name.clone(),
                workflow_kind: s.outcome.workflow_kind.clone(),
                arrival_ms: s.arrival_ms,
                active_ms: s.outcome.total_ms,
                interactions: s.interactions,
                queries: d.rows.len(),
                tr_violations: d.rows.iter().filter(|r| r.tr_violated).count(),
                p50_latency_ms: percentile(&latencies, 50.0).unwrap_or(0.0),
                cache: s.cache,
            });
        }

        let detailed = DetailedReport::merged(per_session);
        let latencies: Vec<f64> = detailed
            .rows
            .iter()
            .map(|r| r.end_time - r.start_time)
            .collect();
        let queries = detailed.rows.len();
        let violations = detailed.rows.iter().filter(|r| r.tr_violated).count();
        let interactions: usize = rows_sessions.iter().map(|s| s.interactions).sum();
        let makespan_s = outcome.makespan_ms / 1e3;
        let per_s = |count: usize| {
            if makespan_s > 0.0 {
                count as f64 / makespan_s
            } else {
                0.0
            }
        };
        let summary = SummaryReport::from_detailed(&detailed);
        FleetReport {
            system,
            sessions: outcome.sessions.len(),
            per_session: rows_sessions,
            makespan_ms: outcome.makespan_ms,
            interactions,
            queries,
            interactions_per_s: per_s(interactions),
            queries_per_s: per_s(queries),
            latency_p50_ms: percentile(&latencies, 50.0).unwrap_or(0.0),
            latency_p95_ms: percentile(&latencies, 95.0).unwrap_or(0.0),
            latency_p99_ms: percentile(&latencies, 99.0).unwrap_or(0.0),
            tr_violation_rate: if queries == 0 {
                0.0
            } else {
                violations as f64 / queries as f64
            },
            cache: outcome.cache,
            cache_hit_rate: outcome.cache.hit_rate(),
            cache_entries: outcome.cache_entries,
            detailed,
            summary,
        }
    }

    /// Serializes the report as pretty JSON (the `BENCH_fleet.json` body).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet reports serialize")
    }

    /// Renders a terminal summary: fleet totals plus one row per session.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} sessions on '{}' — makespan {:.1} s (virtual)",
            self.sessions,
            self.system,
            self.makespan_ms / 1e3
        );
        let _ = writeln!(
            out,
            "throughput: {:.2} interactions/s, {:.2} queries/s  |  latency p50/p95/p99: \
             {:.0}/{:.0}/{:.0} ms  |  TR violations: {:.1}%  |  cache: {:.1}% hits \
             ({} entries)",
            self.interactions_per_s,
            self.queries_per_s,
            self.latency_p50_ms,
            self.latency_p95_ms,
            self.latency_p99_ms,
            self.tr_violation_rate * 100.0,
            self.cache_hit_rate * 100.0,
            self.cache_entries,
        );
        let _ = writeln!(
            out,
            "{:<4} {:<16} {:>10} {:>10} {:>8} {:>8} {:>7} {:>8} {:>6} {:>6}",
            "sid",
            "workflow",
            "arrive_ms",
            "active_ms",
            "inters",
            "queries",
            "TRviol",
            "p50ms",
            "hits",
            "miss"
        );
        for s in &self.per_session {
            let _ = writeln!(
                out,
                "{:<4} {:<16} {:>10.0} {:>10.0} {:>8} {:>8} {:>7} {:>8.0} {:>6} {:>6}",
                s.session,
                s.workflow,
                s.arrival_ms,
                s.active_ms,
                s.interactions,
                s.queries,
                s.tr_violations,
                s.p50_latency_ms,
                s.cache.hits,
                s.cache.misses,
            );
        }
        out.push('\n');
        out.push_str(&self.summary.render_text());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FleetConfig, FleetHarness};
    use idebench_core::Settings;
    use idebench_engine_exact::ExactAdapter;
    use idebench_workflow::WorkflowType;
    use std::sync::Arc;

    fn dataset(n: usize) -> Dataset {
        Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(n, 42)))
    }

    fn outcome(sessions: usize, dataset: &Dataset) -> crate::FleetOutcome {
        let cfg = FleetConfig::new(
            Settings::default()
                .with_time_requirement_ms(1_000)
                .with_think_time_ms(500)
                .with_seed(5),
            sessions,
        )
        .with_workflow(WorkflowType::Mixed, 6);
        FleetHarness::new(cfg)
            .run_with(dataset, |_| Box::new(ExactAdapter::with_defaults()))
            .unwrap()
    }

    #[test]
    fn evaluate_merges_sessions_and_computes_rates() {
        let ds = dataset(4_000);
        let out = outcome(3, &ds);
        let report = FleetReport::evaluate(&out, &ds);
        assert_eq!(report.sessions, 3);
        assert_eq!(report.per_session.len(), 3);
        assert_eq!(
            report.queries,
            report.detailed.rows.len(),
            "merged detailed rows back the fleet totals"
        );
        assert_eq!(
            report.queries,
            report.per_session.iter().map(|s| s.queries).sum::<usize>()
        );
        assert!(report.queries_per_s > 0.0);
        assert!(report.latency_p95_ms >= report.latency_p50_ms);
        assert!((0.0..=1.0).contains(&report.tr_violation_rate));
        assert!((0.0..=1.0).contains(&report.cache_hit_rate));
        let text = report.render_text();
        assert!(text.contains("fleet: 3 sessions"));
        assert!(text.contains("s1_mixed"));
        // The JSON artifact round-trips.
        let back: FleetReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn parallel_evaluation_is_deterministic() {
        let ds = dataset(4_000);
        let out = outcome(4, &ds);
        let a = FleetReport::evaluate(&out, &ds).to_json();
        let b = FleetReport::evaluate(&out, &ds).to_json();
        assert_eq!(a, b, "shared-GT thread interleaving must not leak");
    }

    #[test]
    fn overlapping_sessions_raise_throughput() {
        let ds = dataset(4_000);
        let one = FleetReport::evaluate(&outcome(1, &ds), &ds);
        let four = FleetReport::evaluate(&outcome(4, &ds), &ds);
        assert!(
            four.queries_per_s > one.queries_per_s,
            "4 overlapping sessions must out-throughput 1: {} vs {}",
            four.queries_per_s,
            one.queries_per_s
        );
    }
}
