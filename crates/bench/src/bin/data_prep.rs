//! **Data-preparation time (paper §5.2, prose table).**
//!
//! The paper reports, for 500M rows: MonetDB 19 min (CSV load), XDB 130 min
//! (load + primary key), IDEA 3 min (loads a fixed amount into memory),
//! System X 27 min (load + offline stratified samples + warm-up query).
//!
//! This binary measures each adapter's `prepare()` on the M-scale dataset
//! and prints the virtual preparation time alongside the paper's values —
//! the *ratios* between systems are the reproduced shape.

use idebench_bench::{adapter_by_name, flights_dataset, ExpArgs, MAIN_SYSTEMS};

fn main() {
    let args = ExpArgs::parse();
    let rows = args.rows('M');
    println!("data preparation time, {rows} rows (M scale)");
    let dataset = flights_dataset(rows, args.seed);
    let settings = args.settings();

    let paper_minutes = [
        ("exact", 19.0),
        ("wander", 130.0),
        ("progressive", 3.0),
        ("stratified", 27.0),
    ];

    println!(
        "\n{:<14} {:>10} {:>12} {:>10} {:>12} {:>14}",
        "system", "load(s)", "preproc(s)", "warmup(s)", "total(vs)", "paper(min@500M)"
    );
    let mut results = Vec::new();
    let mut totals = Vec::new();
    for system in MAIN_SYSTEMS {
        let mut adapter = adapter_by_name(system);
        let prep = adapter
            .prepare(&dataset, &settings)
            .unwrap_or_else(|e| panic!("{system}: {e}"));
        let to_s = |u: u64| u as f64 / args.work_rate;
        let total = to_s(prep.total_units());
        let paper = paper_minutes
            .iter()
            .find(|(s, _)| *s == system)
            .map_or(f64::NAN, |(_, m)| *m);
        println!(
            "{:<14} {:>10.1} {:>12.1} {:>10.1} {:>12.1} {:>14.0}",
            system,
            to_s(prep.load_units),
            to_s(prep.preprocess_units),
            to_s(prep.warmup_units),
            total,
            paper
        );
        totals.push((system, total, paper));
        results.push(serde_json::json!({
            "system": system,
            "load_s": to_s(prep.load_units),
            "preprocess_s": to_s(prep.preprocess_units),
            "warmup_s": to_s(prep.warmup_units),
            "total_s": total,
            "paper_minutes_at_500m": paper,
        }));
    }
    // Ratio check against the exact engine's baseline.
    let base = totals
        .iter()
        .find(|(s, _, _)| *s == "exact")
        .expect("exact runs");
    println!("\nratios vs exact engine (measured | paper):");
    for (system, total, paper) in &totals {
        println!(
            "  {:<14} {:>6.2}x | {:>6.2}x",
            system,
            total / base.1,
            paper / base.2
        );
    }
    args.write_json("data_prep.json", &results);
}
