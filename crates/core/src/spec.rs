//! The visualization / query specification model (paper Figure 4).
//!
//! A [`VizSpec`] describes what an IDE frontend would render: which
//! dimensions are binned and how, and which aggregates are computed per bin.
//! Specifications are JSON-(de)serializable, mirroring the paper's
//! JSON-based workflow format.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate functions supported by the benchmark workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum AggFunc {
    /// `COUNT(*)` per bin.
    Count,
    /// `SUM(dimension)` per bin.
    Sum,
    /// `AVG(dimension)` per bin.
    Avg,
    /// `MIN(dimension)` per bin.
    Min,
    /// `MAX(dimension)` per bin.
    Max,
}

impl AggFunc {
    /// SQL keyword for this function.
    pub fn sql_name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        f.write_str(s)
    }
}

/// One aggregate in a viz specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// Function to apply.
    #[serde(rename = "type")]
    pub func: AggFunc,
    /// Measure column; `None` only for `Count`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dimension: Option<String>,
}

impl AggregateSpec {
    /// `COUNT(*)`.
    pub fn count() -> Self {
        AggregateSpec {
            func: AggFunc::Count,
            dimension: None,
        }
    }

    /// An aggregate over a measure column.
    pub fn over(func: AggFunc, dimension: impl Into<String>) -> Self {
        debug_assert!(func != AggFunc::Count, "use AggregateSpec::count()");
        AggregateSpec {
            func,
            dimension: Some(dimension.into()),
        }
    }

    /// Label used in reports, e.g. `avg(arr_delay)`.
    pub fn label(&self) -> String {
        match &self.dimension {
            Some(d) => format!("{}({})", self.func, d),
            None => format!("{}(*)", self.func),
        }
    }
}

/// How one dimension of a visualization is binned.
///
/// The paper (§2.2) distinguishes nominal binning (one bin per category) and
/// quantitative binning, the latter defined either by a fixed bin *width*
/// relative to a reference value ("anchor"), or by a requested bin *count*
/// over the current min/max.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "lowercase")]
pub enum BinDef {
    /// One bin per distinct category of a nominal column.
    Nominal {
        /// The nominal column.
        dimension: String,
    },
    /// Fixed-width binning: bin `i` covers `[anchor + i*width, anchor + (i+1)*width)`.
    Width {
        /// The quantitative column.
        dimension: String,
        /// Bin width (must be positive and finite).
        width: f64,
        /// Reference value at the left edge of bin 0.
        #[serde(default)]
        anchor: f64,
    },
    /// Count-based binning: `bins` equal-width bins over the column's
    /// current `[min, max]`; requires a min/max computation first.
    Count {
        /// The quantitative column.
        dimension: String,
        /// Number of bins (≥ 1).
        bins: u32,
    },
}

impl BinDef {
    /// The binned column name.
    pub fn dimension(&self) -> &str {
        match self {
            BinDef::Nominal { dimension }
            | BinDef::Width { dimension, .. }
            | BinDef::Count { dimension, .. } => dimension,
        }
    }

    /// Whether the binning is nominal.
    pub fn is_nominal(&self) -> bool {
        matches!(self, BinDef::Nominal { .. })
    }

    /// Report label: `nominal` or `quantitative` (Table 1's `binning type`).
    pub fn kind_label(&self) -> &'static str {
        if self.is_nominal() {
            "nominal"
        } else {
            "quantitative"
        }
    }
}

/// A single filter predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Predicate {
    /// `column >= min AND column < max` (half-open interval). Either bound
    /// may be infinite.
    Range {
        /// Quantitative column.
        column: String,
        /// Inclusive lower bound (`-inf` allowed).
        min: f64,
        /// Exclusive upper bound (`+inf` allowed).
        max: f64,
    },
    /// `column IN (values…)` for nominal columns.
    In {
        /// Nominal column.
        column: String,
        /// Accepted categories.
        values: Vec<String>,
    },
}

impl Predicate {
    /// The filtered column.
    pub fn column(&self) -> &str {
        match self {
            Predicate::Range { column, .. } | Predicate::In { column, .. } => column,
        }
    }
}

/// A boolean combination of predicates.
// Adjacently tagged: internal tagging cannot represent newtype variants
// holding sequences (`And(Vec<…>)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", content = "expr", rename_all = "lowercase")]
pub enum FilterExpr {
    /// A leaf predicate.
    Pred(Predicate),
    /// Conjunction (empty = TRUE).
    And(Vec<FilterExpr>),
    /// Disjunction (empty = FALSE).
    Or(Vec<FilterExpr>),
}

impl FilterExpr {
    /// Leaf constructor.
    pub fn pred(p: Predicate) -> Self {
        FilterExpr::Pred(p)
    }

    /// Conjunction of two expressions, flattening nested `And`s.
    pub fn and(self, other: FilterExpr) -> FilterExpr {
        match (self, other) {
            (FilterExpr::And(mut a), FilterExpr::And(b)) => {
                a.extend(b);
                FilterExpr::And(a)
            }
            (FilterExpr::And(mut a), b) => {
                a.push(b);
                FilterExpr::And(a)
            }
            (a, FilterExpr::And(mut b)) => {
                b.insert(0, a);
                FilterExpr::And(b)
            }
            (a, b) => FilterExpr::And(vec![a, b]),
        }
    }

    /// Combines an optional filter with another expression.
    pub fn and_opt(base: Option<FilterExpr>, extra: FilterExpr) -> FilterExpr {
        match base {
            Some(b) => b.and(extra),
            None => extra,
        }
    }

    /// All columns referenced by the expression (with duplicates).
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            FilterExpr::Pred(p) => out.push(p.column()),
            FilterExpr::And(children) | FilterExpr::Or(children) => {
                for c in children {
                    c.collect_columns(out);
                }
            }
        }
    }

    /// Number of leaf predicates — the "specificity" proxy used by Exp 4.
    pub fn num_predicates(&self) -> usize {
        match self {
            FilterExpr::Pred(_) => 1,
            FilterExpr::And(children) | FilterExpr::Or(children) => {
                children.iter().map(FilterExpr::num_predicates).sum()
            }
        }
    }
}

/// The bins a user brushed/selected on a viz, expressed as per-dimension
/// bin indexes (quantitative) or category names (nominal), one entry per
/// binning dimension of the viz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Selected bins; each inner vec has one coordinate per binning dim.
    pub bins: Vec<Vec<SelCoord>>,
}

/// One coordinate of a selected bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum SelCoord {
    /// Selected category of a nominal binning dimension.
    Category(String),
    /// Selected bin index of a quantitative binning dimension.
    Bucket(i64),
}

/// A visualization specification: the unit of querying in IDEBench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VizSpec {
    /// Unique name within a workflow (e.g. `"viz_2"`).
    pub name: String,
    /// Source table (always the fact/denormalized table name for v1 schemas).
    pub source: String,
    /// 1 or 2 binning dimensions (1D histogram / 2D binned scatter plot).
    pub binning: Vec<BinDef>,
    /// Aggregates computed per bin (at least one).
    pub aggregates: Vec<AggregateSpec>,
    /// The viz's own filter (from the UI's filter widgets), if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub filter: Option<FilterExpr>,
}

impl VizSpec {
    /// Creates a viz spec with no filter.
    pub fn new(
        name: impl Into<String>,
        source: impl Into<String>,
        binning: Vec<BinDef>,
        aggregates: Vec<AggregateSpec>,
    ) -> Self {
        let spec = VizSpec {
            name: name.into(),
            source: source.into(),
            binning,
            aggregates,
            filter: None,
        };
        debug_assert!(
            (1..=2).contains(&spec.binning.len()),
            "viz must bin 1 or 2 dimensions"
        );
        debug_assert!(!spec.aggregates.is_empty(), "viz needs an aggregate");
        spec
    }

    /// Number of binning dimensions (Table 1's `bin dims`).
    pub fn bin_dims(&self) -> usize {
        self.binning.len()
    }

    /// Table 1's `binning type` label, e.g. `"nominal"` or
    /// `"quantitative quantitative"` for a 2D quantitative binning.
    pub fn binning_type_label(&self) -> String {
        self.binning
            .iter()
            .map(BinDef::kind_label)
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Table 1's `agg type` label, e.g. `"avg"` or `"count sum"`.
    pub fn agg_type_label(&self) -> String {
        self.aggregates
            .iter()
            .map(|a| a.func.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> VizSpec {
        VizSpec::new(
            "viz_0",
            "flights",
            vec![
                BinDef::Nominal {
                    dimension: "carrier".into(),
                },
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
            ],
            vec![
                AggregateSpec::count(),
                AggregateSpec::over(AggFunc::Avg, "arr_delay"),
            ],
        )
    }

    #[test]
    fn labels_match_table1_format() {
        let s = spec();
        assert_eq!(s.bin_dims(), 2);
        assert_eq!(s.binning_type_label(), "nominal quantitative");
        assert_eq!(s.agg_type_label(), "count avg");
        assert_eq!(s.aggregates[1].label(), "avg(arr_delay)");
    }

    #[test]
    fn filter_and_flattens() {
        let a = FilterExpr::pred(Predicate::Range {
            column: "x".into(),
            min: 0.0,
            max: 1.0,
        });
        let b = FilterExpr::pred(Predicate::In {
            column: "c".into(),
            values: vec!["AA".into()],
        });
        let c = a.clone().and(b.clone()).and(a.clone());
        match &c {
            FilterExpr::And(children) => assert_eq!(children.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(c.num_predicates(), 3);
        assert_eq!(c.columns(), vec!["x", "c", "x"]);
    }

    #[test]
    fn and_opt_uses_base_when_present() {
        let extra = FilterExpr::pred(Predicate::Range {
            column: "x".into(),
            min: 0.0,
            max: 1.0,
        });
        let combined = FilterExpr::and_opt(Some(extra.clone()), extra.clone());
        assert_eq!(combined.num_predicates(), 2);
        let alone = FilterExpr::and_opt(None, extra);
        assert_eq!(alone.num_predicates(), 1);
    }

    #[test]
    fn spec_json_roundtrip() {
        let s = spec();
        let js = serde_json::to_string_pretty(&s).unwrap();
        let back: VizSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn bindef_json_shape_matches_paper_style() {
        let b = BinDef::Width {
            dimension: "dep_delay".into(),
            width: 10.0,
            anchor: 0.0,
        };
        let js = serde_json::to_value(&b).unwrap();
        assert_eq!(js["type"], "width");
        assert_eq!(js["dimension"], "dep_delay");
        assert_eq!(js["width"], 10.0);
    }

    #[test]
    fn selection_serde_untagged_coords() {
        let sel = Selection {
            bins: vec![vec![SelCoord::Category("AA".into()), SelCoord::Bucket(3)]],
        };
        let js = serde_json::to_string(&sel).unwrap();
        let back: Selection = serde_json::from_str(&js).unwrap();
        assert_eq!(sel, back);
    }

    #[test]
    fn agg_func_sql_names() {
        assert_eq!(AggFunc::Count.sql_name(), "COUNT");
        assert_eq!(AggFunc::Avg.sql_name(), "AVG");
    }
}
