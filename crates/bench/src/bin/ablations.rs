//! **Ablation benches** for the design choices DESIGN.md calls out:
//!
//! 1. Result reuse on/off in the progressive engine (paper §1: engines
//!    "might or might not re-use previously computed results").
//! 2. Speculation on/off under a fixed think time (the off-row of Exp 3).
//! 3. Stratified sampling-rate sweep (paper §6: "determining a good sample
//!    size … is time-consuming": quality vs TR-violation trade-off).
//! 4. Driver step-quantum sweep (TR-enforcement precision vs overhead).

use idebench_bench::{run_workflows, ExpArgs, ExpContext};
use idebench_core::{EngineService, Settings, SummaryReport};
use idebench_engine_stratified::{StratifiedAdapter, StratifiedConfig};
use idebench_workflow::WorkflowType;

fn main() {
    let args = ExpArgs::parse();
    println!("ablations, {} rows", args.rows('M'));
    let mut ctx = ExpContext::standard(args, 'M', WorkflowType::Mixed, 5, 18);
    let base: Settings = ctx
        .args
        .settings()
        .with_time_requirement_ms(1_000)
        .with_think_time_ms(1_000);
    let mut results = Vec::new();

    // 1. Result reuse on/off.
    println!("\n--- ablation: progressive result reuse ---");
    println!(
        "{:<22} {:>10} {:>12} {:>10}",
        "variant", "mean_MRE", "missing", "med_margin"
    );
    for (label, system) in [
        ("reuse on", "progressive"),
        ("reuse off", "progressive-noreuse"),
    ] {
        let report = ctx.run_system(system, &base).expect("runs");
        let s = &SummaryReport::from_detailed(&report).rows[0];
        println!(
            "{:<22} {:>10.3} {:>12.3} {:>10.3}",
            label,
            s.mean_mre.unwrap_or(f64::NAN),
            s.mean_missing_bins,
            s.median_margin.unwrap_or(f64::NAN)
        );
        results.push(serde_json::json!({
            "ablation": "reuse", "variant": label,
            "mean_mre": s.mean_mre, "mean_missing_bins": s.mean_missing_bins,
        }));
    }

    // 2. Stratified sampling-rate sweep.
    println!("\n--- ablation: stratified sampling rate (TR=1s) ---");
    println!(
        "{:<10} {:>12} {:>10} {:>12} {:>14}",
        "rate", "%TR_violated", "mean_MRE", "missing", "prep_total(vs)"
    );
    for rate in [0.01, 0.05, 0.10, 0.25, 0.5] {
        let service = StratifiedAdapter::new(StratifiedConfig {
            sampling_rate: rate,
            ..StratifiedConfig::default()
        })
        .into_service();
        let prep = service
            .open_session(0, &ctx.dataset, &base)
            .expect("prepare");
        let report = run_workflows(&service, &ctx.dataset, &ctx.workflows, &base, &mut ctx.gt)
            .expect("stratified runs");
        let s = &SummaryReport::from_detailed(&report).rows[0];
        println!(
            "{:<10} {:>12.1} {:>10.3} {:>12.3} {:>14.1}",
            rate,
            s.pct_tr_violated,
            s.mean_mre.unwrap_or(f64::NAN),
            s.mean_missing_bins,
            prep.total_units() as f64 / ctx.args.work_rate,
        );
        results.push(serde_json::json!({
            "ablation": "sampling_rate", "rate": rate,
            "pct_tr_violated": s.pct_tr_violated,
            "mean_mre": s.mean_mre, "mean_missing_bins": s.mean_missing_bins,
            "prep_total_s": prep.total_units() as f64 / ctx.args.work_rate,
        }));
    }

    // 3. Step-quantum sweep (driver precision).
    println!("\n--- ablation: driver step quantum (exact engine, TR=3s) ---");
    println!("{:<12} {:>12} {:>10}", "quantum", "%TR_violated", "queries");
    for quantum in [1_024u64, 16_384, 262_144, 1_048_576] {
        let mut settings = base.clone().with_time_requirement_ms(3_000);
        settings.step_quantum = quantum;
        let report = ctx.run_system("exact", &settings).expect("exact runs");
        let s = &SummaryReport::from_detailed(&report).rows[0];
        println!(
            "{:<12} {:>12.1} {:>10}",
            quantum, s.pct_tr_violated, s.queries
        );
        results.push(serde_json::json!({
            "ablation": "step_quantum", "quantum": quantum,
            "pct_tr_violated": s.pct_tr_violated,
        }));
    }

    // 4. Concurrency-contention sweep (off by default; the paper's Fig. 6d
    //    offers contention as the explanation for workflow-type differences
    //    while its Exp 4 found no overall concurrency effect).
    println!("\n--- ablation: concurrency penalty (progressive, TR=1s) ---");
    println!(
        "{:<10} {:>12} {:>10}",
        "penalty", "mean_missing", "mean_MRE"
    );
    for penalty in [0.0, 0.25, 0.5, 1.0] {
        let mut settings = base.clone();
        settings.concurrency_penalty = penalty;
        let report = ctx
            .run_system("progressive", &settings)
            .expect("progressive runs");
        let s = &SummaryReport::from_detailed(&report).rows[0];
        println!(
            "{:<10} {:>12.3} {:>10.3}",
            penalty,
            s.mean_missing_bins,
            s.mean_mre.unwrap_or(f64::NAN)
        );
        results.push(serde_json::json!({
            "ablation": "concurrency_penalty", "penalty": penalty,
            "mean_missing_bins": s.mean_missing_bins, "mean_mre": s.mean_mre,
        }));
    }

    ctx.args.write_json("ablations.json", &results);
}
