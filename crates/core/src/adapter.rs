//! The system-adapter interface (paper §4.5, Listing 1).
//!
//! A system under test implements [`SystemAdapter`]. The benchmark driver
//! delegates interactions through it and drives query execution through the
//! pull-based [`QueryHandle`] it returns. Pull-based stepping gives the
//! driver exact control over the time-requirement budget in both virtual and
//! wall-clock execution modes, and makes cancellation trivial (drop the
//! handle).

use crate::error::CoreError;
use crate::query::Query;
use crate::result::AggResult;
use crate::settings::Settings;
use idebench_storage::Dataset;
use serde::{Deserialize, Serialize};

/// Outcome of one `step` call on a query handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The query consumed `units` work units and has more work to do.
    Running {
        /// Work units actually consumed by this step (≤ granted).
        units: u64,
    },
    /// The query consumed `units` work units and is now complete.
    Done {
        /// Work units actually consumed by this step (≤ granted).
        units: u64,
    },
}

impl StepStatus {
    /// Units consumed by the step.
    pub fn units(self) -> u64 {
        match self {
            StepStatus::Running { units } | StepStatus::Done { units } => units,
        }
    }

    /// Whether the query is complete.
    pub fn is_done(self) -> bool {
        matches!(self, StepStatus::Done { .. })
    }
}

/// A running query owned by the adapter.
///
/// The driver repeatedly grants work quanta via [`QueryHandle::step`]; at the
/// time requirement it calls [`QueryHandle::snapshot`] and drops the handle.
/// Per the paper's metric definition, the time requirement is violated iff
/// `snapshot()` returns `None` at that point.
///
/// Handles are `Send` so the shared-service scheduler
/// ([`crate::service::TicketScheduler`]) can own in-flight queries from any
/// thread.
pub trait QueryHandle: Send {
    /// Performs up to `granted` work units. Blocking engines typically
    /// consume the full grant until done; progressive engines refresh their
    /// snapshot as they go.
    fn step(&mut self, granted: u64) -> StepStatus;

    /// The best currently-available result: `None` if nothing can be
    /// fetched yet, partial estimates for progressive engines, or the final
    /// result once done.
    fn snapshot(&self) -> Option<AggResult>;

    /// Whether the query has run to completion.
    fn is_done(&self) -> bool;
}

/// Data-preparation statistics (paper §5.2 "data preparation time").
///
/// Covers everything from connecting to a new data source until the system
/// can answer workload queries: loading, indexing, offline sampling,
/// warm-up queries.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PrepStats {
    /// Work units spent loading/copying the data into the system.
    pub load_units: u64,
    /// Work units spent on offline pre-processing (sample tables, indexes).
    pub preprocess_units: u64,
    /// Work units spent on warm-up queries required before first use.
    pub warmup_units: u64,
}

impl PrepStats {
    /// Total preparation work.
    pub fn total_units(&self) -> u64 {
        self.load_units + self.preprocess_units + self.warmup_units
    }
}

/// Proxy between the benchmark and a system under test (paper Listing 1).
///
/// This is the *single-analyst* engine SPI: `submit` takes `&mut self` and
/// the driver owns the adapter exclusively. Shared multi-session runs go
/// through [`crate::service::EngineService`] instead; existing adapters run
/// there unchanged via [`crate::service::LegacyAdapterBridge`] (`Send` is
/// required so bridged adapters can live inside the shared service).
pub trait SystemAdapter: Send {
    /// Short system name used in reports (e.g. `"exact"`, `"progressive"`).
    fn name(&self) -> &str;

    /// Ingests the dataset and performs all offline preparation. Called once
    /// before any workflow runs. Returns the preparation cost breakdown.
    ///
    /// Errors with [`CoreError::Unsupported`] when the system cannot handle
    /// the dataset shape (e.g. normalized data without join support).
    fn prepare(&mut self, dataset: &Dataset, settings: &Settings) -> Result<PrepStats, CoreError>;

    /// Called when a workflow starts (paper: `workflow_start`).
    fn workflow_start(&mut self) {}

    /// Called when a workflow ends (paper: `workflow_end`).
    fn workflow_end(&mut self) {}

    /// Submits a query, returning a steppable handle.
    fn submit(&mut self, query: &Query) -> Box<dyn QueryHandle>;

    /// Notifies the adapter of a new link between two vizs — a hint for
    /// speculative execution (paper: `link_vizs`). `source_query` is the
    /// current query of the link source, `target_query` of the target.
    fn on_link(&mut self, _source_query: &Query, _target_query: &Query) {}

    /// Grants idle think-time to the adapter (units of work it may spend on
    /// speculative queries). Engines without speculation ignore this.
    fn on_think(&mut self, _budget_units: u64) {}

    /// Notifies the adapter that a viz was discarded so it can free memory
    /// (paper: `delete_vizs`).
    fn on_discard(&mut self, _viz_name: &str) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_status_accessors() {
        assert_eq!(StepStatus::Running { units: 5 }.units(), 5);
        assert!(!StepStatus::Running { units: 5 }.is_done());
        assert!(StepStatus::Done { units: 0 }.is_done());
    }

    #[test]
    fn prep_stats_total() {
        let p = PrepStats {
            load_units: 10,
            preprocess_units: 5,
            warmup_units: 1,
        };
        assert_eq!(p.total_units(), 16);
        assert_eq!(PrepStats::default().total_units(), 0);
    }
}
