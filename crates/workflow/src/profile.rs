//! Data profiles: what the workload generator knows about a dataset.
//!
//! The generator never touches the data itself; it samples binnings,
//! filters and selections from a profile describing the available
//! dimensions — making workloads reusable across dataset scales (the same
//! seed yields the same workload for S, M and L data) and customizable for
//! user-supplied datasets (paper §3.2 "Customizability").

use serde::{Deserialize, Serialize};

/// One explorable dimension of the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DimensionProfile {
    /// A nominal dimension with a known category domain.
    Nominal {
        /// Column name.
        name: String,
        /// The category values filters/selections may reference.
        categories: Vec<String>,
    },
    /// A quantitative dimension with a default bin width and value range.
    Quantitative {
        /// Column name.
        name: String,
        /// Default bin width for width-based binning.
        bin_width: f64,
        /// Anchor (left edge of bin 0).
        anchor: f64,
        /// Smallest value the generator assumes present.
        min: f64,
        /// Largest value the generator assumes present.
        max: f64,
        /// Whether the column is also a sensible aggregate measure.
        measure: bool,
    },
}

impl DimensionProfile {
    /// The column name.
    pub fn name(&self) -> &str {
        match self {
            DimensionProfile::Nominal { name, .. }
            | DimensionProfile::Quantitative { name, .. } => name,
        }
    }
}

/// A full dataset profile for the generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataProfile {
    /// Source table name queries reference.
    pub table: String,
    /// Explorable dimensions.
    pub dimensions: Vec<DimensionProfile>,
}

impl DataProfile {
    /// The default profile matching the `idebench-datagen` flights schema
    /// (paper Figure 2). Kept in sync by an integration test.
    pub fn flights() -> DataProfile {
        let carriers: Vec<String> = (0..14).map(|i| format!("C{i:02}")).collect();
        let states: Vec<String> = (0..48).map(|i| format!("S{i:02}")).collect();
        let airports: Vec<String> = (0..120).map(|i| format!("A{i:03}")).collect();
        DataProfile {
            table: "flights".into(),
            dimensions: vec![
                DimensionProfile::Nominal {
                    name: "carrier".into(),
                    categories: carriers,
                },
                DimensionProfile::Nominal {
                    name: "origin".into(),
                    categories: airports.clone(),
                },
                DimensionProfile::Nominal {
                    name: "origin_state".into(),
                    categories: states.clone(),
                },
                DimensionProfile::Nominal {
                    name: "dest_state".into(),
                    categories: states,
                },
                DimensionProfile::Quantitative {
                    name: "dep_delay".into(),
                    bin_width: 10.0,
                    anchor: 0.0,
                    min: -30.0,
                    max: 180.0,
                    measure: true,
                },
                DimensionProfile::Quantitative {
                    name: "arr_delay".into(),
                    bin_width: 10.0,
                    anchor: 0.0,
                    min: -40.0,
                    max: 180.0,
                    measure: true,
                },
                DimensionProfile::Quantitative {
                    name: "dep_time".into(),
                    bin_width: 1.0,
                    anchor: 0.0,
                    min: 0.0,
                    max: 24.0,
                    measure: false,
                },
                DimensionProfile::Quantitative {
                    name: "distance".into(),
                    bin_width: 200.0,
                    anchor: 0.0,
                    min: 80.0,
                    max: 2900.0,
                    measure: true,
                },
                DimensionProfile::Quantitative {
                    name: "air_time".into(),
                    bin_width: 30.0,
                    anchor: 0.0,
                    min: 20.0,
                    max: 420.0,
                    measure: true,
                },
                DimensionProfile::Quantitative {
                    name: "month".into(),
                    bin_width: 1.0,
                    anchor: 1.0,
                    min: 1.0,
                    max: 12.0,
                    measure: false,
                },
                DimensionProfile::Quantitative {
                    name: "day_of_week".into(),
                    bin_width: 1.0,
                    anchor: 1.0,
                    min: 1.0,
                    max: 7.0,
                    measure: false,
                },
            ],
        }
    }

    /// Infers a profile from any table, making arbitrary datasets usable
    /// with the workload generator (paper §3.2: workloads and datasets
    /// "can be customized to the use case").
    ///
    /// - Nominal columns contribute their full dictionary as the category
    ///   domain, skipping ultra-high-cardinality columns (> `max_categories`
    ///   distinct values — IDs, not dimensions).
    /// - Quantitative columns contribute their observed `[min, max]` with a
    ///   bin width of roughly `range / target_bins`, rounded to a
    ///   human-friendly step (1/2/5 × 10^k). Columns marked as measures are
    ///   those with more than `target_bins` distinct-ish values.
    pub fn infer(table: &idebench_storage::Table, target_bins: u32, max_categories: usize) -> Self {
        let mut dimensions = Vec::new();
        for (idx, field) in table.schema().fields().iter().enumerate() {
            let col = table.column_at(idx);
            match col.as_nominal() {
                Some((_, dict)) => {
                    if dict.len() <= max_categories && !dict.is_empty() {
                        dimensions.push(DimensionProfile::Nominal {
                            name: field.name.clone(),
                            categories: dict.values().to_vec(),
                        });
                    }
                }
                None => {
                    let mut min = f64::INFINITY;
                    let mut max = f64::NEG_INFINITY;
                    for row in 0..col.len() {
                        if let Some(v) = col.numeric_at(row) {
                            min = min.min(v);
                            max = max.max(v);
                        }
                    }
                    if !min.is_finite() || max <= min {
                        continue; // empty or constant column: nothing to bin
                    }
                    let raw_width = (max - min) / f64::from(target_bins.max(1));
                    let mut width = friendly_step(raw_width);
                    // Fractional bins on integer columns are sparse noise.
                    if col.as_int().is_some() && width < 1.0 {
                        width = 1.0;
                    }
                    let anchor = (min / width).floor() * width;
                    // Integers with a narrow domain (day-of-week style) are
                    // dimensions, not measures.
                    let narrow_int = col.as_int().is_some() && (max - min) <= 32.0;
                    dimensions.push(DimensionProfile::Quantitative {
                        name: field.name.clone(),
                        bin_width: width,
                        anchor,
                        min,
                        max,
                        measure: !narrow_int,
                    });
                }
            }
        }
        DataProfile {
            table: table.name().to_string(),
            dimensions,
        }
    }

    /// Indexes of nominal dimensions.
    pub fn nominal_indexes(&self) -> Vec<usize> {
        self.dimensions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, DimensionProfile::Nominal { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indexes of quantitative dimensions.
    pub fn quantitative_indexes(&self) -> Vec<usize> {
        self.dimensions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, DimensionProfile::Quantitative { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indexes of dimensions usable as aggregate measures.
    pub fn measure_indexes(&self) -> Vec<usize> {
        self.dimensions
            .iter()
            .enumerate()
            .filter(|(_, d)| matches!(d, DimensionProfile::Quantitative { measure: true, .. }))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Rounds a step to the nearest "friendly" bin width: 1, 2 or 5 × 10^k.
fn friendly_step(raw: f64) -> f64 {
    debug_assert!(raw > 0.0);
    let magnitude = 10f64.powf(raw.log10().floor());
    let normalized = raw / magnitude;
    let mult = if normalized < 1.5 {
        1.0
    } else if normalized < 3.5 {
        2.0
    } else if normalized < 7.5 {
        5.0
    } else {
        10.0
    };
    mult * magnitude
}

#[cfg(test)]
mod tests {
    use super::*;
    use idebench_storage::{DataType, TableBuilder, Value};

    #[test]
    fn friendly_steps() {
        assert_eq!(friendly_step(0.9), 1.0);
        assert_eq!(friendly_step(1.8), 2.0);
        assert_eq!(friendly_step(4.0), 5.0);
        assert_eq!(friendly_step(8.0), 10.0);
        assert_eq!(friendly_step(37.0), 50.0);
        assert_eq!(friendly_step(0.012), 0.01);
    }

    #[test]
    fn infer_classifies_columns() {
        let mut b = TableBuilder::with_fields(
            "shop",
            &[
                ("region", DataType::Nominal),
                ("price", DataType::Float),
                ("weekday", DataType::Int),
                ("constant", DataType::Float),
            ],
        );
        for i in 0..100i64 {
            b.push_row(&[
                Value::Str(format!("R{}", i % 4)),
                Value::Float(10.0 + i as f64 * 3.0),
                Value::Int(1 + i % 7),
                Value::Float(5.0),
            ])
            .unwrap();
        }
        let t = b.finish();
        let p = DataProfile::infer(&t, 25, 50);
        assert_eq!(p.table, "shop");
        // constant column dropped; region nominal; price measure; weekday
        // narrow-int non-measure.
        assert_eq!(p.dimensions.len(), 3);
        match &p.dimensions[0] {
            DimensionProfile::Nominal { name, categories } => {
                assert_eq!(name, "region");
                assert_eq!(categories.len(), 4);
            }
            other => panic!("expected nominal region, got {other:?}"),
        }
        match &p.dimensions[1] {
            DimensionProfile::Quantitative {
                name,
                measure,
                bin_width,
                ..
            } => {
                assert_eq!(name, "price");
                assert!(*measure);
                assert!(*bin_width > 0.0);
            }
            other => panic!("expected quantitative price, got {other:?}"),
        }
        match &p.dimensions[2] {
            DimensionProfile::Quantitative { name, measure, .. } => {
                assert_eq!(name, "weekday");
                assert!(!*measure, "narrow ints are dimensions, not measures");
            }
            other => panic!("expected quantitative weekday, got {other:?}"),
        }
    }

    #[test]
    fn infer_skips_id_like_nominals() {
        let mut b = TableBuilder::with_fields("t", &[("id", DataType::Nominal)]);
        for i in 0..500 {
            b.push_row(&[Value::Str(format!("id-{i}"))]).unwrap();
        }
        let p = DataProfile::infer(&b.finish(), 25, 100);
        assert!(
            p.dimensions.is_empty(),
            "500 distinct ids is not a dimension"
        );
    }

    #[test]
    fn flights_profile_has_both_kinds() {
        let p = DataProfile::flights();
        assert_eq!(p.table, "flights");
        assert!(!p.nominal_indexes().is_empty());
        assert!(!p.quantitative_indexes().is_empty());
        assert!(!p.measure_indexes().is_empty());
        // Measures are a subset of quantitative dims.
        for m in p.measure_indexes() {
            assert!(p.quantitative_indexes().contains(&m));
        }
    }

    #[test]
    fn profile_serde_roundtrip() {
        let p = DataProfile::flights();
        let js = serde_json::to_string(&p).unwrap();
        let back: DataProfile = serde_json::from_str(&js).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn dimension_names() {
        let p = DataProfile::flights();
        assert_eq!(p.dimensions[0].name(), "carrier");
        assert_eq!(p.dimensions[4].name(), "dep_delay");
    }
}
