//! Additional visualization-graph semantics: repeated links, selection
//! clearing, filter replacement, and diamond topologies.

use idebench::core::spec::{AggregateSpec, BinDef, FilterExpr, Predicate, SelCoord, Selection};
use idebench::core::{Interaction, VizGraph, VizSpec};

fn viz(name: &str) -> VizSpec {
    VizSpec::new(
        name,
        "flights",
        vec![BinDef::Nominal {
            dimension: "carrier".into(),
        }],
        vec![AggregateSpec::count()],
    )
}

fn create(g: &mut VizGraph, name: &str) {
    g.apply(&Interaction::CreateViz { viz: viz(name) }).unwrap();
}

fn link(g: &mut VizGraph, s: &str, t: &str) -> Vec<String> {
    g.apply(&Interaction::Link {
        source: s.into(),
        target: t.into(),
    })
    .unwrap()
}

fn select(g: &mut VizGraph, viz: &str, value: &str) -> Vec<String> {
    g.apply(&Interaction::Select {
        viz: viz.into(),
        selection: Some(Selection {
            bins: vec![vec![SelCoord::Category(value.into())]],
        }),
    })
    .unwrap()
}

#[test]
fn duplicate_link_does_not_double_propagate() {
    let mut g = VizGraph::new();
    create(&mut g, "a");
    create(&mut g, "b");
    link(&mut g, "a", "b");
    link(&mut g, "a", "b"); // same edge again
    let affected = select(&mut g, "a", "AA");
    assert_eq!(affected, vec!["b"], "b updates once, not twice");
    // And the composed filter contains the selection exactly once.
    let q = g.query_for("b").unwrap();
    assert_eq!(q.filter_specificity(), 1);
}

#[test]
fn clearing_a_selection_restores_the_unfiltered_query() {
    let mut g = VizGraph::new();
    create(&mut g, "a");
    create(&mut g, "b");
    link(&mut g, "a", "b");
    select(&mut g, "a", "AA");
    assert_eq!(g.query_for("b").unwrap().filter_specificity(), 1);
    let affected = g
        .apply(&Interaction::Select {
            viz: "a".into(),
            selection: None,
        })
        .unwrap();
    assert_eq!(affected, vec!["b"]);
    assert_eq!(g.query_for("b").unwrap().filter_specificity(), 0);
}

#[test]
fn setting_a_new_filter_replaces_the_old_one() {
    let mut g = VizGraph::new();
    create(&mut g, "a");
    let f1 = FilterExpr::Pred(Predicate::In {
        column: "carrier".into(),
        values: vec!["AA".into()],
    });
    let f2 = FilterExpr::Pred(Predicate::Range {
        column: "dep_delay".into(),
        min: 0.0,
        max: 10.0,
    });
    g.apply(&Interaction::SetFilter {
        viz: "a".into(),
        filter: Some(f1),
    })
    .unwrap();
    g.apply(&Interaction::SetFilter {
        viz: "a".into(),
        filter: Some(f2),
    })
    .unwrap();
    let q = g.query_for("a").unwrap();
    // Replacement, not accumulation.
    assert_eq!(q.filter_specificity(), 1);
    assert!(q.referenced_columns().contains(&"dep_delay"));
    assert!(!q
        .referenced_columns()
        .iter()
        .filter(|c| **c == "carrier")
        .count()
        .gt(&1));
}

#[test]
fn diamond_topology_updates_target_once_with_both_paths() {
    // a → b → d and a → c → d: selecting on a updates b, c, d (once each),
    // and d's query sees a's selection exactly once despite two paths.
    let mut g = VizGraph::new();
    for n in ["a", "b", "c", "d"] {
        create(&mut g, n);
    }
    link(&mut g, "a", "b");
    link(&mut g, "a", "c");
    link(&mut g, "b", "d");
    link(&mut g, "c", "d");
    let affected = select(&mut g, "a", "AA");
    assert_eq!(affected.len(), 3, "b, c, d each update once: {affected:?}");
    let q = g.query_for("d").unwrap();
    assert_eq!(
        q.filter_specificity(),
        1,
        "upstream selection composed once across the diamond"
    );
}

#[test]
fn discarding_mid_chain_splits_the_cascade() {
    let mut g = VizGraph::new();
    for n in ["a", "b", "c"] {
        create(&mut g, n);
    }
    link(&mut g, "a", "b");
    link(&mut g, "b", "c");
    g.apply(&Interaction::Discard { viz: "b".into() }).unwrap();
    // a's selections now reach nothing.
    let affected = select(&mut g, "a", "AA");
    assert!(affected.is_empty(), "chain severed: {affected:?}");
    // c no longer inherits anything from a.
    assert_eq!(g.query_for("c").unwrap().filter_specificity(), 0);
}

#[test]
fn relinking_after_discard_is_allowed() {
    let mut g = VizGraph::new();
    create(&mut g, "a");
    create(&mut g, "b");
    link(&mut g, "a", "b");
    g.apply(&Interaction::Discard { viz: "b".into() }).unwrap();
    create(&mut g, "b2");
    let affected = link(&mut g, "a", "b2");
    assert_eq!(affected, vec!["b2"]);
}
