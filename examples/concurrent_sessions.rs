//! Concurrent sessions: a closed-loop 8-analyst fleet on the flights data.
//!
//! ```sh
//! cargo run --release --example concurrent_sessions
//! ```
//!
//! Eight simulated analysts (one Markov-generated mixed workflow each,
//! seeded per session) explore the same immutable flights dataset at once.
//! Their scans share the persistent worker pool, their completed exact
//! results flow through the cross-session semantic cache, and the merged
//! fleet report shows service-level numbers the single-analyst benchmark
//! cannot: throughput across sessions, fleet-wide latency percentiles, and
//! per-session cache traffic.

use idebench::fleet::{FleetConfig, FleetHarness, FleetReport};
use idebench::prelude::*;
use idebench_workflow::WorkflowType;
use std::sync::Arc;

fn main() {
    // One shared flights dataset (§4.2) — all sessions scan the same table.
    let table = idebench::datagen::flights::generate(100_000, 42);
    let dataset = Dataset::Denormalized(Arc::new(table));

    // 8 analysts, closed loop: everyone is present from t = 0, pacing
    // themselves with 1 s think time under a 1 s time requirement.
    let settings = Settings::default()
        .with_time_requirement_ms(1_000)
        .with_think_time_ms(1_000)
        .with_seed(7);
    let config = FleetConfig::new(settings.clone(), 8).with_workflow(WorkflowType::Mixed, 12);
    let harness = FleetHarness::new(config);

    // Each session gets its own engine instance and a derived seed; the
    // dataset, scan pool, and semantic cache are the shared services.
    for i in 0..8u64 {
        println!(
            "session {i}: seed {} -> workflow {}",
            settings.for_session(i).seed,
            harness.workflow_for(i as usize).name,
        );
    }

    let outcome = harness
        .run_with(&dataset, &mut |_| {
            Box::new(idebench::engine_exact::ExactAdapter::with_defaults())
        })
        .expect("fleet runs");

    // Evaluate against (shared, deduplicated) ground truth and print the
    // fleet summary.
    let report = FleetReport::evaluate(&outcome, &dataset);
    println!("\n{}", report.render_text());
}
