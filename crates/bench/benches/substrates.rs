//! Criterion micro-benchmarks of the substrates: data generation, copula
//! scaling, normalization, filtering, binning and ground-truth execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idebench_core::spec::{AggFunc, AggregateSpec, BinDef};
use idebench_core::{FilterExpr, Predicate, Query, VizSpec};
use idebench_datagen::{normalize_flights, CopulaScaler};
use idebench_query::{execute_exact, execute_exact_scalar, CompiledFilter};
use idebench_storage::Dataset;
use std::sync::Arc;

fn bench_datagen(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("flights_generate_100k", |b| {
        b.iter(|| idebench_datagen::flights::generate(100_000, 7))
    });

    let seed = idebench_datagen::flights::generate(20_000, 7);
    group.bench_function("copula_fit_20k", |b| {
        b.iter(|| CopulaScaler::fit(&seed, 20_000, 9))
    });
    let scaler = CopulaScaler::fit(&seed, 20_000, 9);
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("copula_generate_50k", |b| {
        b.iter(|| scaler.generate(50_000, 11))
    });

    let table = idebench_datagen::flights::generate(100_000, 7);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("normalize_flights_100k", |b| {
        b.iter(|| normalize_flights(&table).unwrap())
    });
    group.finish();
}

fn bench_query_eval(c: &mut Criterion) {
    let rows = 500_000usize;
    let ds = Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(rows, 42)));
    let mut group = c.benchmark_group("query_eval");
    group.throughput(Throughput::Elements(rows as u64));

    let filter = FilterExpr::Pred(Predicate::In {
        column: "carrier".into(),
        values: vec!["C00".into(), "C01".into()],
    })
    .and(FilterExpr::Pred(Predicate::Range {
        column: "dep_delay".into(),
        min: 0.0,
        max: 60.0,
    }));
    group.bench_function("filter_selvec_500k", |b| {
        b.iter(|| {
            let compiled = CompiledFilter::compile(&ds, &filter).unwrap();
            compiled.eval_selvec(rows)
        })
    });

    let q1 = Query::for_viz(
        &VizSpec::new(
            "b",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "arr_delay")],
        ),
        None,
    );
    group.bench_function("exact_1d_avg_500k", |b| {
        b.iter(|| execute_exact(&ds, &q1).unwrap())
    });

    let q2 = Query::for_viz(
        &VizSpec::new(
            "b2",
            "flights",
            vec![
                BinDef::Width {
                    dimension: "dep_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
                BinDef::Width {
                    dimension: "arr_delay".into(),
                    width: 10.0,
                    anchor: 0.0,
                },
            ],
            vec![AggregateSpec::count()],
        ),
        Some(filter.clone()),
    );
    group.bench_function("exact_2d_filtered_count_500k", |b| {
        b.iter(|| execute_exact(&ds, &q2).unwrap())
    });
    group.finish();
}

/// Vectorized morsel path vs the retained scalar reference path on the
/// canonical filtered 1D-nominal aggregation — the microbenchmark that pins
/// the batch-execution speedup (expected ≥ 3×; see BENCH_scan.json).
fn bench_vectorized_vs_scalar(c: &mut Criterion) {
    let rows = 500_000usize;
    let ds = Dataset::Denormalized(Arc::new(idebench_datagen::flights::generate(rows, 42)));
    let q = Query::for_viz(
        &VizSpec::new(
            "b",
            "flights",
            vec![BinDef::Nominal {
                dimension: "carrier".into(),
            }],
            vec![AggregateSpec::over(AggFunc::Avg, "dep_delay")],
        ),
        Some(FilterExpr::Pred(Predicate::In {
            column: "carrier".into(),
            values: vec!["C00".into(), "C01".into(), "C02".into()],
        })),
    );
    assert_eq!(
        execute_exact(&ds, &q).unwrap(),
        execute_exact_scalar(&ds, &q).unwrap(),
        "paths must agree before comparing their speed"
    );
    let mut group = c.benchmark_group("scan_paths");
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function(
        BenchmarkId::new("vectorized", "filtered_1d_nominal_avg"),
        |b| b.iter(|| execute_exact(&ds, &q).unwrap()),
    );
    group.bench_function(BenchmarkId::new("scalar", "filtered_1d_nominal_avg"), |b| {
        b.iter(|| execute_exact_scalar(&ds, &q).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_datagen,
    bench_query_eval,
    bench_vectorized_vs_scalar
);
criterion_main!(benches);
