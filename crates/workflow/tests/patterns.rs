//! Workload-pattern tests: each workflow type must induce the concurrency
//! profile the paper ascribes to it (§4.3): independent browsing triggers
//! one query per interaction, linking patterns fan out.

use idebench_core::VizGraph;
use idebench_workflow::{WorkflowGenerator, WorkflowType};

/// Replays a workflow, returning the number of triggered queries per
/// interaction.
fn concurrency_profile(kind: WorkflowType, seed: u64, len: usize) -> Vec<usize> {
    let wf = WorkflowGenerator::new(kind, seed).generate(len);
    let mut graph = VizGraph::new();
    wf.interactions
        .iter()
        .map(|i| graph.apply(i).expect("valid workflow").len())
        .collect()
}

#[test]
fn independent_browsing_never_fans_out() {
    for seed in 0..20 {
        let profile = concurrency_profile(WorkflowType::Independent, seed, 25);
        assert!(
            profile.iter().all(|&c| c <= 1),
            "independent browsing triggered {profile:?}"
        );
    }
}

#[test]
fn one_to_n_reaches_high_fanout() {
    let mut max_fanout = 0;
    for seed in 0..20 {
        let profile = concurrency_profile(WorkflowType::OneToN, seed, 25);
        max_fanout = max_fanout.max(*profile.iter().max().unwrap_or(&0));
    }
    assert!(
        max_fanout >= 3,
        "1:N workflows should update several targets at once, max {max_fanout}"
    );
}

#[test]
fn n_to_one_selections_update_single_target() {
    // In N:1 the fan-in means selections touch exactly one downstream viz.
    for seed in 0..20 {
        let wf = WorkflowGenerator::new(WorkflowType::NToOne, seed).generate(25);
        let mut graph = VizGraph::new();
        for interaction in &wf.interactions {
            let affected = graph.apply(interaction).expect("valid workflow");
            if matches!(interaction, idebench_core::Interaction::Select { .. }) {
                assert_eq!(affected.len(), 1, "N:1 select must update the hub only");
            }
        }
    }
}

#[test]
fn sequential_linking_cascades() {
    // Selecting early in a chain can update multiple downstream vizs.
    let mut saw_cascade = false;
    for seed in 0..30 {
        let wf = WorkflowGenerator::new(WorkflowType::SequentialLinking, seed).generate(25);
        let mut graph = VizGraph::new();
        for interaction in &wf.interactions {
            let affected = graph.apply(interaction).expect("valid workflow");
            if matches!(
                interaction,
                idebench_core::Interaction::Select { .. }
                    | idebench_core::Interaction::SetFilter { .. }
            ) && affected.len() >= 2
            {
                saw_cascade = true;
            }
        }
    }
    assert!(saw_cascade, "chains should cascade updates");
}

#[test]
fn mixed_workflows_cover_all_interaction_kinds() {
    let mut kinds = std::collections::BTreeSet::new();
    for seed in 0..30 {
        let wf = WorkflowGenerator::new(WorkflowType::Mixed, seed).generate(20);
        for i in &wf.interactions {
            kinds.insert(i.kind());
        }
    }
    for expected in ["create_viz", "set_filter", "select", "link", "discard"] {
        assert!(kinds.contains(expected), "mixed never produced {expected}");
    }
}
