//! The §4.2 data generator in action: scale a seed dataset up while
//! preserving distributions and correlations, then normalize it into a
//! star schema.
//!
//! ```sh
//! cargo run --release --example data_scaling
//! ```

use idebench::datagen::copula::table_correlation;
use idebench::datagen::{normalize_flights, CopulaScaler};

fn main() {
    // The seed: what you'd load from a real-world CSV.
    let seed = idebench::datagen::flights::generate(50_000, 42);
    println!("seed: {} rows", seed.num_rows());

    // Fit the Gaussian copula on a sample and scale 4x (the paper scales
    // its seed to 100M-1B rows with exactly this procedure).
    let scaled = CopulaScaler::scale(&seed, 20_000, 200_000, 7);
    println!("scaled: {} rows", scaled.num_rows());

    println!("\ncorrelation preservation (Pearson r):");
    for (a, b) in [
        ("dep_delay", "arr_delay"),
        ("distance", "air_time"),
        ("dep_time", "distance"),
    ] {
        println!(
            "  {a:<10} ~ {b:<10}  seed {:+.3}   scaled {:+.3}",
            table_correlation(&seed, a, b),
            table_correlation(&scaled, a, b)
        );
    }

    println!("\nmarginal preservation (dep_delay quantiles):");
    let quantiles = |t: &idebench::storage::Table| {
        let mut v: Vec<f64> = t.column("dep_delay").unwrap().as_float().unwrap().to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        [0.1, 0.5, 0.9, 0.99].map(|q| v[((v.len() - 1) as f64 * q) as usize])
    };
    let (qs, qg) = (quantiles(&seed), quantiles(&scaled));
    for (i, q) in [0.1, 0.5, 0.9, 0.99].iter().enumerate() {
        println!(
            "  p{:<4} seed {:>8.1}   scaled {:>8.1}",
            q * 100.0,
            qs[i],
            qg[i]
        );
    }

    // Normalization: the Exp-2 star schema.
    let star = normalize_flights(&scaled).expect("normalizes");
    let star = star.as_star().unwrap();
    println!(
        "\nnormalized: fact {} rows x {} cols, dims: {}",
        star.fact().num_rows(),
        star.fact().num_columns(),
        star.dimensions()
            .iter()
            .map(|(s, t)| format!("{} ({} rows)", s.table_name, t.num_rows()))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
