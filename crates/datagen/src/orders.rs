//! A second synthetic seed dataset: e-commerce orders.
//!
//! The paper requires that "users can use any other dataset to customize
//! the benchmark" (§4.2). This module provides a ready-made alternative to
//! the flights data with a different distribution mix — long-tailed product
//! popularity, log-normal prices, diurnal order times, and region-dependent
//! shipping — used by the customizability example and tests.

use crate::stats::{sample_cumulative, zipf_cumulative};
use idebench_storage::{DataType, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Name of the generated table.
pub const ORDERS_TABLE: &str = "orders";

/// Number of distinct sales regions.
pub const NUM_REGIONS: usize = 10;
/// Number of distinct product categories.
pub const NUM_CATEGORIES: usize = 24;
/// Number of distinct products.
pub const NUM_PRODUCTS: usize = 400;

/// The orders schema: `(name, type)` pairs.
pub const SCHEMA: &[(&str, DataType)] = &[
    ("region", DataType::Nominal),
    ("category", DataType::Nominal),
    ("product", DataType::Nominal),
    ("order_hour", DataType::Float),
    ("quantity", DataType::Int),
    ("unit_price", DataType::Float),
    ("discount", DataType::Float),
    ("revenue", DataType::Float),
    ("ship_days", DataType::Float),
];

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Generates `n` synthetic orders with the given RNG seed. Deterministic.
pub fn generate(n: usize, seed: u64) -> Table {
    // Salt keeps orders streams independent from equal-seed flights data.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x04de_15a1);
    let product_cum = zipf_cumulative(NUM_PRODUCTS, 1.1);
    let region_cum = zipf_cumulative(NUM_REGIONS, 0.6);
    // Product base prices: log-normal, fixed per product.
    let base_price: Vec<f64> = (0..NUM_PRODUCTS)
        .map(|_| (2.5 + normal(&mut rng) * 0.9).exp())
        .collect();
    // Region shipping base: farther regions ship slower.
    let ship_base: Vec<f64> = (0..NUM_REGIONS).map(|r| 1.5 + r as f64 * 0.7).collect();

    let mut b = TableBuilder::with_fields(ORDERS_TABLE, SCHEMA);
    let mut row: Vec<Value> = Vec::with_capacity(SCHEMA.len());
    for _ in 0..n {
        let product = sample_cumulative(&product_cum, rng.random());
        let category = product % NUM_CATEGORIES;
        let region = sample_cumulative(&region_cum, rng.random());

        // Diurnal ordering with an evening peak.
        let order_hour = if rng.random::<f64>() < 0.35 {
            (20.0 + normal(&mut rng) * 2.0).rem_euclid(24.0)
        } else {
            (13.0 + normal(&mut rng) * 4.5).rem_euclid(24.0)
        };

        let quantity = 1 + (rng.random::<f64>().powi(3) * 9.0) as i64;
        let unit_price = (base_price[product] * (1.0 + normal(&mut rng) * 0.05)).max(0.5);
        // Bulk orders get discounted more often.
        let discount = if quantity >= 5 && rng.random::<f64>() < 0.6 {
            0.05 + rng.random::<f64>() * 0.25
        } else if rng.random::<f64>() < 0.15 {
            rng.random::<f64>() * 0.15
        } else {
            0.0
        };
        let revenue = unit_price * quantity as f64 * (1.0 - discount);
        let ship_days = (ship_base[region]
            + rng.random::<f64>().powi(2) * 6.0
            + if quantity > 6 { 1.0 } else { 0.0 })
        .max(0.5);

        row.clear();
        row.push(Value::Str(format!("R{region:02}")));
        row.push(Value::Str(format!("CAT{category:02}")));
        row.push(Value::Str(format!("P{product:04}")));
        row.push(Value::Float((order_hour * 100.0).round() / 100.0));
        row.push(Value::Int(quantity));
        row.push(Value::Float((unit_price * 100.0).round() / 100.0));
        row.push(Value::Float((discount * 100.0).round() / 100.0));
        row.push(Value::Float((revenue * 100.0).round() / 100.0));
        row.push(Value::Float((ship_days * 10.0).round() / 10.0));
        b.push_row(&row).expect("schema and row agree");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_and_determinism() {
        let a = generate(500, 9);
        let b = generate(500, 9);
        assert_eq!(a, b);
        assert_eq!(a.num_columns(), SCHEMA.len());
        assert_eq!(a.name(), ORDERS_TABLE);
    }

    #[test]
    fn product_popularity_is_long_tailed() {
        let t = generate(20_000, 9);
        let (codes, dict) = t.column("product").unwrap().as_nominal().unwrap();
        let mut counts = vec![0usize; dict.len()];
        for &c in codes {
            counts[c as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts.iter().take(10).sum();
        assert!(
            top10 as f64 > 0.15 * codes.len() as f64,
            "top-10 products should dominate: {top10}"
        );
    }

    #[test]
    fn revenue_is_consistent() {
        let t = generate(2_000, 9);
        let price = t.column("unit_price").unwrap().as_float().unwrap();
        let qty = t.column("quantity").unwrap().as_int().unwrap();
        let disc = t.column("discount").unwrap().as_float().unwrap();
        let rev = t.column("revenue").unwrap().as_float().unwrap();
        for i in 0..t.num_rows() {
            // Columns are rounded independently, so allow rounding slack.
            let expect = price[i] * qty[i] as f64 * (1.0 - disc[i]);
            assert!(
                (rev[i] - expect).abs() <= 0.5 + expect.abs() * 0.02,
                "row {i}: revenue {} vs {expect}",
                rev[i]
            );
        }
    }

    #[test]
    fn shipping_tracks_region() {
        let t = generate(20_000, 9);
        let (regions, dict) = t.column("region").unwrap().as_nominal().unwrap();
        let ship = t.column("ship_days").unwrap().as_float().unwrap();
        let r0 = dict.code("R00").unwrap();
        let r9 = dict.code("R09");
        let mean_for = |code: u32| {
            let vals: Vec<f64> = regions
                .iter()
                .zip(ship)
                .filter(|(&r, _)| r == code)
                .map(|(_, &s)| s)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        if let Some(r9) = r9 {
            assert!(
                mean_for(r9) > mean_for(r0) + 2.0,
                "far regions must ship slower"
            );
        }
    }
}
